"""The wire-protocol server: a threaded HTTP/1.1 front door over one service.

:class:`NetworkServer` binds a real TCP socket (stdlib
``http.server.ThreadingHTTPServer`` — one thread per connection, keep-alive
on) in front of a tenant-aware
:class:`~repro.service.server.QueryService`.  The connection threads only
parse, admit, and wait; actual query execution stays on the service's worker
pool, so hundreds of idle connections cost hundreds of parked threads, not
hundreds of executing queries.

Routes (all bodies JSON; see :mod:`repro.net.protocol` for the envelope):

=========================  ======================================================
``POST /v1/submit``        ``{"sql", "tenant"?, "session"?, "mode": "sync"|
                           "ticket", "timeout_s"?}`` — sync waits for the
                           answer; ticket returns a ticket id to poll.
``POST /v1/poll``          ``{"ticket"}`` — status plus the answer when done.
``POST /v1/cancel``        ``{"ticket"}`` — remove a queued query from the
                           EDF queue (running queries are not interrupted).
``POST /v1/stream``        ``{"sql", ...}`` — chunked transfer: one JSON line
                           per progressive snapshot, then a final line with
                           the complete answer.
``POST /v1/explain``       ``{"sql", "analyze"?}`` — plan text; with
                           ``analyze`` the query executes and the span tree
                           rides along.
``POST /v1/append``        ``{"table", "rows"}`` — streaming ingest over the
                           wire; returns the append report.
``GET /metrics``           Prometheus text exposition (``db.metrics_text()``).
``GET /healthz``           liveness probe.
=========================  ======================================================

Every response's ``meta`` echoes the request id (client ``X-Request-Id``
header, else server-generated); the id is forwarded into
``QueryService.submit(request_id=...)`` so a sampled trace's root span
carries the same id — one identifier correlates the client's wire request
with the server's span tree.  Query answers additionally stamp the serving
``generation`` and execution ``backend`` into ``meta``.

Fault points (chaos suite): ``net.request_drop`` closes the connection
before writing any response (the client sees a transport error, not a
structured one); ``net.slow_response`` delays the response by the rule's
``latency_seconds``.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Mapping

from repro.common.errors import QueryRejectedError
from repro.engine.result import QueryResult
from repro.faults.injector import active as _fault_active
from repro.net import protocol
from repro.obs.analyze import AnalyzeResult
from repro.planner.physical import ExplainResult
from repro.service.server import QueryService, QueryTicket
from repro.service.session import ClientSession
from repro.service.tenancy import DEFAULT_TENANT, TenantQuota, TenantRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.blinkdb import BlinkDB

#: How long a finished ticket stays pollable before the store drops it.
_TICKET_TTL_SECONDS = 300.0
#: Wire-thread sleep while watching a progressive ticket for new snapshots.
_STREAM_POLL_SECONDS = 0.01


def _json_bytes(obj: Mapping[str, Any]) -> bytes:
    # default=str keeps exotic attr values (enums, numpy scalars in span
    # attrs) from killing a response; result payloads never rely on it.
    return json.dumps(obj, default=str).encode("utf-8")


class NetworkServer:
    """A TCP front door over one :class:`~repro.service.server.QueryService`.

    When no ``service`` is passed the server creates its own tenant-aware
    one (``tenants=True``) and closes it on :meth:`close`.  ``port=0`` binds
    an ephemeral port; read the actual address from :attr:`port` /
    :attr:`url`.
    """

    def __init__(
        self,
        db: "BlinkDB",
        host: str = "127.0.0.1",
        port: int = 0,
        service: QueryService | None = None,
        num_workers: int = 4,
        quotas: dict[str, TenantQuota] | None = None,
        default_quota: TenantQuota | None = None,
        default_timeout_seconds: float = 30.0,
        **service_kwargs: Any,
    ) -> None:
        self.db = db
        self.default_timeout_seconds = default_timeout_seconds
        if service is None:
            registry = TenantRegistry(quotas=quotas, default_quota=default_quota)
            service = QueryService(
                db, num_workers=num_workers, tenants=registry, **service_kwargs
            )
            self._owns_service = True
        else:
            self._owns_service = False
        self.service = service
        self._sessions: dict[tuple[str, str], ClientSession] = {}
        self._sessions_lock = threading.Lock()
        self._tickets: dict[str, tuple[QueryTicket, float]] = {}
        self._tickets_lock = threading.Lock()
        self._closed = False

        handler = _build_handler(self)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"blinkdb-net-{self.port}",
            daemon=True,
        )
        self._thread.start()

    # -- lifecycle ---------------------------------------------------------------
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self, timeout: float | None = 10.0) -> None:
        """Stop accepting connections, release the port, close an owned service."""
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout)
        if self._owns_service and not self.service._closed:
            self.service.close()
        with self._tickets_lock:
            self._tickets.clear()

    def __enter__(self) -> "NetworkServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- sessions / tickets --------------------------------------------------------
    def _session_for(self, tenant: str, session_name: str | None) -> ClientSession | None:
        if session_name is None:
            return None
        key = (tenant, session_name)
        with self._sessions_lock:
            session = self._sessions.get(key)
            if session is None:
                session = self.service.connect(
                    name=f"{tenant}/{session_name}", tenant=tenant
                )
                self._sessions[key] = session
            return session

    def _store_ticket(self, ticket: QueryTicket) -> str:
        ticket_id = str(ticket.ticket_id)
        now = time.monotonic()
        with self._tickets_lock:
            self._tickets[ticket_id] = (ticket, now)
            # Opportunistic TTL sweep of finished tickets nobody polled.
            expired = [
                key
                for key, (stored, stored_at) in self._tickets.items()
                if stored.done() and now - stored_at > _TICKET_TTL_SECONDS
            ]
            for key in expired:
                del self._tickets[key]
        return ticket_id

    def _ticket(self, ticket_id: str) -> QueryTicket | None:
        with self._tickets_lock:
            entry = self._tickets.get(ticket_id)
            return entry[0] if entry is not None else None

    # -- introspection ------------------------------------------------------------
    def describe(self) -> dict[str, object]:
        with self._tickets_lock:
            tickets = len(self._tickets)
        with self._sessions_lock:
            sessions = len(self._sessions)
        return {
            "url": self.url,
            "closed": self._closed,
            "wire_sessions": sessions,
            "stored_tickets": tickets,
            "service": self.service.name,
        }


def _result_meta(result: QueryResult) -> dict[str, Any]:
    """The generation/backend stamp every answer's envelope meta carries."""
    meta: dict[str, Any] = {}
    generation = result.metadata.get("generation")
    if generation is not None:
        meta["generation"] = int(generation)
    backend_info = result.metadata.get("backend_info")
    if isinstance(backend_info, Mapping) and "backend" in backend_info:
        meta["backend"] = str(backend_info["backend"])
    else:
        meta["backend"] = "threads"
    return meta


def _build_handler(server: NetworkServer) -> type[BaseHTTPRequestHandler]:
    """A handler class closed over one :class:`NetworkServer` instance."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "blinkdb-net/1"
        # Small header/body writes on a keep-alive socket otherwise hit the
        # Nagle + delayed-ACK interaction (~40ms per round-trip on loopback).
        disable_nagle_algorithm = True

        # -- plumbing -----------------------------------------------------------
        def log_message(self, format: str, *args: object) -> None:  # noqa: A002
            pass  # wire metrics live in the service/obs registries, not stderr

        def _request_id(self) -> str:
            header = self.headers.get("X-Request-Id")
            return header if header else uuid.uuid4().hex[:16]

        def _read_body(self) -> dict[str, Any]:
            length = int(self.headers.get("Content-Length") or 0)
            if length <= 0:
                return {}
            raw = self.rfile.read(length)
            parsed = json.loads(raw.decode("utf-8"))
            if not isinstance(parsed, dict):
                raise ValueError("request body must be a JSON object")
            return parsed

        def _fault_gate(self) -> bool:
            """Apply net.* fault points; True means the request was dropped."""
            injector = _fault_active()
            if injector is None:
                return False
            decision = injector.check("net.request_drop")
            if decision is not None:
                # Drop: shut the socket with no response — the client must
                # see a *transport* failure, never a structured error.
                self.close_connection = True
                try:
                    self.connection.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                return True
            decision = injector.check("net.slow_response")
            if decision is not None and decision.latency_seconds > 0.0:
                time.sleep(decision.latency_seconds)
            return False

        def _send_envelope(
            self,
            status: int,
            envelope: Mapping[str, Any],
            retry_after: float | None = None,
        ) -> None:
            body = _json_bytes(envelope)
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            if retry_after is not None:
                self.send_header("Retry-After", f"{max(0.0, retry_after):.3f}")
            self.end_headers()
            self.wfile.write(body)

        def _send_error_envelope(
            self, error: BaseException, meta: dict[str, Any]
        ) -> None:
            code, retry_after = protocol.error_code_for(error)
            status = protocol.HTTP_STATUS.get(code, 500)
            self._send_envelope(
                status,
                protocol.error_envelope(code, str(error), retry_after, meta),
                retry_after=retry_after,
            )

        def _send_text(self, status: int, text: str, content_type: str) -> None:
            body = text.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        # -- HTTP verbs ---------------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 - http.server API
            if self._fault_gate():
                return
            request_id = self._request_id()
            meta = {"request_id": request_id}
            try:
                if self.path == "/healthz":
                    self._send_envelope(
                        200,
                        protocol.ok_envelope(
                            {
                                "status": "ok",
                                "service": server.service.name,
                                "data_version": server.db.data_version,
                            },
                            meta,
                        ),
                    )
                elif self.path == "/metrics":
                    self._send_text(
                        200,
                        server.db.metrics_text(),
                        "text/plain; version=0.0.4; charset=utf-8",
                    )
                else:
                    self._send_envelope(
                        404,
                        protocol.error_envelope(
                            protocol.ERR_NOT_FOUND, f"no route {self.path!r}", meta=meta
                        ),
                    )
            except Exception as error:  # noqa: BLE001 - wire boundary
                self._send_error_envelope(error, meta)

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            if self._fault_gate():
                return
            request_id = self._request_id()
            meta: dict[str, Any] = {"request_id": request_id}
            try:
                body = self._read_body()
            except (ValueError, json.JSONDecodeError) as error:
                self._send_envelope(
                    400,
                    protocol.error_envelope(
                        protocol.ERR_BAD_REQUEST, f"bad request body: {error}", meta=meta
                    ),
                )
                return
            routes = {
                "/v1/submit": self._op_submit,
                "/v1/poll": self._op_poll,
                "/v1/cancel": self._op_cancel,
                "/v1/stream": self._op_stream,
                "/v1/explain": self._op_explain,
                "/v1/append": self._op_append,
            }
            op = routes.get(self.path)
            if op is None:
                self._send_envelope(
                    404,
                    protocol.error_envelope(
                        protocol.ERR_NOT_FOUND, f"no route {self.path!r}", meta=meta
                    ),
                )
                return
            try:
                op(body, meta)
            except BrokenPipeError:
                self.close_connection = True
            except Exception as error:  # noqa: BLE001 - wire boundary
                self._send_error_envelope(error, meta)

        # -- operations ---------------------------------------------------------
        def _submit_ticket(
            self, body: Mapping[str, Any], meta: dict[str, Any], progressive: bool
        ) -> QueryTicket:
            sql = body.get("sql")
            if not isinstance(sql, str) or not sql.strip():
                raise protocol.WireError(
                    "submit requires a non-empty 'sql' string", protocol.ERR_BAD_REQUEST
                )
            tenant = str(body.get("tenant") or DEFAULT_TENANT)
            session = server._session_for(tenant, body.get("session"))
            ticket = server.service.submit(
                sql,
                session=session,
                progressive=progressive,
                tenant=tenant,
                request_id=meta["request_id"],
            )
            meta["ticket_id"] = ticket.ticket_id
            meta["tenant"] = tenant
            return ticket

        def _op_submit(self, body: Mapping[str, Any], meta: dict[str, Any]) -> None:
            mode = body.get("mode", "sync")
            progressive = bool(body.get("progressive", False))
            ticket = self._submit_ticket(body, meta, progressive)
            if mode == "ticket":
                server._store_ticket(ticket)
                self._send_envelope(
                    200,
                    protocol.ok_envelope(
                        {"ticket": str(ticket.ticket_id), "status": ticket.status}, meta
                    ),
                )
                return
            timeout = float(body.get("timeout_s") or server.default_timeout_seconds)
            result = ticket.result(timeout=timeout)
            self._send_result(result, meta)

        def _send_result(self, result: object, meta: dict[str, Any]) -> None:
            if isinstance(result, AnalyzeResult):
                meta.update(_result_meta(result.result))
                payload: dict[str, Any] = {
                    "kind": "analyze",
                    "text": result.text,
                    "result": protocol.encode_result(result.result),
                    "trace": result.trace.to_dict() if result.trace.sampled else None,
                }
            elif isinstance(result, ExplainResult):
                payload = {"kind": "explain", "text": result.text}
            else:
                assert isinstance(result, QueryResult)
                meta.update(_result_meta(result))
                payload = {"kind": "result", "result": protocol.encode_result(result)}
            self._send_envelope(200, protocol.ok_envelope(payload, meta))

        def _op_poll(self, body: Mapping[str, Any], meta: dict[str, Any]) -> None:
            ticket_id = str(body.get("ticket") or "")
            ticket = server._ticket(ticket_id)
            if ticket is None:
                raise protocol.WireError(
                    f"unknown ticket {ticket_id!r}", protocol.ERR_NOT_FOUND
                )
            meta["ticket_id"] = ticket.ticket_id
            status = ticket.status
            if status == "pending":
                snapshot = ticket.latest_snapshot()
                self._send_envelope(
                    200,
                    protocol.ok_envelope(
                        {
                            "kind": "pending",
                            "status": status,
                            "progress_fraction": ticket.progress_fraction,
                            "snapshot": (
                                protocol.encode_snapshot(snapshot)
                                if snapshot is not None
                                else None
                            ),
                        },
                        meta,
                    ),
                )
                return
            error = ticket.exception()
            if error is not None:
                raise error
            self._send_result(ticket.result(timeout=0.0), meta)

        def _op_cancel(self, body: Mapping[str, Any], meta: dict[str, Any]) -> None:
            ticket_id = str(body.get("ticket") or "")
            ticket = server._ticket(ticket_id)
            if ticket is None:
                raise protocol.WireError(
                    f"unknown ticket {ticket_id!r}", protocol.ERR_NOT_FOUND
                )
            cancelled = ticket.cancel()
            meta["ticket_id"] = ticket.ticket_id
            self._send_envelope(
                200,
                protocol.ok_envelope(
                    {"cancelled": cancelled, "status": ticket.status}, meta
                ),
            )

        def _op_stream(self, body: Mapping[str, Any], meta: dict[str, Any]) -> None:
            """Chunked progressive streaming: one JSON line per event."""
            ticket = self._submit_ticket(body, meta, progressive=True)
            timeout = float(body.get("timeout_s") or server.default_timeout_seconds)
            deadline = time.monotonic() + timeout

            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Transfer-Encoding", "chunked")
            self.end_headers()

            def write_chunk(obj: Mapping[str, Any]) -> None:
                line = _json_bytes(obj) + b"\n"
                self.wfile.write(f"{len(line):x}\r\n".encode("ascii"))
                self.wfile.write(line)
                self.wfile.write(b"\r\n")
                self.wfile.flush()

            sent = 0
            try:
                while True:
                    snapshots = ticket.snapshots()
                    for snapshot in snapshots[sent:]:
                        write_chunk(
                            {
                                "type": "snapshot",
                                "meta": meta,
                                "snapshot": protocol.encode_snapshot(snapshot),
                            }
                        )
                    sent = len(snapshots)
                    if ticket.done():
                        break
                    if time.monotonic() > deadline:
                        write_chunk(
                            {
                                "type": "error",
                                "meta": meta,
                                "error": {
                                    "code": protocol.ERR_TIMEOUT,
                                    "message": f"stream exceeded {timeout}s",
                                },
                            }
                        )
                        self.wfile.write(b"0\r\n\r\n")
                        return
                    ticket.wait(_STREAM_POLL_SECONDS)
                error = ticket.exception()
                if error is not None:
                    code, retry_after = protocol.error_code_for(error)
                    event: dict[str, Any] = {
                        "type": "error",
                        "meta": meta,
                        "error": {"code": code, "message": str(error)},
                    }
                    if retry_after is not None:
                        event["error"]["retry_after_s"] = retry_after
                    write_chunk(event)
                else:
                    result = ticket.result(timeout=0.0)
                    assert isinstance(result, QueryResult)
                    final_meta = dict(meta)
                    final_meta.update(_result_meta(result))
                    write_chunk(
                        {
                            "type": "final",
                            "meta": final_meta,
                            "result": protocol.encode_result(result),
                        }
                    )
                self.wfile.write(b"0\r\n\r\n")
            except BrokenPipeError:
                # Client went away mid-stream; queued work is already
                # running, nothing to unwind at the wire layer.
                self.close_connection = True

        def _op_explain(self, body: Mapping[str, Any], meta: dict[str, Any]) -> None:
            sql = body.get("sql")
            if not isinstance(sql, str) or not sql.strip():
                raise protocol.WireError(
                    "explain requires a non-empty 'sql' string", protocol.ERR_BAD_REQUEST
                )
            analyze = bool(body.get("analyze", False))
            prefix = "EXPLAIN ANALYZE " if analyze else "EXPLAIN "
            statement = sql.strip()
            if not statement.upper().startswith("EXPLAIN"):
                statement = prefix + statement
            tenant = str(body.get("tenant") or DEFAULT_TENANT)
            session = server._session_for(tenant, body.get("session"))
            ticket = server.service.submit(
                statement,
                session=session,
                tenant=tenant,
                request_id=meta["request_id"],
            )
            timeout = float(body.get("timeout_s") or server.default_timeout_seconds)
            self._send_result(ticket.result(timeout=timeout), meta)

        def _op_append(self, body: Mapping[str, Any], meta: dict[str, Any]) -> None:
            table = body.get("table")
            rows = body.get("rows")
            if not isinstance(table, str) or not isinstance(rows, list):
                raise protocol.WireError(
                    "append requires 'table' (string) and 'rows' (list)",
                    protocol.ERR_BAD_REQUEST,
                )
            report = server.db.append(table, rows)
            self._send_envelope(
                200,
                protocol.ok_envelope({"kind": "append", "report": report.describe()}, meta),
            )

    return Handler
