"""Error estimation: closed-form variances, confidence intervals, estimators.

This package implements the statistics behind BlinkDB's error bars:

* :mod:`repro.estimation.closed_form` — the closed-form variance formulas of
  the paper's Table 2 (AVG, COUNT, SUM, QUANTILE).
* :mod:`repro.estimation.confidence` — normal-approximation confidence
  intervals and relative-error conversions.
* :mod:`repro.estimation.estimators` — point estimators with per-row weights
  (the inverse effective sampling rates of §4.3) producing unbiased answers
  from stratified samples, together with their estimated variances.
* :mod:`repro.estimation.propagation` — uncertainty propagation when
  combining estimates (unions of disjunctive sub-queries, scaled estimates,
  differences), following the closed-form combination rules of [30].
"""

from repro.estimation.closed_form import (
    avg_variance,
    count_variance,
    quantile_variance,
    sum_variance,
)
from repro.estimation.confidence import (
    ConfidenceInterval,
    confidence_interval,
    relative_error,
    required_sample_size_for_error,
    z_score,
)
from repro.estimation.estimators import (
    Estimate,
    estimate_aggregate,
    estimate_avg,
    estimate_count,
    estimate_quantile,
    estimate_stddev,
    estimate_sum,
    estimate_variance,
)
from repro.estimation.propagation import combine_sum, difference, scale

__all__ = [
    "avg_variance",
    "count_variance",
    "quantile_variance",
    "sum_variance",
    "ConfidenceInterval",
    "confidence_interval",
    "relative_error",
    "required_sample_size_for_error",
    "z_score",
    "Estimate",
    "estimate_aggregate",
    "estimate_avg",
    "estimate_count",
    "estimate_quantile",
    "estimate_stddev",
    "estimate_sum",
    "estimate_variance",
    "combine_sum",
    "difference",
    "scale",
]
