"""Point estimators with per-row weights and their variance estimates.

BlinkDB produces unbiased answers from stratified samples by tracking the
*effective sampling rate* of every row and weighting each row by the inverse
of that rate (§4.3, Tables 3–4).  The estimators here take a vector of
matching values and the corresponding weights and return an
:class:`Estimate` — a point value plus an estimated variance from which
confidence intervals and relative errors are derived.

Two variance regimes are used:

* When all weights are (nearly) equal the sample is effectively uniform and
  the closed forms of the paper's Table 2 apply directly
  (:mod:`repro.estimation.closed_form`).
* When weights differ across rows (a stratified sample mixing exact strata at
  rate 1.0 with capped strata at rate ``K/F(x)``), a Horvitz–Thompson /
  linearisation variance is used, which reduces to the Table-2 forms in the
  uniform-weight limit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.estimation import closed_form
from repro.estimation.confidence import ConfidenceInterval, confidence_interval

_UNIFORM_WEIGHT_TOLERANCE = 1e-9


@dataclass(frozen=True)
class Estimate:
    """A point estimate together with its estimated variance.

    Attributes
    ----------
    value:
        The unbiased point estimate of the aggregate.
    variance:
        Estimated variance of the estimator (``inf`` when it cannot be
        estimated, e.g. zero matching rows).
    sample_rows:
        Number of matching rows in the sample the estimate was computed from
        (``n`` in the paper's formulas).
    rows_read:
        Total rows scanned (matching or not) to produce the estimate.
    population_rows:
        Estimated number of matching rows in the full table (the scaled
        count), when meaningful.
    exact:
        True when the estimate is known to be exact (e.g. the stratum was
        below the cap ``K`` so the sample holds every matching row).
    """

    value: float
    variance: float
    sample_rows: int
    rows_read: int = 0
    population_rows: float | None = None
    exact: bool = False

    def interval(self, confidence: float = 0.95) -> ConfidenceInterval:
        """Confidence interval at the requested confidence level."""
        if self.exact:
            return ConfidenceInterval(self.value, 0.0, confidence)
        return confidence_interval(self.value, self.variance, confidence)

    def relative_error(self, confidence: float = 0.95) -> float:
        """CI half-width over |value| (∞ for a zero-valued noisy estimate)."""
        return self.interval(confidence).relative_half_width

    def stddev(self) -> float:
        return math.sqrt(self.variance) if math.isfinite(self.variance) else math.inf


def _as_arrays(values, weights, n: int) -> tuple[np.ndarray, np.ndarray]:
    if values is None:
        values = np.ones(n, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if weights is None:
        weights = np.ones(values.shape[0], dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if values.shape[0] != weights.shape[0]:
        raise ValueError("values and weights must have the same length")
    if np.any(weights <= 0):
        raise ValueError("weights must be strictly positive")
    return values, weights


#: Tolerance of the unit-weight exactness test (np.isclose(x, 1.0) defaults:
#: atol + rtol for a target of 1.0).
_UNIT_WEIGHT_TOLERANCE = 1e-8 + 1e-5


def weight_is_unit(weight: float) -> bool:
    """Whether one (scaled) weight counts as exactly 1.0.

    Shared with the mergeable partial-aggregation states
    (:mod:`repro.engine.accumulators`): the §3.1 "exact stratum" test must
    use one tolerance on both the serial and the partitioned path, or a
    partitioned run could mark a group exact where the serial run does not.
    """
    return abs(weight - 1.0) <= _UNIT_WEIGHT_TOLERANCE


def weights_nearly_uniform(min_weight: float, max_weight: float) -> bool:
    """Whether a weight vector with this min/max counts as uniform.

    Shared with the mergeable partial-aggregation states
    (:mod:`repro.engine.accumulators`): expressing the test through the
    min/max keeps it invariant under merge order, so a partitioned execution
    picks the same variance regime as the whole-table path.
    """
    spread = max_weight - min_weight
    return bool(spread <= _UNIFORM_WEIGHT_TOLERANCE * max(1.0, abs(min_weight)))


def _weights_uniform(weights: np.ndarray) -> bool:
    if weights.size == 0:
        return True
    return weights_nearly_uniform(float(np.min(weights)), float(np.max(weights)))


def estimate_count(
    weights: np.ndarray | None,
    rows_read: int,
    population_read: float | None = None,
    exact: bool = False,
) -> Estimate:
    """Estimate the population count of matching rows.

    ``weights`` are the per-matching-row inverse sampling rates; ``rows_read``
    is the total number of sampled rows scanned; ``population_read`` is the
    number of original-table rows the scanned sample represents (defaults to
    the sum of weights over all scanned rows ≈ ``rows_read`` × mean weight).
    """
    if weights is None:
        weights = np.zeros(0, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    n = int(weights.shape[0])
    value = float(np.sum(weights))
    if exact:
        return Estimate(value, 0.0, n, rows_read, value, exact=True)
    if n == 0:
        # No matching rows seen: the point estimate is 0 and the uncertainty
        # is governed by the rows scanned (a Poisson-style upper bound).
        variance = float(population_read or rows_read or 1.0)
        return Estimate(0.0, variance, 0, rows_read, 0.0, exact=False)
    if population_read is None:
        population_read = float(np.mean(weights)) * max(rows_read, n)
    if _weights_uniform(weights) and rows_read > 0:
        selectivity = n / rows_read
        variance = closed_form.count_variance(population_read, rows_read, selectivity)
    else:
        selectivity = min(1.0, n / rows_read) if rows_read > 0 else 0.0
        variance = float(np.sum(weights * (weights - 1.0))) * max(0.0, 1.0 - selectivity)
    return Estimate(value, variance, n, rows_read, value, exact=False)


def estimate_sum(
    values: np.ndarray,
    weights: np.ndarray | None,
    rows_read: int,
    population_read: float | None = None,
    exact: bool = False,
) -> Estimate:
    """Estimate the population sum of ``values`` over matching rows."""
    values, weights = _as_arrays(values, weights, 0)
    n = int(values.shape[0])
    value = float(np.sum(values * weights))
    population_rows = float(np.sum(weights))
    if exact:
        return Estimate(value, 0.0, n, rows_read, population_rows, exact=True)
    if n == 0:
        return Estimate(0.0, math.inf, 0, rows_read, 0.0)
    if population_read is None:
        population_read = float(np.mean(weights)) * max(rows_read, n)
    if _weights_uniform(weights) and rows_read > 0 and n > 1:
        selectivity = n / rows_read
        sample_variance = float(np.var(values, ddof=1))
        mean_value = float(np.mean(values))
        variance = closed_form.sum_variance(
            population_read, rows_read, sample_variance, selectivity, mean_value
        )
    else:
        selectivity = min(1.0, n / rows_read) if rows_read > 0 else 0.0
        variance = float(np.sum((values**2) * weights * (weights - 1.0)))
        variance *= max(0.0, 1.0 - selectivity) if selectivity < 1.0 else 0.0
        if variance == 0.0 and not _weights_uniform(weights):
            variance = float(np.sum((values**2) * weights * np.maximum(weights - 1.0, 0.0)))
    return Estimate(value, variance, n, rows_read, population_rows)


def estimate_avg(
    values: np.ndarray,
    weights: np.ndarray | None,
    rows_read: int,
    exact: bool = False,
) -> Estimate:
    """Estimate the population mean of ``values`` over matching rows.

    Uses the weighted (Hájek) ratio estimator ``Σ wᵢxᵢ / Σ wᵢ`` with a
    linearised variance that reduces to ``S²/n`` for uniform weights.
    """
    values, weights = _as_arrays(values, weights, 0)
    n = int(values.shape[0])
    if n == 0:
        return Estimate(math.nan, math.inf, 0, rows_read, 0.0)
    weight_total = float(np.sum(weights))
    value = float(np.sum(values * weights) / weight_total)
    if exact:
        return Estimate(value, 0.0, n, rows_read, weight_total, exact=True)
    if n == 1:
        return Estimate(value, math.inf, 1, rows_read, weight_total)
    if _weights_uniform(weights):
        sample_variance = float(np.var(values, ddof=1))
        variance = closed_form.avg_variance(sample_variance, n)
    else:
        residuals = values - value
        variance = float(np.sum((weights * residuals) ** 2)) / (weight_total**2)
    return Estimate(value, variance, n, rows_read, weight_total)


def estimate_quantile(
    values: np.ndarray,
    weights: np.ndarray | None,
    p: float,
    rows_read: int,
    exact: bool = False,
    sample_rows: int | None = None,
) -> Estimate:
    """Estimate the ``p``-quantile of the population distribution of ``values``.

    The point estimate is the weighted quantile (linear interpolation on the
    weighted empirical CDF).  The variance follows Table 2:
    ``p(1−p)/(n·f(x_p)²)`` with the density ``f`` at the quantile estimated by
    a central finite difference of nearby sample quantiles.

    ``sample_rows`` overrides the matching-row count ``n`` used for the
    variance when ``values``/``weights`` are a *summary* of more rows than
    they have entries (a compressed quantile sketch): the distribution shape
    comes from the summary, the uncertainty from the true row count.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("quantile p must be in (0, 1)")
    values, weights = _as_arrays(values, weights, 0)
    n = int(values.shape[0]) if sample_rows is None else int(sample_rows)
    if n == 0:
        return Estimate(math.nan, math.inf, 0, rows_read, 0.0)
    order = np.argsort(values, kind="mergesort")
    sorted_values = values[order]
    sorted_weights = weights[order]
    cumulative = np.cumsum(sorted_weights)
    total = cumulative[-1]
    # Weighted quantile positions at the centre of each row's weight mass.
    positions = (cumulative - 0.5 * sorted_weights) / total
    value = float(np.interp(p, positions, sorted_values))
    if exact:
        return Estimate(value, 0.0, n, rows_read, float(total), exact=True)
    if n < 4:
        return Estimate(value, math.inf, n, rows_read, float(total))
    # Finite-difference density estimate around the quantile.
    delta = max(0.01, 1.0 / math.sqrt(n))
    low_p = max(1e-6, p - delta)
    high_p = min(1.0 - 1e-6, p + delta)
    low_value = float(np.interp(low_p, positions, sorted_values))
    high_value = float(np.interp(high_p, positions, sorted_values))
    spread = high_value - low_value
    if spread <= 0:
        # Degenerate/duplicated data around the quantile: the quantile is
        # pinned, so the uncertainty is effectively zero.
        return Estimate(value, 0.0, n, rows_read, float(total))
    density = (high_p - low_p) / spread
    variance = closed_form.quantile_variance(n, p, density)
    return Estimate(value, variance, n, rows_read, float(total))


def estimate_variance(
    values: np.ndarray,
    weights: np.ndarray | None,
    rows_read: int,
    exact: bool = False,
) -> Estimate:
    """Estimate the population variance of ``values`` (extension aggregate)."""
    values, weights = _as_arrays(values, weights, 0)
    n = int(values.shape[0])
    if n < 2:
        return Estimate(math.nan, math.inf, n, rows_read, 0.0)
    weight_total = float(np.sum(weights))
    mean = float(np.sum(values * weights) / weight_total)
    value = float(np.sum(weights * (values - mean) ** 2) / weight_total)
    # Rescale to an (approximately) unbiased estimate.
    value *= n / max(1, n - 1)
    if exact:
        return Estimate(value, 0.0, n, rows_read, weight_total, exact=True)
    variance = closed_form.variance_of_sample_variance(value, n)
    return Estimate(value, variance, n, rows_read, weight_total)


def estimate_stddev(
    values: np.ndarray,
    weights: np.ndarray | None,
    rows_read: int,
    exact: bool = False,
) -> Estimate:
    """Estimate the population standard deviation (extension aggregate)."""
    var_estimate = estimate_variance(values, weights, rows_read, exact=exact)
    if math.isnan(var_estimate.value):
        return var_estimate
    value = math.sqrt(max(0.0, var_estimate.value))
    if exact:
        return Estimate(value, 0.0, var_estimate.sample_rows, rows_read,
                        var_estimate.population_rows, exact=True)
    variance = closed_form.stddev_variance(var_estimate.value, var_estimate.sample_rows)
    return Estimate(value, variance, var_estimate.sample_rows, rows_read,
                    var_estimate.population_rows)


def estimate_aggregate(
    function: str,
    values: np.ndarray | None,
    weights: np.ndarray | None,
    rows_read: int,
    population_read: float | None = None,
    quantile: float | None = None,
    exact: bool = False,
) -> Estimate:
    """Dispatch to the estimator for ``function`` (by lowercase name).

    ``function`` is one of ``count``, ``sum``, ``avg``, ``quantile``,
    ``stddev``, ``variance``.  This string interface keeps the estimation
    package independent of the SQL AST.
    """
    name = function.lower()
    if name == "count":
        return estimate_count(weights, rows_read, population_read, exact=exact)
    if values is None:
        raise ValueError(f"aggregate {function!r} requires a value column")
    if name == "sum":
        return estimate_sum(values, weights, rows_read, population_read, exact=exact)
    if name == "avg":
        return estimate_avg(values, weights, rows_read, exact=exact)
    if name in ("quantile", "median"):
        return estimate_quantile(values, weights, quantile or 0.5, rows_read, exact=exact)
    if name == "stddev":
        return estimate_stddev(values, weights, rows_read, exact=exact)
    if name == "variance":
        return estimate_variance(values, weights, rows_read, exact=exact)
    raise ValueError(f"unknown aggregate function {function!r}")
