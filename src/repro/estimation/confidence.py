"""Confidence intervals and error-bound arithmetic.

BlinkDB reports every approximate answer with an error bar at a requested
confidence level (default 95%), and converts a user's relative-error bound
into a required sample size via the ``1/√n`` scaling of the closed-form
standard deviations (§4.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import stats


def z_score(confidence: float) -> float:
    """Two-sided normal critical value for a confidence level in (0, 1)."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    return float(stats.norm.ppf(0.5 + confidence / 2.0))


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric confidence interval around a point estimate."""

    estimate: float
    half_width: float
    confidence: float

    @property
    def low(self) -> float:
        return self.estimate - self.half_width

    @property
    def high(self) -> float:
        return self.estimate + self.half_width

    @property
    def relative_half_width(self) -> float:
        """Half width divided by the absolute estimate (∞ for a zero estimate)."""
        if self.estimate == 0:
            return math.inf if self.half_width > 0 else 0.0
        return abs(self.half_width / self.estimate)

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return (
            f"{self.estimate:,.4g} ± {self.half_width:,.4g} "
            f"({self.confidence:.0%} confidence)"
        )


def confidence_interval(
    estimate: float, variance: float, confidence: float = 0.95
) -> ConfidenceInterval:
    """Normal-approximation CI from an estimate and its variance."""
    if variance < 0:
        raise ValueError("variance must be non-negative")
    half_width = z_score(confidence) * math.sqrt(variance) if math.isfinite(variance) else math.inf
    return ConfidenceInterval(estimate=estimate, half_width=half_width, confidence=confidence)


def relative_error(estimate: float, variance: float, confidence: float = 0.95) -> float:
    """Relative error (CI half-width over |estimate|) at the given confidence."""
    return confidence_interval(estimate, variance, confidence).relative_half_width


def required_sample_size_for_error(
    current_n: int,
    current_variance: float,
    estimate: float,
    target_error: float,
    confidence: float = 0.95,
    relative: bool = True,
) -> int:
    """Rows needed so the error bound shrinks to ``target_error``.

    Uses the ``variance ∝ 1/n`` behaviour of every Table-2 estimator: if a
    sample of ``n`` rows gives variance ``v``, then ``n' = n · v / v_target``
    rows give variance ``v_target``.  ``target_error`` is interpreted as a
    relative error when ``relative`` is True (the paper's default), otherwise
    as an absolute half-width.
    """
    if current_n <= 0:
        raise ValueError("current_n must be positive")
    if target_error <= 0:
        raise ValueError("target_error must be positive")
    if not math.isfinite(current_variance) or current_variance < 0:
        raise ValueError("current_variance must be finite and non-negative")
    z = z_score(confidence)
    target_half_width = target_error * abs(estimate) if relative else target_error
    if target_half_width <= 0:
        # A zero estimate with a relative bound cannot be tightened by sampling.
        return current_n
    target_variance = (target_half_width / z) ** 2
    if current_variance <= target_variance:
        return current_n
    scale_factor = current_variance / target_variance
    return int(math.ceil(current_n * scale_factor))


def error_at_sample_size(
    current_n: int,
    current_variance: float,
    estimate: float,
    new_n: int,
    confidence: float = 0.95,
) -> float:
    """Predicted relative error after growing/shrinking the sample to ``new_n``."""
    if current_n <= 0 or new_n <= 0:
        raise ValueError("sample sizes must be positive")
    projected_variance = current_variance * current_n / new_n
    return relative_error(estimate, projected_variance, confidence)
