"""Closed-form variance formulas (paper Table 2).

For a uniform sample of ``n`` rows drawn from a population of ``N`` rows, the
paper gives the following estimator variances:

========  ==========================================  =============================
Operator  Estimate                                    Variance
========  ==========================================  =============================
AVG       ``mean(X_i)``                               ``S_n² / n``
COUNT     ``(N / n) · Σ I_k``                         ``(N² / n) · c(1 − c)``
SUM       ``(N / n) · Σ I_k · X̄``                     ``N² · (S_n²/n) · c(1 − c)``
QUANTILE  interpolated order statistic                ``p(1 − p) / (n · f(x_p)²)``
========  ==========================================  =============================

where ``S_n²`` is the sample variance of the matching values, ``c`` is the
selectivity (fraction of sampled rows matching the predicate), ``I_k`` the
match indicator, ``p`` the requested quantile, and ``f`` the density of the
data at the quantile.  Standard deviation is therefore proportional to
``1/√n`` for all of them, which is what the Error-Latency Profile
extrapolates on (§4.2).
"""

from __future__ import annotations

import math


def avg_variance(sample_variance: float, n: int) -> float:
    """Variance of the sample mean: ``S_n² / n``."""
    if n <= 0:
        return math.inf
    return max(0.0, sample_variance) / n


def count_variance(population: float, n: int, selectivity: float) -> float:
    """Variance of the scaled count estimator: ``(N²/n)·c(1−c)``."""
    if n <= 0:
        return math.inf
    c = min(1.0, max(0.0, selectivity))
    return (population**2 / n) * c * (1.0 - c)


def sum_variance(
    population: float,
    n: int,
    sample_variance: float,
    selectivity: float,
    mean_value: float = 0.0,
) -> float:
    """Variance of the scaled-sum estimator.

    Table 2 gives ``N² · (S_n²/n) · c(1−c)``.  That expression understates the
    uncertainty when the mean of the matching values is large relative to
    their spread (the count noise then dominates), so we additionally include
    the standard two-term decomposition of the variance of
    ``(N/n)·Σ I_k·X_k``::

        Var ≈ (N²/n) · [ c·S_n² + c(1−c)·x̄² ]

    which reduces to Table 2's form when ``x̄`` is negligible.  Benchmarks
    against bootstrap variances (see ``benchmarks/test_table2_error_formulas``)
    show this matches the empirical spread.
    """
    if n <= 0:
        return math.inf
    c = min(1.0, max(0.0, selectivity))
    variance_term = c * max(0.0, sample_variance)
    count_term = c * (1.0 - c) * (mean_value**2)
    return (population**2 / n) * (variance_term + count_term)


def quantile_variance(n: int, p: float, density_at_quantile: float) -> float:
    """Variance of the sample quantile: ``p(1−p) / (n · f(x_p)²)``."""
    if n <= 0:
        return math.inf
    if not 0.0 < p < 1.0:
        raise ValueError("quantile p must be in (0, 1)")
    if density_at_quantile <= 0:
        return math.inf
    # Guard against overflow when the data is (nearly) degenerate around the
    # quantile: an enormous density means the quantile is pinned, i.e. the
    # estimator has essentially no variance.
    if density_at_quantile > 1e150:
        return 0.0
    return p * (1.0 - p) / (n * density_at_quantile**2)


def stddev_variance(sample_variance: float, n: int) -> float:
    """Approximate variance of the sample standard deviation.

    For approximately normal data, ``Var(S) ≈ S² / (2(n−1))``.  This is an
    extension beyond Table 2 used for the STDDEV aggregate.
    """
    if n <= 1:
        return math.inf
    return max(0.0, sample_variance) / (2.0 * (n - 1))


def variance_of_sample_variance(sample_variance: float, n: int) -> float:
    """Approximate variance of the sample variance: ``2·S⁴/(n−1)``."""
    if n <= 1:
        return math.inf
    return 2.0 * max(0.0, sample_variance) ** 2 / (n - 1)
