"""Uncertainty propagation for combined estimates.

The paper's implementation adds an "Uncertainty Propagation module" that
modifies the aggregation operators to return error bars (§5) and notes that
closed-form estimates can be derived for combinations of the basic aggregates
[30].  The runtime needs exactly three combination rules:

* **Sums of independent estimates** — used when a disjunctive query is
  rewritten as a union of conjunctive sub-queries (§4.1.2) and the partial
  COUNT/SUM answers are added.
* **Scaling by a constant** — e.g. converting a per-sample count into a
  population count.
* **Differences** — offered as a convenience for "compare two groups" style
  analyses in the examples.

All rules assume independence between the combined estimates, which holds
for BlinkDB's disjoint disjunctive branches and disjoint strata.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.estimation.estimators import Estimate


def combine_sum(estimates: Sequence[Estimate]) -> Estimate:
    """The sum of independent estimates; variances add."""
    if not estimates:
        raise ValueError("combine_sum requires at least one estimate")
    value = sum(e.value for e in estimates)
    if any(not math.isfinite(e.variance) for e in estimates):
        variance = math.inf
    else:
        variance = sum(e.variance for e in estimates)
    sample_rows = sum(e.sample_rows for e in estimates)
    rows_read = sum(e.rows_read for e in estimates)
    population = None
    if all(e.population_rows is not None for e in estimates):
        population = sum(e.population_rows for e in estimates)  # type: ignore[misc]
    exact = all(e.exact for e in estimates)
    return Estimate(value, 0.0 if exact else variance, sample_rows, rows_read, population, exact)


def scale(estimate: Estimate, factor: float) -> Estimate:
    """Multiply an estimate by a constant; variance scales by ``factor²``."""
    variance = estimate.variance * factor**2 if math.isfinite(estimate.variance) else math.inf
    population = (
        estimate.population_rows * factor if estimate.population_rows is not None else None
    )
    return Estimate(
        estimate.value * factor,
        0.0 if estimate.exact else variance,
        estimate.sample_rows,
        estimate.rows_read,
        population,
        estimate.exact,
    )


def difference(left: Estimate, right: Estimate) -> Estimate:
    """The difference of two independent estimates; variances add."""
    if math.isfinite(left.variance) and math.isfinite(right.variance):
        variance = left.variance + right.variance
    else:
        variance = math.inf
    exact = left.exact and right.exact
    return Estimate(
        left.value - right.value,
        0.0 if exact else variance,
        left.sample_rows + right.sample_rows,
        left.rows_read + right.rows_read,
        None,
        exact,
    )


def weighted_average(estimates: Sequence[Estimate], weights: Sequence[float]) -> Estimate:
    """A fixed-weight average of independent estimates.

    Used when an answer is assembled from disjoint partitions with known
    relative sizes (e.g. averaging per-stratum means by stratum population).
    """
    if not estimates:
        raise ValueError("weighted_average requires at least one estimate")
    if len(estimates) != len(weights):
        raise ValueError("estimates and weights must have the same length")
    total_weight = float(sum(weights))
    if total_weight <= 0:
        raise ValueError("weights must sum to a positive value")
    value = sum(e.value * w for e, w in zip(estimates, weights)) / total_weight
    if any(not math.isfinite(e.variance) for e in estimates):
        variance = math.inf
    else:
        variance = sum(e.variance * (w / total_weight) ** 2 for e, w in zip(estimates, weights))
    sample_rows = sum(e.sample_rows for e in estimates)
    rows_read = sum(e.rows_read for e in estimates)
    exact = all(e.exact for e in estimates)
    return Estimate(value, 0.0 if exact else variance, sample_rows, rows_read, None, exact)
