"""The end-to-end BlinkDB runtime (paper §4): plan, then dispatch.

:class:`BlinkDBRuntime` receives a BlinkQL query (raw text, parsed AST, or
an already-normalized :class:`~repro.planner.logical.LogicalPlan`), hands it
to the cost-based :class:`~repro.planner.planner.QueryPlanner`, and then
*dispatches* the resulting :class:`~repro.planner.physical.PhysicalPlan`:

* ``APPROXIMATE`` plans run on the chosen sample resolution — serially, or
  through the partition pipeline when the plan carries a partition layout
  (anytime deadline cuts, progressive snapshots);
* ``DISJUNCTIVE`` plans run one sub-plan per disjoint OR branch and combine
  the partial answers with propagated uncertainty (§4.1.2);
* ``EXACT`` plans run the same logical plan bound to the full base table
  (the no-sampling baseline).

All decision logic — family selection (§4.1), Error-Latency-Profile
resolution sizing (§4.2), anytime partition layout, column pruning — lives
in the planner; the runtime only executes plans and attaches simulated
cluster latencies (§4.4).  :meth:`BlinkDBRuntime.explain` returns the
PhysicalPlan without executing it (the ``EXPLAIN`` statement).

Thread safety
-------------
:meth:`BlinkDBRuntime.execute` is reentrant: every per-query decision lives
in the plan and the per-call :class:`~repro.engine.executor.ExecutionContext`
— the planner, selector, sizer, and executor are stateless after
construction apart from the probe memo (internally locked), and the
catalog/simulator are only read.  The service layer (:mod:`repro.service`)
therefore shares one runtime across its whole worker pool; the only other
synchronised state here is the lifetime statistics counter.  Mutations of
the catalog (sample rebuilds) are serialised against queries by the facade's
read/write state lock, not by the runtime — the facade discards the runtime
(and with it the probe memo) whenever samples or data change.
"""

from __future__ import annotations

import math
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.common.clock import monotonic
from repro.common.config import BlinkDBConfig
from repro.common.errors import ConstraintUnsatisfiableError
from repro.cluster.simulator import ClusterSimulator
from repro.engine.executor import ExecutionContext, Plannable, QueryExecutor
from repro.engine.kernels import ScanSink
from repro.engine.result import AggregateValue, GroupResult, QueryResult
from repro.estimation.propagation import combine_sum
from repro.obs.ledger import template_label_of
from repro.obs.observability import Observability
from repro.obs.trace import NULL_SPAN, NULL_TRACE, AnySpan, AnyTrace
from repro.planner.logical import LogicalPlan
from repro.planner.physical import PartitionSpec, PhysicalPlan, PlanMode
from repro.planner.planner import QueryPlanner
from repro.runtime.partitioned import PartitionPipeline, ProgressCallback
from repro.runtime.procpool import ProcessBackend, ProcessPartitionPool
from repro.runtime.selection import FamilySelection, ProbeResult
from repro.runtime.sizing import ErrorLatencyProfile
from repro.sampling.resolution import SampleResolution
from repro.storage.catalog import Catalog
from repro.storage.table import Table


@dataclass(frozen=True)
class RuntimeDecision:
    """Everything the runtime decided while answering one query."""

    family_key: tuple[str, ...] | None
    family_reason: str
    resolution_name: str
    resolution_rows: int
    bound_satisfied: bool
    predicted_relative_error: float | None = None
    predicted_latency_seconds: float | None = None
    profile: ErrorLatencyProfile | None = field(default=None, compare=False)
    probed_families: tuple[str, ...] = ()
    branches: int = 1
    #: Partition-pipeline provenance: how many partitions executed, whether
    #: the answer is an anytime (deadline-cut) answer, and what fraction of
    #: the sample's represented population the merged partitions cover.
    partitions: int = 1
    anytime: bool = False
    coverage_fraction: float = 1.0
    #: The physical plan the answer was computed from (EXPLAIN provenance).
    plan: PhysicalPlan | None = field(default=None, compare=False)


class BlinkDBRuntime:
    """Answers BlinkQL queries from the samples registered in a catalog."""

    def __init__(
        self,
        catalog: Catalog,
        config: BlinkDBConfig | None = None,
        simulator: ClusterSimulator | None = None,
        dimension_tables: Mapping[str, Table] | None = None,
        observability: Observability | None = None,
        procpool: ProcessPartitionPool | None = None,
    ) -> None:
        self.catalog = catalog
        self.config = config or BlinkDBConfig()
        self.simulator = simulator
        # Shared with the facade/service when passed in, so traces, metrics,
        # and the accuracy ledger survive runtime rebuilds (sample refreshes).
        self.obs = observability or Observability(self.config)
        self.executor = QueryExecutor(
            dimension_tables,
            scan_acceleration=self.config.scan_acceleration,
            zone_block_rows=self.config.zone_block_rows,
        )
        self.planner = QueryPlanner(
            catalog, self.executor, config=self.config, simulator=simulator
        )
        # Shared with the planner: the selector (probe memo) and sizer are
        # planner-owned; the runtime exposes them for tests and tooling.
        self.selector = self.planner.selector
        self.sizer = self.planner.sizer
        self.pipeline = PartitionPipeline(
            self.executor,
            straggler_spread=self.config.straggler_spread,
            seed=self.config.seed,
        )
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        # Facade-owned process pool (shared across runtime rebuilds); this
        # runtime's shm exports live under its own epoch, released on close()
        # — the facade closes the runtime on every append/load/build, which
        # is exactly the generation fence the segments need.
        self._procpool = procpool
        self._procpool_epoch = procpool.new_epoch() if procpool is not None else None
        self._stats_lock = threading.Lock()
        self._queries_executed = 0
        self._exact_queries_executed = 0
        self._disjunctive_queries_executed = 0
        self._anytime_queries_executed = 0

    # -- public API -------------------------------------------------------------------
    def explain(self, query: Plannable) -> PhysicalPlan:
        """Plan a query without executing it (the ``EXPLAIN`` statement)."""
        logical = LogicalPlan.of(query)
        return self.planner.plan(logical)

    def execute(
        self,
        query: Plannable,
        progress: ProgressCallback | None = None,
        *,
        trace: AnyTrace | None = None,
        scan_sink: ScanSink | None = None,
        wall_timeout_seconds: float | None = None,
    ) -> QueryResult:
        """Answer a query approximately, honouring its error/time bound.

        ``progress`` — when given — routes the execution through the
        partition pipeline and receives one
        :class:`~repro.runtime.partitioned.ProgressiveSnapshot` per partition
        merge (disjunctive queries fall back to a single final snapshot-less
        answer).

        ``trace`` lets a caller (the service layer, EXPLAIN ANALYZE) supply a
        pre-opened :class:`~repro.obs.trace.QueryTrace` — e.g. one that
        already carries an admission-wait span; when omitted the runtime's
        tracer decides sampling.  ``scan_sink`` similarly overrides the
        per-query scan-actuals accumulator.  A sampled trace is attached to
        ``result.metadata["trace"]`` and the sink (when present) to
        ``result.metadata["scan_actuals"]``.

        ``wall_timeout_seconds`` bounds the *wall-clock* time the process
        backend may spend on this query (the service layer passes the
        query's admission deadline here), so a hung worker cannot hold a
        ``WITHIN``-bounded query past its bound; the thread path is
        unaffected.
        """
        logical = LogicalPlan.of(query)
        if trace is None:
            trace = self.obs.tracer.begin(table=logical.table)
        sink = scan_sink if scan_sink is not None else (
            ScanSink() if trace.sampled else None
        )
        started = monotonic()
        try:
            result = self._execute_traced(
                logical, progress, trace, sink,
                wall_timeout_seconds=wall_timeout_seconds,
            )
        finally:
            trace.finish()
        self._observe(logical, result, trace, sink, monotonic() - started)
        return result

    def _execute_traced(
        self,
        logical: LogicalPlan,
        progress: ProgressCallback | None,
        trace: AnyTrace,
        sink: ScanSink | None,
        wall_timeout_seconds: float | None = None,
    ) -> QueryResult:
        # Captured before planning/execution; the caller's read lock keeps it
        # consistent with every row read below, so the stamped answer is a
        # single-generation answer by construction.
        generation = self.catalog.generation(logical.table)
        with trace.span("plan") as plan_span:
            plan = self.planner.plan(
                logical, progressive=progress is not None, span=plan_span
            )

        if plan.mode is PlanMode.DISJUNCTIVE:
            with self._stats_lock:
                self._queries_executed += 1
                self._disjunctive_queries_executed += 1
            if not plan.bound_satisfied and self.config.strict_bounds:
                raise ConstraintUnsatisfiableError(
                    "one or more disjunctive branches cannot satisfy the requested bound"
                )
            result = self._execute_disjunctive(plan, trace=trace, sink=sink)
            result.metadata["generation"] = generation
            return result
        with self._stats_lock:
            self._queries_executed += 1

        if not plan.bound_satisfied and self.config.strict_bounds:
            raise ConstraintUnsatisfiableError(
                f"no resolution of family {plan.family_key} satisfies the "
                f"requested bound for query: {logical.raw_sql or logical.describe()}"
            )

        assert plan.selection is not None
        assert plan.probe is not None and plan.resolution is not None
        anytime = plan.anytime
        if plan.partitioning is not None:
            with trace.span(
                "partition-dispatch",
                partitions=plan.partitioning.num_partitions,
                sample=plan.resolution.name,
            ) as dispatch:
                result, stats = self._run_pipeline(
                    plan,
                    progress=progress,
                    trace_span=dispatch,
                    sink=sink,
                    wall_timeout_seconds=wall_timeout_seconds,
                )
            partitions_run = stats.num_partitions
            coverage = stats.coverage_population_fraction
            if anytime and coverage < 1.0:
                # Count only answers that are *actually* partial: a deadline
                # the schedule happened to fit completely is a full answer.
                with self._stats_lock:
                    self._anytime_queries_executed += 1
        else:
            with trace.span(
                "dispatch", mode="serial", sample=plan.resolution.name
            ) as dispatch:
                result = self._run_on_resolution(
                    plan.logical, plan.selection, plan.resolution, sink=sink
                )
                with dispatch.span("estimate"):
                    result = self._attach_latency(
                        result, plan.selection, plan.resolution, plan.probe, plan.logical
                    )
            partitions_run = 1
            coverage = 1.0
            anytime = False

        entry_error = None
        entry_latency = None
        if plan.profile is not None:
            entry = plan.profile.entry_for(plan.resolution)
            entry_error = entry.predicted_relative_error
            entry_latency = entry.predicted_latency_seconds
        decision = RuntimeDecision(
            family_key=plan.family_key,
            family_reason=plan.selection.reason,
            resolution_name=plan.resolution.name,
            resolution_rows=plan.resolution.num_rows,
            bound_satisfied=plan.bound_satisfied,
            predicted_relative_error=entry_error,
            predicted_latency_seconds=entry_latency,
            profile=plan.profile,
            probed_families=plan.probed_resolutions,
            partitions=partitions_run,
            anytime=anytime and coverage < 1.0,
            coverage_fraction=coverage,
            plan=plan,
        )
        result.metadata["decision"] = decision
        result.metadata["plan"] = plan
        result.metadata["generation"] = generation
        return result

    def _observe(
        self,
        logical: LogicalPlan,
        result: QueryResult,
        trace: AnyTrace,
        sink: ScanSink | None,
        measured_seconds: float,
    ) -> None:
        """Attach trace/scan actuals and feed the unified metrics + ledger."""
        if trace.sampled:
            result.metadata["trace"] = trace
        if sink is not None:
            result.metadata["scan_actuals"] = sink
        plan = result.metadata.get("plan")
        mode = plan.mode.value if plan is not None else "approximate"
        decision = result.metadata.get("decision")
        predicted_latency = (
            decision.predicted_latency_seconds if decision is not None else None
        )
        predicted_error = (
            decision.predicted_relative_error if decision is not None else None
        )
        realized = result.max_relative_error()
        if realized is not None and not math.isfinite(realized):
            realized = None
        self.obs.observe_query(
            template_label_of(logical),
            mode=mode,
            predicted_latency_s=predicted_latency,
            actual_latency_s=result.simulated_latency_seconds,
            predicted_relative_error=predicted_error,
            realized_relative_error=realized,
            measured_seconds=measured_seconds,
        )

    def execute_partitioned(
        self,
        query: Plannable,
        *,
        num_partitions: int | None = None,
        sim_workers: int | None = None,
        reference_workers: int | None = None,
        deadline_seconds: float | None = None,
        progress: ProgressCallback | None = None,
        trace: AnyTrace | None = None,
        scan_sink: ScanSink | None = None,
    ) -> QueryResult:
        """Answer a query through the partition pipeline with explicit knobs.

        ``sim_workers`` is the number of per-query task slots the simulated
        cluster grants the query; ``reference_workers`` calibrates which slot
        count corresponds to the cluster simulator's full-scan latency
        (defaults to ``sim_workers``).  Used by benchmarks to measure
        partition-parallel speedup and anytime error/deadline trade-offs.
        """
        logical = LogicalPlan.of(query)
        if trace is None:
            trace = self.obs.tracer.begin(table=logical.table)
        sink = scan_sink if scan_sink is not None else (
            ScanSink() if trace.sampled else None
        )
        started = monotonic()
        generation = self.catalog.generation(logical.table)
        with self._stats_lock:
            self._queries_executed += 1
        try:
            with trace.span("plan"):
                plan = self.planner.plan_partitioned(
                    logical,
                    num_partitions=num_partitions,
                    sim_workers=sim_workers,
                    reference_workers=reference_workers,
                    deadline_seconds=deadline_seconds,
                )
            assert plan.selection is not None and plan.resolution is not None
            with trace.span(
                "partition-dispatch",
                partitions=plan.partitioning.num_partitions
                if plan.partitioning is not None
                else 1,
                sample=plan.resolution.name,
            ) as dispatch:
                result, stats = self._run_pipeline(
                    plan, progress=progress, trace_span=dispatch, sink=sink
                )
        finally:
            trace.finish()
        result.metadata["decision"] = RuntimeDecision(
            family_key=plan.family_key,
            family_reason=plan.selection.reason,
            resolution_name=plan.resolution.name,
            resolution_rows=plan.resolution.num_rows,
            bound_satisfied=plan.bound_satisfied,
            profile=plan.profile,
            probed_families=plan.probed_resolutions,
            partitions=stats.num_partitions,
            anytime=not stats.complete,
            coverage_fraction=stats.coverage_population_fraction,
            plan=plan,
        )
        result.metadata["plan"] = plan
        result.metadata["generation"] = generation
        self._observe(logical, result, trace, sink, monotonic() - started)
        return result

    def execute_exact(
        self,
        query: Plannable,
        *,
        trace: AnyTrace | None = None,
        scan_sink: ScanSink | None = None,
    ) -> QueryResult:
        """Answer a query exactly from the base table (the no-sampling baseline)."""
        logical = LogicalPlan.of(query)
        if trace is None:
            trace = self.obs.tracer.begin(table=logical.table)
        sink = scan_sink if scan_sink is not None else (
            ScanSink() if trace.sampled else None
        )
        started = monotonic()
        generation = self.catalog.generation(logical.table)
        try:
            with trace.span("plan"):
                plan = self.planner.plan_exact(logical)
            with self._stats_lock:
                self._exact_queries_executed += 1
            table = self.catalog.table(logical.table)
            context = ExecutionContext(exact=True, sample_name=None, scan_sink=sink)
            with trace.span("dispatch", mode="exact", table=table.name) as dispatch:
                result = self.executor.execute(plan.logical, table, context)
                if self.simulator is not None and self.simulator.has_dataset(table.name):
                    with dispatch.span("estimate"):
                        execution = self.simulator.simulate_scan(
                            table.name, output_groups=max(1, len(result.groups))
                        )
                        result = replace(
                            result, simulated_latency_seconds=execution.latency_seconds
                        )
        finally:
            trace.finish()
        result.metadata["plan"] = plan
        result.metadata["generation"] = generation
        self._observe(logical, result, trace, sink, monotonic() - started)
        return result

    @property
    def stats(self) -> dict[str, int]:
        """Lifetime execution counters (thread-safe snapshot).

        Includes the zone-mapped scan counters (``blocks_total`` /
        ``blocks_skipped`` / ``bytes_scanned`` …) accumulated by the
        executor's accelerated filter path.
        """
        with self._stats_lock:
            counters = {
                "queries_executed": self._queries_executed,
                "exact_queries_executed": self._exact_queries_executed,
                "disjunctive_queries_executed": self._disjunctive_queries_executed,
                "anytime_queries_executed": self._anytime_queries_executed,
            }
        counters.update(self.selector.probe_cache_stats)
        counters.update(self.executor.scan_stats)
        return counters

    # -- internals: single-plan path -----------------------------------------------------
    def _run_on_resolution(
        self,
        logical: LogicalPlan,
        selection: FamilySelection,
        resolution: SampleResolution,
        sink: ScanSink | None = None,
    ) -> QueryResult:
        context = ExecutionContext(
            weights=resolution.weights,
            exact=False,
            unit_weight_exact=selection.covers_query,
            rows_read=resolution.num_rows,
            population_read=resolution.represented_rows,
            sample_name=resolution.name,
            scan_sink=sink,
        )
        return self.executor.execute(logical, resolution.table, context)

    # -- internals: partition pipeline ---------------------------------------------------
    def _run_pipeline(
        self,
        plan: PhysicalPlan,
        *,
        progress: ProgressCallback | None,
        trace_span: AnySpan = NULL_SPAN,
        sink: ScanSink | None = None,
        wall_timeout_seconds: float | None = None,
    ):
        """Run a physical plan's partition layout through the pipeline."""
        assert plan.selection is not None and plan.resolution is not None
        spec: PartitionSpec = plan.partitioning or PartitionSpec(1, 1)
        resolution = plan.resolution
        context = ExecutionContext(
            weights=resolution.weights,
            exact=False,
            unit_weight_exact=plan.selection.covers_query,
            rows_read=resolution.num_rows,
            population_read=resolution.represented_rows,
            sample_name=resolution.name,
            scan_sink=sink,
        )
        pool = self._partition_pool()
        backend, decline_reason = self._process_backend(
            plan.logical, resolution, fallback=pool
        )
        if backend is not None and wall_timeout_seconds is not None:
            backend.deadline = monotonic() + wall_timeout_seconds
        result = self.pipeline.run(
            plan.logical,
            resolution.table,
            context,
            num_partitions=spec.num_partitions,
            sim_workers=spec.sim_workers,
            reference_workers=spec.reference_workers,
            scan_latency_seconds=spec.scan_latency_seconds,
            task_overhead_seconds=spec.task_overhead_seconds,
            deadline_seconds=spec.deadline_seconds,
            pool=backend if backend is not None else pool,
            progress=progress,
            trace_span=trace_span,
        )
        # A pre-pipeline decline (breaker open, export failure, joins) never
        # reaches the backend seam, so surface its reason here — silent
        # thread fallback must stay visible in EXPLAIN ANALYZE and metrics.
        if backend is None and decline_reason is not None:
            info = result.metadata.get("backend_info")
            if info is not None:
                info.setdefault("fallback_reason", decline_reason)
        stats = result.metadata["partitions"]
        return result, stats

    def _process_backend(
        self,
        logical: LogicalPlan,
        resolution: SampleResolution,
        fallback: ThreadPoolExecutor | None,
    ) -> tuple[ProcessBackend | None, str | None]:
        """The process-pool binding for this resolution, or ``(None, why)``.

        ``None`` — plans with joins, ``execution_backend="threads"``, no
        pool, shm unavailable, breaker open, or export failure — means the
        pipeline uses the thread/inline path; a constructed backend still
        carries ``fallback`` so it can decline per query without losing the
        pool.  The second element names the decline reason whenever the
        configuration *wanted* processes but this query can't use them.
        """
        procpool = self._procpool
        if (
            procpool is None
            or self._procpool_epoch is None
            or self.config.execution_backend != "processes"
        ):
            return None, None
        if logical.joins:
            procpool.record_fallback("joins")
            return None, "joins"
        if not procpool.admit():
            return None, procpool.last_fallback_reason or procpool.fallback_reason
        handle = procpool.ensure_export(
            self._procpool_epoch,
            f"{logical.table}:{resolution.name}",
            resolution.table,
            resolution.weights,
        )
        if handle is None:
            return None, procpool.last_fallback_reason or "export failed"
        backend = ProcessBackend(
            procpool, handle, executor=self.executor, fallback=fallback
        )
        return backend, None

    def _partition_pool(self) -> ThreadPoolExecutor | None:
        """The shared partial-aggregation pool (None when configured inline)."""
        if self.config.partition_workers <= 1:
            return None
        if self._pool is None:
            with self._pool_lock:
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.config.partition_workers,
                        thread_name_prefix="blinkdb-partition",
                    )
        return self._pool

    def close(self) -> None:
        """Shut down the partial-aggregation pool (idempotent).

        The facade calls this whenever it discards a runtime (sample
        rebuilds, data reloads) so partition worker threads never outlive
        the runtime that started them.  The process pool itself is
        facade-owned and survives; only this runtime's epoch of shm exports
        is released — that is the generation fence that keeps appends and
        ``load_table`` from leaking segments.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False)
        procpool, epoch = self._procpool, self._procpool_epoch
        if procpool is not None and epoch is not None:
            procpool.release_epoch(epoch)

    def _attach_latency(
        self,
        result: QueryResult,
        selection: FamilySelection,
        resolution: SampleResolution,
        probe: ProbeResult,
        logical: LogicalPlan | None = None,
    ) -> QueryResult:
        if self.simulator is None or not self.simulator.has_dataset(resolution.name):
            return result
        rows_to_read, reuse_rows = self.planner.scan_parameters(
            selection, resolution, probe, logical
        )
        execution = self.simulator.simulate_scan(
            resolution.name,
            rows_to_read=rows_to_read,
            output_groups=max(1, len(result.groups)),
            reuse_rows=reuse_rows,
        )
        return replace(result, simulated_latency_seconds=execution.latency_seconds)

    # -- internals: disjunctive path (§4.1.2) --------------------------------------------------
    def _execute_disjunctive(
        self,
        plan: PhysicalPlan,
        *,
        trace: AnyTrace = NULL_TRACE,
        sink: ScanSink | None = None,
    ) -> QueryResult:
        branch_results: list[QueryResult] = []
        total_rows_read = 0
        total_latency = 0.0
        any_latency = False

        for index, branch_plan in enumerate(plan.branch_plans):
            with trace.span(
                "branch", index=index, sample=branch_plan.resolution.name
            ):
                result = self._run_on_resolution(
                    branch_plan.logical,
                    branch_plan.selection,
                    branch_plan.resolution,
                    sink=sink,
                )
                result = self._attach_latency(
                    result,
                    branch_plan.selection,
                    branch_plan.resolution,
                    branch_plan.probe,
                    branch_plan.logical,
                )
            branch_results.append(result)
            total_rows_read += result.rows_read
            if result.simulated_latency_seconds is not None:
                any_latency = True
                # Branches execute in parallel on the cluster; the slowest
                # branch dominates.
                total_latency = max(total_latency, result.simulated_latency_seconds)

        logical = plan.logical
        confidence = (
            logical.error_bound.confidence if logical.error_bound is not None else 0.95
        )
        aggregates: dict[str, AggregateValue] = {}
        for call in logical.aggregates:
            name = call.output_name()
            estimates = [r.groups[0].aggregates[name].estimate for r in branch_results if r.groups]
            combined = combine_sum(estimates)
            aggregates[name] = AggregateValue(name, combined, confidence)
        group = GroupResult(key=(), aggregates=aggregates)
        result = QueryResult(
            group_by=(),
            groups=(group,),
            rows_read=total_rows_read,
            sample_name="union",
            simulated_latency_seconds=total_latency if any_latency else None,
        )
        result.metadata["decision"] = RuntimeDecision(
            family_key=None,
            family_reason="disjunctive-union",
            resolution_name="union",
            resolution_rows=total_rows_read,
            bound_satisfied=plan.bound_satisfied,
            branches=len(plan.branch_plans),
            plan=plan,
        )
        result.metadata["plan"] = plan
        return result
