"""The end-to-end BlinkDB runtime (paper §4).

:class:`BlinkDBRuntime` receives a parsed (or raw) BlinkQL query and:

1. selects a sample family (§4.1) — superset match or probe,
2. builds an Error-Latency Profile and picks a resolution that satisfies the
   query's error or time bound (§4.2),
3. executes the query on that resolution with per-row weight bias correction
   (§4.3),
4. attaches the simulated cluster latency, reusing the probe's work when the
   chosen resolution belongs to the probed family (§4.4),
5. for disjunctive COUNT/SUM queries without GROUP BY, rewrites the query
   into disjoint conjunctive branches, answers each on its own best family,
   and combines the partial answers with propagated uncertainty (§4.1.2).

Partition-parallel and anytime execution
----------------------------------------
The runtime owns a :class:`~repro.runtime.partitioned.PartitionPipeline`
and a shared partial-aggregation thread pool.  Two paths use it:

* **anytime answers** — when a ``WITHIN`` time bound cannot be satisfied by
  any resolution (and ``strict_bounds`` is off), the query runs
  partition-parallel on the smallest viable sample and *stops at the
  deadline*: the partitions whose simulated completion fits the bound are
  merged and the estimate is returned with correctly widened error bars and
  a coverage fraction in the decision metadata, instead of an answer that
  blows through its deadline;
* **progressive answers** — callers passing ``progress=`` to
  :meth:`BlinkDBRuntime.execute` (the service layer's progressive tickets)
  get one snapshot per partition merge.

:meth:`BlinkDBRuntime.execute_partitioned` exposes the pipeline directly
with explicit partition/worker counts (used by benchmarks to measure
speedup vs. per-query parallelism).

Thread safety
-------------
:meth:`BlinkDBRuntime.execute` is reentrant: every per-query decision lives
in locals and in the per-call :class:`~repro.engine.executor.ExecutionContext`
— the selector, sizer, and executor are stateless after construction, and
the catalog/simulator are only read.  The service layer
(:mod:`repro.service`) therefore shares one runtime across its whole worker
pool; the only synchronised state here is the lifetime statistics counter.
Mutations of the catalog (sample rebuilds) are serialised against queries by
the facade's read/write state lock, not by the runtime.
"""

from __future__ import annotations

import math
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.common.config import BlinkDBConfig
from repro.common.errors import ConstraintUnsatisfiableError
from repro.cluster.simulator import ClusterSimulator
from repro.engine.executor import ExecutionContext, QueryExecutor
from repro.engine.result import AggregateValue, GroupResult, QueryResult
from repro.estimation.propagation import combine_sum
from repro.runtime.partitioned import PartitionPipeline, ProgressCallback
from repro.runtime.selection import FamilySelection, ProbeResult, SampleFamilySelector
from repro.runtime.sizing import ErrorLatencyProfile, SampleSizer
from repro.sampling.resolution import SampleResolution
from repro.sql.ast import AggregateFunction, Query
from repro.sql.parser import parse_query
from repro.storage.catalog import Catalog
from repro.storage.table import Table


@dataclass(frozen=True)
class RuntimeDecision:
    """Everything the runtime decided while answering one query."""

    family_key: tuple[str, ...] | None
    family_reason: str
    resolution_name: str
    resolution_rows: int
    bound_satisfied: bool
    predicted_relative_error: float | None = None
    predicted_latency_seconds: float | None = None
    profile: ErrorLatencyProfile | None = field(default=None, compare=False)
    probed_families: tuple[str, ...] = ()
    branches: int = 1
    #: Partition-pipeline provenance: how many partitions executed, whether
    #: the answer is an anytime (deadline-cut) answer, and what fraction of
    #: the sample's represented population the merged partitions cover.
    partitions: int = 1
    anytime: bool = False
    coverage_fraction: float = 1.0


class BlinkDBRuntime:
    """Answers BlinkQL queries from the samples registered in a catalog."""

    def __init__(
        self,
        catalog: Catalog,
        config: BlinkDBConfig | None = None,
        simulator: ClusterSimulator | None = None,
        dimension_tables: Mapping[str, Table] | None = None,
    ) -> None:
        self.catalog = catalog
        self.config = config or BlinkDBConfig()
        self.simulator = simulator
        self.executor = QueryExecutor(dimension_tables)
        self.selector = SampleFamilySelector(catalog, self.executor)
        self.sizer = SampleSizer(simulator)
        self.pipeline = PartitionPipeline(
            self.executor,
            straggler_spread=self.config.straggler_spread,
            seed=self.config.seed,
        )
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._queries_executed = 0
        self._exact_queries_executed = 0
        self._disjunctive_queries_executed = 0
        self._anytime_queries_executed = 0

    # -- public API -------------------------------------------------------------------
    def execute(
        self, query: Query | str, progress: ProgressCallback | None = None
    ) -> QueryResult:
        """Answer a query approximately, honouring its error/time bound.

        ``progress`` — when given — routes the execution through the
        partition pipeline and receives one
        :class:`~repro.runtime.partitioned.ProgressiveSnapshot` per partition
        merge (disjunctive queries fall back to a single final snapshot-less
        answer).
        """
        if isinstance(query, str):
            query = parse_query(query)

        if self._should_split_disjunction(query):
            with self._stats_lock:
                self._queries_executed += 1
                self._disjunctive_queries_executed += 1
            return self._execute_disjunctive(query)
        with self._stats_lock:
            self._queries_executed += 1

        selection = self.selector.select(query)
        probe = selection.probe or self.selector.probe(query, selection.family.smallest)
        resolution, profile, satisfied = self._choose_resolution(query, selection, probe)

        if not satisfied and self.config.strict_bounds:
            raise ConstraintUnsatisfiableError(
                f"no resolution of family {self._family_key(selection)} satisfies the "
                f"requested bound for query: {query.raw_sql or query}"
            )

        anytime = (
            not satisfied
            and query.time_bound is not None
            and self.config.anytime_enabled
        )
        if anytime or progress is not None:
            deadline = query.time_bound.seconds if anytime else None
            result, stats = self._run_pipeline(
                query,
                selection,
                resolution,
                probe,
                deadline_seconds=deadline,
                progress=progress,
            )
            partitions_run = stats.num_partitions
            coverage = stats.coverage_population_fraction
            if anytime and coverage < 1.0:
                # Count only answers that are *actually* partial: a deadline
                # the schedule happened to fit completely is a full answer.
                with self._stats_lock:
                    self._anytime_queries_executed += 1
        else:
            result = self._run_on_resolution(query, selection, resolution)
            result = self._attach_latency(result, selection, resolution, probe)
            partitions_run = 1
            coverage = 1.0
            anytime = False

        entry_error = None
        entry_latency = None
        if profile is not None:
            entry = profile.entry_for(resolution)
            entry_error = entry.predicted_relative_error
            entry_latency = entry.predicted_latency_seconds
        decision = RuntimeDecision(
            family_key=self._family_key(selection),
            family_reason=selection.reason,
            resolution_name=resolution.name,
            resolution_rows=resolution.num_rows,
            bound_satisfied=satisfied,
            predicted_relative_error=entry_error,
            predicted_latency_seconds=entry_latency,
            profile=profile,
            probed_families=tuple(p.resolution.name for p in selection.probes),
            partitions=partitions_run,
            anytime=anytime and coverage < 1.0,
            coverage_fraction=coverage,
        )
        result.metadata["decision"] = decision
        return result

    def execute_partitioned(
        self,
        query: Query | str,
        *,
        num_partitions: int | None = None,
        sim_workers: int | None = None,
        reference_workers: int | None = None,
        deadline_seconds: float | None = None,
        progress: ProgressCallback | None = None,
    ) -> QueryResult:
        """Answer a query through the partition pipeline with explicit knobs.

        ``sim_workers`` is the number of per-query task slots the simulated
        cluster grants the query; ``reference_workers`` calibrates which slot
        count corresponds to the cluster simulator's full-scan latency
        (defaults to ``sim_workers``).  Used by benchmarks to measure
        partition-parallel speedup and anytime error/deadline trade-offs.
        """
        if isinstance(query, str):
            query = parse_query(query)
        with self._stats_lock:
            self._queries_executed += 1
        selection = self.selector.select(query)
        probe = selection.probe or self.selector.probe(query, selection.family.smallest)
        resolution, profile, satisfied = self._choose_resolution(query, selection, probe)
        result, stats = self._run_pipeline(
            query,
            selection,
            resolution,
            probe,
            deadline_seconds=deadline_seconds,
            progress=progress,
            num_partitions=num_partitions,
            sim_workers=sim_workers,
            reference_workers=reference_workers,
        )
        result.metadata["decision"] = RuntimeDecision(
            family_key=self._family_key(selection),
            family_reason=selection.reason,
            resolution_name=resolution.name,
            resolution_rows=resolution.num_rows,
            bound_satisfied=satisfied,
            profile=profile,
            probed_families=tuple(p.resolution.name for p in selection.probes),
            partitions=stats.num_partitions,
            anytime=not stats.complete,
            coverage_fraction=stats.coverage_population_fraction,
        )
        return result

    def execute_exact(self, query: Query | str) -> QueryResult:
        """Answer a query exactly from the base table (the no-sampling baseline)."""
        if isinstance(query, str):
            query = parse_query(query)
        with self._stats_lock:
            self._exact_queries_executed += 1
        table = self.catalog.table(query.table)
        context = ExecutionContext(exact=True, sample_name=None)
        result = self.executor.execute(query, table, context)
        if self.simulator is not None and self.simulator.has_dataset(table.name):
            execution = self.simulator.simulate_scan(
                table.name, output_groups=max(1, len(result.groups))
            )
            result = replace(result, simulated_latency_seconds=execution.latency_seconds)
        return result

    @property
    def stats(self) -> dict[str, int]:
        """Lifetime execution counters (thread-safe snapshot)."""
        with self._stats_lock:
            return {
                "queries_executed": self._queries_executed,
                "exact_queries_executed": self._exact_queries_executed,
                "disjunctive_queries_executed": self._disjunctive_queries_executed,
                "anytime_queries_executed": self._anytime_queries_executed,
            }

    # -- internals: single-family path -----------------------------------------------------
    def _choose_resolution(
        self, query: Query, selection: FamilySelection, probe: ProbeResult
    ) -> tuple[SampleResolution, ErrorLatencyProfile | None, bool]:
        family = selection.family
        clustered = self._clustered_scan(query, selection)
        if query.error_bound is not None:
            return self.sizer.resolution_for_error(
                family, probe, query.error_bound, clustered_scan=clustered
            )
        if query.time_bound is not None:
            return self.sizer.resolution_for_time(
                family, probe, query.time_bound, clustered_scan=clustered
            )
        profile = self.sizer.build_profile(family, probe, clustered_scan=clustered)
        return self.sizer.default_resolution(family, probe), profile, True

    @staticmethod
    def _clustered_scan(query: Query, selection: FamilySelection) -> bool:
        """Whether the scan can be confined to the query's matching strata.

        Stratified samples are stored sorted by their column set (§3.1), so
        when that column set covers the query's WHERE columns the matching
        rows are contiguous and only they need to be read.
        """
        return selection.covers_query and query.where is not None

    def _run_on_resolution(
        self, query: Query, selection: FamilySelection, resolution: SampleResolution
    ) -> QueryResult:
        context = ExecutionContext(
            weights=resolution.weights,
            exact=False,
            unit_weight_exact=selection.covers_query,
            rows_read=resolution.num_rows,
            population_read=resolution.represented_rows,
            sample_name=resolution.name,
        )
        return self.executor.execute(query, resolution.table, context)

    # -- internals: partition pipeline ---------------------------------------------------
    def _run_pipeline(
        self,
        query: Query,
        selection: FamilySelection,
        resolution: SampleResolution,
        probe: ProbeResult,
        *,
        deadline_seconds: float | None,
        progress: ProgressCallback | None,
        num_partitions: int | None = None,
        sim_workers: int | None = None,
        reference_workers: int | None = None,
    ):
        """Run one resolution through the partition pipeline."""
        context = ExecutionContext(
            weights=resolution.weights,
            exact=False,
            unit_weight_exact=selection.covers_query,
            rows_read=resolution.num_rows,
            population_read=resolution.represented_rows,
            sample_name=resolution.name,
        )
        scan_latency = None
        scan_nodes = None
        task_overhead = 0.0
        if self.simulator is not None and self.simulator.has_dataset(resolution.name):
            rows_to_read, reuse_rows = self._scan_parameters(selection, resolution, probe)
            execution = self.simulator.simulate_scan(
                resolution.name,
                rows_to_read=rows_to_read,
                output_groups=max(1, probe.num_groups),
                reuse_rows=reuse_rows,
            )
            scan_latency = execution.latency_seconds
            task_overhead = self.simulator.config.task_startup_seconds
            # Scanning is disk-bound per node: one pipeline lane per node that
            # holds input data, each draining its blocks sequentially.
            slots = self.simulator.config.scheduler_slots_per_node
            scan_nodes = max(1, execution.estimate.parallelism // max(1, slots))

        if num_partitions is None:
            anytime_cap = max(self.config.max_partitions, self.config.max_anytime_partitions)
            num_partitions = self._default_partitions(resolution.num_rows)
            if deadline_seconds is not None or progress is not None:
                # Anytime cuts and progressive snapshots need merge granularity
                # even on small resolutions: never fewer than 8 partitions
                # (bounded by the row count and the anytime cap).
                floor = min(8, resolution.num_rows, anytime_cap)
                num_partitions = max(num_partitions, floor)
            if deadline_seconds is not None and scan_latency is not None:
                # Split finely enough that one partition task (startup plus
                # its share of the per-lane scan work) fits the deadline, so
                # a tight bound yields partial coverage rather than a single
                # oversized task that blows through it.
                work = max(0.0, scan_latency - task_overhead)
                budget = deadline_seconds - task_overhead
                if work > 0.0 and budget > 0.0:
                    # A task can run up to (1 + spread) slower than its share;
                    # budget for the worst case so stragglers still fit.
                    serial = work * (scan_nodes or 1) * (1.0 + self.config.straggler_spread)
                    needed = math.ceil(serial / budget)
                    num_partitions = max(num_partitions, min(needed, anytime_cap))
            num_partitions = max(1, min(num_partitions, resolution.num_rows))
        if sim_workers is None:
            # One lane per data-holding node: the full merge then reproduces
            # the simulator's whole-scan latency, and finer partitions give
            # shorter waves within each lane.
            sim_workers = min(num_partitions, scan_nodes or num_partitions)

        result = self.pipeline.run(
            query,
            resolution.table,
            context,
            num_partitions=num_partitions,
            sim_workers=sim_workers,
            reference_workers=reference_workers,
            scan_latency_seconds=scan_latency,
            task_overhead_seconds=task_overhead,
            deadline_seconds=deadline_seconds,
            pool=self._partition_pool(),
            progress=progress,
        )
        stats = result.metadata["partitions"]
        return result, stats

    def _default_partitions(self, num_rows: int) -> int:
        config = self.config
        by_rows = max(1, num_rows // config.min_partition_rows)
        return max(1, min(config.max_partitions, by_rows, max(1, num_rows)))

    def _partition_pool(self) -> ThreadPoolExecutor | None:
        """The shared partial-aggregation pool (None when configured inline)."""
        if self.config.partition_workers <= 1:
            return None
        if self._pool is None:
            with self._pool_lock:
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.config.partition_workers,
                        thread_name_prefix="blinkdb-partition",
                    )
        return self._pool

    def close(self) -> None:
        """Shut down the partial-aggregation pool (idempotent).

        The facade calls this whenever it discards a runtime (sample
        rebuilds, data reloads) so partition worker threads never outlive
        the runtime that started them.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    def _attach_latency(
        self,
        result: QueryResult,
        selection: FamilySelection,
        resolution: SampleResolution,
        probe: ProbeResult,
    ) -> QueryResult:
        if self.simulator is None or not self.simulator.has_dataset(resolution.name):
            return result
        rows_to_read, reuse_rows = self._scan_parameters(selection, resolution, probe)
        execution = self.simulator.simulate_scan(
            resolution.name,
            rows_to_read=rows_to_read,
            output_groups=max(1, len(result.groups)),
            reuse_rows=reuse_rows,
        )
        return replace(result, simulated_latency_seconds=execution.latency_seconds)

    def _scan_parameters(
        self,
        selection: FamilySelection,
        resolution: SampleResolution,
        probe: ProbeResult,
    ) -> tuple[int | None, int]:
        """(rows_to_read, reuse_rows) of a simulated scan of ``resolution``.

        Shared by the plain and partition-pipeline paths so both report the
        same latency for the same work: ``rows_to_read`` confines a clustered
        scan to the matching strata (§3.1), ``reuse_rows`` discounts the
        blocks already read while probing a smaller resolution of the same
        family (§4.4).  Requires the resolution to be registered with the
        simulator.
        """
        assert self.simulator is not None
        reuse_rows = 0
        if probe.resolution.name != resolution.name and self._same_family(
            selection, probe.resolution
        ):
            reuse_rows = int(
                probe.resolution.num_rows
                * self._scale_ratio(resolution, probe.resolution)
            )
        rows_to_read = None
        if selection.covers_query and probe.rows_read > 0 and probe.selectivity < 1.0:
            info = self.simulator.dataset(resolution.name)
            scale = info.num_rows / resolution.num_rows if resolution.num_rows else 1.0
            rows_to_read = int(max(1, resolution.num_rows * probe.selectivity * scale))
            reuse_rows = int(reuse_rows * probe.selectivity)
        return rows_to_read, reuse_rows

    def _scale_ratio(
        self, resolution: SampleResolution, probe_resolution: SampleResolution
    ) -> float:
        """Convert probe rows into the simulator's (possibly scaled) row space."""
        if self.simulator is None:
            return 1.0
        if not self.simulator.has_dataset(probe_resolution.name):
            return 1.0
        info = self.simulator.dataset(probe_resolution.name)
        if probe_resolution.num_rows == 0:
            return 1.0
        return info.num_rows / probe_resolution.num_rows

    @staticmethod
    def _same_family(selection: FamilySelection, resolution: SampleResolution) -> bool:
        return any(r.name == resolution.name for r in selection.family.resolutions)

    @staticmethod
    def _family_key(selection: FamilySelection) -> tuple[str, ...] | None:
        return getattr(selection.family, "key", None)

    # -- internals: disjunctive path (§4.1.2) --------------------------------------------------
    def _should_split_disjunction(self, query: Query) -> bool:
        if query.group_by:
            return False
        branches = self.selector.disjunctive_branches(query)
        if len(branches) <= 1:
            return False
        allowed = {AggregateFunction.COUNT, AggregateFunction.SUM}
        return all(call.function in allowed for call in query.aggregates)

    def _execute_disjunctive(self, query: Query) -> QueryResult:
        branches = self.selector.disjunctive_branches(query)
        branch_results: list[QueryResult] = []
        total_rows_read = 0
        total_latency = 0.0
        any_latency = False
        satisfied_all = True

        branch_bound = self._per_branch_bound(query, len(branches))
        for branch in branches:
            branch_query = replace(
                query,
                where=branch,
                error_bound=branch_bound if query.error_bound is not None else None,
                time_bound=query.time_bound,
            )
            selection = self.selector.select_for_branch(branch_query, branch)
            probe = selection.probe or self.selector.probe(
                branch_query, selection.family.smallest
            )
            resolution, _, satisfied = self._choose_resolution(branch_query, selection, probe)
            satisfied_all = satisfied_all and satisfied
            result = self._run_on_resolution(branch_query, selection, resolution)
            result = self._attach_latency(result, selection, resolution, probe)
            branch_results.append(result)
            total_rows_read += result.rows_read
            if result.simulated_latency_seconds is not None:
                any_latency = True
                # Branches execute in parallel on the cluster; the slowest
                # branch dominates.
                total_latency = max(total_latency, result.simulated_latency_seconds)

        if not satisfied_all and self.config.strict_bounds:
            raise ConstraintUnsatisfiableError(
                "one or more disjunctive branches cannot satisfy the requested bound"
            )

        confidence = (
            query.error_bound.confidence if query.error_bound is not None else 0.95
        )
        aggregates: dict[str, AggregateValue] = {}
        for call in query.aggregates:
            name = call.output_name()
            estimates = [r.groups[0].aggregates[name].estimate for r in branch_results if r.groups]
            combined = combine_sum(estimates)
            aggregates[name] = AggregateValue(name, combined, confidence)
        group = GroupResult(key=(), aggregates=aggregates)
        result = QueryResult(
            group_by=(),
            groups=(group,),
            rows_read=total_rows_read,
            sample_name="union",
            simulated_latency_seconds=total_latency if any_latency else None,
        )
        result.metadata["decision"] = RuntimeDecision(
            family_key=None,
            family_reason="disjunctive-union",
            resolution_name="union",
            resolution_rows=total_rows_read,
            bound_satisfied=satisfied_all,
            branches=len(branches),
        )
        return result

    @staticmethod
    def _per_branch_bound(query: Query, num_branches: int):
        """Tighten the error bound per branch so the union still meets it.

        Independent branch variances add; answering each branch within
        ``ε/√b`` of its truth keeps the union within ``ε`` (standard
        deviations combine in quadrature).
        """
        if query.error_bound is None or num_branches <= 1:
            return query.error_bound
        return replace(query.error_bound, error=query.error_bound.error / (num_branches**0.5))
