"""Sample-size selection via the Error-Latency Profile (paper §4.2).

Once a family is chosen, BlinkDB must pick a resolution within it.  The ELP
characterises, per resolution, the predicted error (extrapolated from the
probe on the smallest resolution using the ``1/√n`` law of Table 2) and the
predicted latency (from the cluster cost model, which scales roughly linearly
with the rows scanned).  The sizer then picks:

* for an **error bound** — the *smallest* resolution whose predicted error is
  within the bound (minimising response time), and
* for a **time bound** — the *largest* resolution whose predicted latency is
  within the bound (minimising error),

falling back to the largest / smallest resolution respectively when no
resolution satisfies the constraint (the runtime flags the violation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.simulator import ClusterSimulator
from repro.sampling.family import StratifiedSampleFamily, UniformSampleFamily
from repro.sampling.resolution import SampleResolution
from repro.sql.ast import ErrorBound, TimeBound
from repro.runtime.selection import ProbeResult


@dataclass(frozen=True)
class ProfileEntry:
    """One row of the Error-Latency Profile."""

    resolution: SampleResolution
    predicted_rows_matched: float
    predicted_relative_error: float
    predicted_latency_seconds: float

    @property
    def name(self) -> str:
        return self.resolution.name


@dataclass(frozen=True)
class ErrorLatencyProfile:
    """The full ELP of a query on one family, smallest resolution first."""

    entries: tuple[ProfileEntry, ...]

    def __iter__(self):
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def smallest_meeting_error(self, target_relative_error: float) -> ProfileEntry | None:
        """Smallest resolution whose predicted error is within the target."""
        for entry in self.entries:
            if entry.predicted_relative_error <= target_relative_error:
                return entry
        return None

    def largest_meeting_latency(self, target_seconds: float) -> ProfileEntry | None:
        """Largest resolution whose predicted latency is within the target."""
        chosen: ProfileEntry | None = None
        for entry in self.entries:
            if entry.predicted_latency_seconds <= target_seconds:
                chosen = entry
        return chosen

    def entry_for(self, resolution: SampleResolution) -> ProfileEntry:
        for entry in self.entries:
            if entry.resolution.name == resolution.name:
                return entry
        raise KeyError(f"no profile entry for resolution {resolution.name!r}")


class SampleSizer:
    """Builds ELPs and picks resolutions to satisfy error or time bounds."""

    def __init__(self, simulator: ClusterSimulator | None = None) -> None:
        self.simulator = simulator

    # -- profile construction --------------------------------------------------------
    def build_profile(
        self,
        family: UniformSampleFamily | StratifiedSampleFamily,
        probe: ProbeResult,
        confidence: float = 0.95,
        clustered_scan: bool = False,
        scan_fraction: float = 1.0,
    ) -> ErrorLatencyProfile:
        """Extrapolate the probe's error/latency to every resolution of the family.

        Error extrapolation: every Table-2 standard deviation scales as
        ``1/√n`` where ``n`` is the number of matching rows, and the matching
        rows scale proportionally with the resolution size (the probe's
        selectivity is assumed stable across resolutions of one family).
        Latency comes from the cluster simulator when available, else from a
        linear-in-rows proxy.

        ``clustered_scan`` reflects §3.1's sorted sample layout: when the
        family's column set covers the query's filter columns, the rows of
        each matching stratum are contiguous on disk, so the query only scans
        the matching fraction of the resolution instead of all of it.
        ``scan_fraction`` (< 1.0) is the zone-map discount for non-clustered
        scans: the fraction of blocks the compiled predicate kernel is
        predicted to actually read after skipping provably non-matching
        ones.
        """
        probe_rows_matched = max(1, probe.rows_matched)
        probe_error = probe.worst_relative_error
        entries = []
        for resolution in family.resolutions:
            if probe.resolution.num_rows > 0:
                growth = resolution.num_rows / probe.resolution.num_rows
            else:
                growth = 1.0
            predicted_matched = probe_rows_matched * growth
            if math.isfinite(probe_error) and probe_error > 0:
                predicted_error = probe_error / math.sqrt(max(growth, 1e-12))
            elif probe_error == 0:
                predicted_error = 0.0
            else:
                # The probe could not bound the error (e.g. empty groups): be
                # pessimistic — assume the error stays unbounded until the
                # resolution is big enough to contain a useful number of
                # matching rows, then fall back to a 1/√n guess anchored at
                # one matching row in the probe.
                predicted_error = (
                    1.0 / math.sqrt(max(predicted_matched, 1.0))
                    if predicted_matched >= 2
                    else math.inf
                )
            rows_to_scan = None
            if clustered_scan and probe.rows_read > 0 and probe.selectivity < 1.0:
                rows_to_scan = int(max(1, resolution.num_rows * probe.selectivity))
            elif 0.0 <= scan_fraction < 1.0:
                rows_to_scan = int(max(1, resolution.num_rows * scan_fraction))
            latency = self._predict_latency(resolution, probe, rows_to_scan)
            entries.append(
                ProfileEntry(
                    resolution=resolution,
                    predicted_rows_matched=predicted_matched,
                    predicted_relative_error=predicted_error,
                    predicted_latency_seconds=latency,
                )
            )
        return ErrorLatencyProfile(entries=tuple(entries))

    # -- resolution choice ---------------------------------------------------------------
    def resolution_for_error(
        self,
        family: UniformSampleFamily | StratifiedSampleFamily,
        probe: ProbeResult,
        bound: ErrorBound,
        clustered_scan: bool = False,
        scan_fraction: float = 1.0,
    ) -> tuple[SampleResolution, ErrorLatencyProfile, bool]:
        """Pick the smallest resolution predicted to satisfy an error bound.

        Returns ``(resolution, profile, satisfied)`` where ``satisfied`` is
        False when even the largest resolution is predicted to miss the bound
        (the caller then reports the best achievable answer).
        """
        profile = self.build_profile(
            family, probe, bound.confidence, clustered_scan, scan_fraction
        )
        target = bound.error if bound.relative else self._absolute_to_relative(bound, probe)
        entry = profile.smallest_meeting_error(target)
        if entry is not None:
            return entry.resolution, profile, True
        return family.largest, profile, False

    def resolution_for_time(
        self,
        family: UniformSampleFamily | StratifiedSampleFamily,
        probe: ProbeResult,
        bound: TimeBound,
        clustered_scan: bool = False,
        scan_fraction: float = 1.0,
    ) -> tuple[SampleResolution, ErrorLatencyProfile, bool]:
        """Pick the largest resolution predicted to finish within a time bound."""
        profile = self.build_profile(
            family, probe, clustered_scan=clustered_scan, scan_fraction=scan_fraction
        )
        entry = profile.largest_meeting_latency(bound.seconds)
        if entry is not None:
            return entry.resolution, profile, True
        return family.smallest, profile, False

    def default_resolution(
        self,
        family: UniformSampleFamily | StratifiedSampleFamily,
        probe: ProbeResult | None = None,
    ) -> SampleResolution:
        """Resolution used when the query specifies no bound: the largest sample."""
        return family.largest

    # -- internals ---------------------------------------------------------------------------
    def _predict_latency(
        self,
        resolution: SampleResolution,
        probe: ProbeResult,
        rows_to_scan: int | None = None,
    ) -> float:
        if self.simulator is not None and self.simulator.has_dataset(resolution.name):
            info = self.simulator.dataset(resolution.name)
            simulated_rows = None
            if rows_to_scan is not None and resolution.num_rows > 0:
                scale = info.num_rows / resolution.num_rows
                simulated_rows = int(rows_to_scan * scale)
            execution = self.simulator.simulate_scan(
                resolution.name,
                rows_to_read=simulated_rows,
                output_groups=probe.num_groups,
            )
            return execution.latency_seconds
        # No simulator: a simple linear-in-rows proxy (1M rows/second/worker).
        return (rows_to_scan or resolution.num_rows) / 1e6

    @staticmethod
    def _absolute_to_relative(bound: ErrorBound, probe: ProbeResult) -> float:
        """Convert an absolute error bound into a relative one using probe values."""
        estimates = [
            abs(agg.value)
            for group in probe.result.groups
            for agg in group.aggregates.values()
            if math.isfinite(agg.value) and agg.value != 0
        ]
        if not estimates:
            return bound.error
        smallest = min(estimates)
        return bound.error / smallest
