"""Process-parallel partition execution over shared-memory blocks.

The partition pipeline's thread pool keeps the *schedule* honest but not the
wall clock: CPython threads share one GIL, so fanning CPU-bound partial
aggregation over threads buys nothing.  This module is the escape hatch —
a persistent spawn-based :class:`ProcessPartitionPool` whose workers

* **attach** exported tables by shared-memory handle
  (:mod:`repro.storage.shm`): the O(rows) column data never crosses the
  process boundary, only the small picklable handle does;
* **execute** the filter + partial-aggregation stage with their own
  :class:`~repro.engine.executor.QueryExecutor` (zone maps and kernels
  included — the exporter ships its zone-map metadata in the handle);
* **ship back** only the compact serialized
  :class:`~repro.engine.accumulators.PartialAggregation` states —
  O(groups × aggregates) bytes per partition, never O(rows).

The pool is deliberately dumb about *what* it runs: the pipeline seam in
:mod:`repro.runtime.partitioned` duck-types on
:meth:`ProcessBackend.map_partitions`, and every failure path (no
``/dev/shm``, spawn refused) returns ``None`` so the caller falls back to
the thread/inline path — the process backend can degrade, never break, a
query.

Failure model (PR 9): worker faults are *expected*, not terminal.  A dead
worker breaks the round's futures; the pool recycles itself (respawn) and
re-dispatches the failed chunks with capped exponential backoff + seeded
jitter for a bounded number of rounds.  A hung worker is detected by a
per-task deadline and its chunk *hedged* to the calling thread instead of
waiting.  Chunks that exhaust every retry are re-dispatched on the parent
thread one partition at a time; a partition that still cannot be computed is
**surrendered** — returned as a ``None`` hole for the pipeline's
anytime/coverage machinery to scale around, never silently wrong.  A
:class:`~repro.faults.breaker.CircuitBreaker` sits in front of admission:
repeated faulted queries trip the backend to threads entirely, with a
half-open probe after a cooldown.  Only spawn-time platform failures retire
the pool permanently.

Segment lifecycle is *epoch*-fenced: each runtime generation takes an epoch
(:meth:`ProcessPartitionPool.new_epoch`), registers its table exports under
it, and releases the whole epoch when the facade invalidates the runtime
(append / ``load_table`` / sample rebuild).  Workers only ever close their
attach-side mappings; the parent owns every unlink, so no segment outlives
the generation that exported it — even when workers died uncleanly,
``close()`` unlinks first and only then tears the pool down.

Beyond queries, :meth:`ProcessPartitionPool.map_calls` runs arbitrary
module-level functions on the same workers — sample builds fan per-stratum
permutation work out through it, and ingest maintenance fans its per-family
batch preparation — so writes scale on the same pool as reads.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from collections import OrderedDict
from concurrent.futures import Executor, Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.common.clock import monotonic
from repro.common.rng import index_uniforms
from repro.engine.accumulators import PartialAggregation
from repro.engine.executor import QueryExecutor
from repro.engine.kernels import ScanCounters, ScanSink
from repro.faults.breaker import CircuitBreaker
from repro.faults.injector import FaultInjector
from repro.faults.injector import active as _fault_active
from repro.faults.plan import FaultInjectedError
from repro.obs.trace import NULL_SPAN, AnySpan
from repro.planner.logical import LogicalPlan
from repro.storage import shm
from repro.storage.block import Block, TablePartition

#: How many attached segments each worker keeps mapped (LRU).  A segment is
#: attached once per worker and reused across every query of its generation;
#: the cache only matters when many tables/resolutions rotate through.
_DEFAULT_SEGMENT_CACHE = 8

#: Ceiling of the retry backoff between re-dispatch rounds.
_MAX_BACKOFF_SECONDS = 1.0


# -- worker side --------------------------------------------------------------------
#
# Workers are spawned (never forked: fork would snapshot the parent's locks,
# kernel caches, and numpy state) with `_worker_init` as the initializer.
# All worker state lives in this module-global dict, keyed per process.

_WORKER: dict[str, Any] = {}


def _worker_init(executor_options: dict[str, Any], cache_segments: int) -> None:
    """Per-process initializer: a private executor + an attach cache."""
    _WORKER["executor"] = QueryExecutor(**executor_options)
    _WORKER["segments"] = OrderedDict()
    _WORKER["cache_segments"] = max(1, int(cache_segments))


def _attached(handle: shm.SharedTableHandle) -> shm.AttachedTable:
    """Attach ``handle``'s segment (cached per worker, LRU-evicted)."""
    segments: OrderedDict[str, shm.AttachedTable] = _WORKER["segments"]
    cached = segments.get(handle.segment)
    if cached is not None:
        segments.move_to_end(handle.segment)
        return cached
    attached = shm.attach_table(handle)
    segments[handle.segment] = attached
    while len(segments) > _WORKER["cache_segments"]:
        _, evicted = segments.popitem(last=False)
        evicted.close()
    return attached


def _warm() -> int:
    """No-op task used to force worker spawn + import cost up front."""
    return os.getpid()


def _run_partition_chunk(
    handle: shm.SharedTableHandle,
    plan_blob: bytes,
    ranges: Sequence[tuple[int, int, int, int, int]],
    fault: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Partial-aggregate a chunk of row-range partitions of one shared table.

    ``ranges`` holds ``(position, block_index, row_start, row_end,
    size_bytes)`` tuples — ``position`` is the caller's slot for the partial,
    the rest rebuild the zero-copy :class:`TablePartition` over the attached
    table exactly as the parent's ``table.partitions()`` would.

    ``fault`` is a directive evaluated by the *parent's* fault injector at
    submit time (workers carry no injector): ``crash`` hard-exits the
    process, ``hang`` sleeps past the parent's task deadline, and
    ``attach_fail`` raises a picklable :class:`FaultInjectedError`.

    Returns a small dict: serialized partials, span records relative to the
    task's own clock (the parent re-anchors them into the query trace), the
    worker's scan-counter snapshot, and its pid.
    """
    if fault is not None:
        kind = fault.get("kind")
        if kind == "crash":
            os._exit(1)
        elif kind == "hang":
            time.sleep(float(fault.get("seconds", 1.0)))
        elif kind == "attach_fail":
            raise FaultInjectedError(
                f"injected fault at shm.attach_fail (worker attach of {handle.segment!r})"
            )
    t0 = time.monotonic()
    executor: QueryExecutor = _WORKER["executor"]
    attached = _attached(handle)
    plan = pickle.loads(plan_blob)
    sink = ScanSink()
    partials: list[tuple[int, bytes]] = []
    spans: list[tuple[str, float, float, dict[str, Any]]] = []
    for position, block_index, row_start, row_end, size_bytes in ranges:
        started = time.monotonic() - t0
        block = Block(handle.name, block_index, row_start, row_end, size_bytes)
        weights = (
            attached.weights[row_start:row_end]
            if attached.weights is not None
            else None
        )
        partition = TablePartition(source=attached.table, block=block, weights=weights)
        partial = executor.partial_aggregate_partition(plan, partition, sink=sink)
        spans.append(
            (
                "partition",
                started,
                time.monotonic() - t0,
                {"rows": row_end - row_start, "backend": "process"},
            )
        )
        partials.append((position, partial.to_bytes()))
    return {
        "partials": partials,
        "spans": spans,
        "elapsed": time.monotonic() - t0,
        "scan": sink.as_dict(),
        "pid": os.getpid(),
    }


def stratum_permutations_task(
    handle: shm.SharedTableHandle, columns: tuple[str, ...]
) -> tuple:
    """Worker task: per-stratum permutations of one shared table.

    :func:`~repro.sampling.stratified.stratum_permutations` is deterministic
    in (table name, column set) — ``stable_rng``-seeded — so the result is
    bit-identical to the parent computing it; only the O(rows) group-and-sort
    work moves off the parent.  Imported lazily: the sampling layer is not a
    dependency of the pool itself.
    """
    from repro.sampling.stratified import stratum_permutations

    attached = _attached(handle)
    return stratum_permutations(attached.table, tuple(columns))


# -- parent side --------------------------------------------------------------------


class ProcessPartitionPool:
    """A persistent spawn-based worker pool over shared-memory table exports.

    Owned by the facade (one pool for the process, surviving runtime
    rebuilds); runtimes rent *epochs* from it and register their table
    exports under the epoch, so releasing the epoch unlinks exactly the
    segments of that generation.  All entry points degrade by returning
    ``None``/``False`` instead of raising — the caller always has a
    same-semantics thread or inline path to fall back to.  Worker faults
    heal in place (respawn + retry + hedge); only spawn-time platform
    failures retire the pool.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        scan_acceleration: bool = True,
        zone_block_rows: int | None = None,
        encoded_fold: bool = True,
        cache_segments: int = _DEFAULT_SEGMENT_CACHE,
        task_timeout_seconds: float | None = 30.0,
        retry_attempts: int = 2,
        retry_backoff_seconds: float = 0.05,
        breaker_threshold: int = 3,
        breaker_cooldown_seconds: float = 5.0,
        thread_redispatch: bool = True,
    ) -> None:
        cpu = os.cpu_count() or 1
        self.max_workers = max(1, int(max_workers) if max_workers else cpu)
        self._executor_options = {
            "scan_acceleration": scan_acceleration,
            "zone_block_rows": zone_block_rows,
            "encoded_fold": encoded_fold,
        }
        self._cache_segments = cache_segments
        self.task_timeout_seconds = task_timeout_seconds
        self.retry_attempts = max(0, int(retry_attempts))
        self.retry_backoff_seconds = max(0.0, retry_backoff_seconds)
        self.thread_redispatch = thread_redispatch
        self.breaker = CircuitBreaker(
            failure_threshold=breaker_threshold,
            cooldown_seconds=breaker_cooldown_seconds,
        )
        self._lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = None
        self._closed = False
        self._failure: str | None = None
        self._epoch_counter = 0
        self._exports: dict[tuple[int, str], shm.TableExport] = {}
        # Lifetime counters (exposed as db.metrics()["procpool"] gauges).
        self._queries = 0
        self._tasks = 0
        self._partials_shipped = 0
        self._bytes_shipped_total = 0
        self._bytes_shipped_last = 0
        self._segments_exported = 0
        self._bytes_exported = 0
        # Healing counters (PR 9).
        self._retries = 0
        self._respawns = 0
        self._hedges = 0
        self._surrendered = 0
        self._thread_redispatches = 0
        self._fallbacks: dict[str, int] = {}
        self._last_fallback_reason: str | None = None

    # -- availability --------------------------------------------------------------
    @property
    def available(self) -> bool:
        """Whether the process backend can run here (or has permanently failed)."""
        return (
            not self._closed
            and self._failure is None
            and shm.shared_memory_available()
        )

    @property
    def fallback_reason(self) -> str | None:
        """Why the backend is unavailable, or ``None`` when it is usable."""
        if self._closed:
            return "pool closed"
        if self._failure is not None:
            return self._failure
        if not shm.shared_memory_available():
            return "shared memory unavailable"
        return None

    @property
    def last_fallback_reason(self) -> str | None:
        """The most recent reason a query declined/left the process path."""
        with self._lock:
            return self._last_fallback_reason

    def record_fallback(self, reason: str) -> None:
        """Count one thread-fallback event under a short reason slug."""
        slug = reason.strip().lower().replace(" ", "_")[:64] or "unknown"
        with self._lock:
            self._fallbacks[slug] = self._fallbacks.get(slug, 0) + 1
            self._last_fallback_reason = reason

    def admit(self) -> bool:
        """Gate a query into the process path (consults the circuit breaker).

        Mutating — an ``open`` breaker past its cooldown admits exactly one
        probe query here.  Callers that are refused must take the thread
        path for this query.
        """
        if not self.available:
            return False
        if not self.breaker.allow():
            self.record_fallback("breaker_open")
            return False
        return True

    def _mark_failed(self, exc: BaseException) -> None:
        """Record a *permanent* platform failure and retire the pool.

        Reserved for spawn-time problems (no fork support, resource limits).
        Worker deaths and task faults go through :meth:`_recycle_pool`
        instead — those heal.
        """
        with self._lock:
            if self._failure is None:
                self._failure = f"{type(exc).__name__}: {exc}"
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        with self._lock:
            if self._closed or self._failure is not None:
                return None
            if self._pool is None:
                try:
                    self._pool = ProcessPoolExecutor(
                        max_workers=self.max_workers,
                        mp_context=get_context("spawn"),
                        initializer=_worker_init,
                        initargs=(dict(self._executor_options), self._cache_segments),
                    )
                except Exception as exc:  # pragma: no cover - platform-specific
                    self._failure = f"{type(exc).__name__}: {exc}"
                    return None
            return self._pool

    def _recycle_pool(self) -> None:
        """Tear down a broken/hung pool so the next round respawns fresh.

        Unlike :meth:`_mark_failed` this keeps the backend available:
        ``_ensure_pool`` spawns a new executor on the next use.  Lingering
        worker processes (a hung worker sleeps through ``shutdown``) are
        terminated so they can't pin attach-side segment mappings.
        """
        with self._lock:
            pool, self._pool = self._pool, None
            if pool is not None:
                self._respawns += 1
        if pool is None:
            return
        procs = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in procs:
            try:
                if proc.is_alive():
                    proc.terminate()
            except Exception:  # pragma: no cover - raced process exit
                pass

    def worker_pids(self) -> list[int]:
        """Pids of the currently spawned workers (for chaos tests)."""
        with self._lock:
            pool = self._pool
        if pool is None:
            return []
        return [
            proc.pid
            for proc in getattr(pool, "_processes", {}).values()
            if proc.pid is not None
        ]

    def warm(self, timeout: float | None = 60.0) -> bool:
        """Spawn all workers now (spawn + import cost off the first query)."""
        if not self.available:
            return False
        pool = self._ensure_pool()
        if pool is None:
            return False
        try:
            futures = [pool.submit(_warm) for _ in range(self.max_workers)]
            for future in futures:
                future.result(timeout=timeout)
        except Exception as exc:
            self._mark_failed(exc)
            return False
        return True

    # -- epoch-fenced exports ------------------------------------------------------
    def new_epoch(self) -> int:
        """A fresh export epoch (one per runtime generation)."""
        with self._lock:
            self._epoch_counter += 1
            return self._epoch_counter

    def ensure_export(
        self, epoch: int, key: str, table, weights=None
    ) -> shm.SharedTableHandle | None:
        """Export ``table`` under ``(epoch, key)`` once; return its handle.

        Idempotent per key: repeated calls for the same resolution reuse the
        first export.  Returns ``None`` when exporting is impossible (shm
        unavailable / pool closed) or fails — the query then falls back.  An
        export failure (e.g. memory pressure on ``/dev/shm``) counts against
        the breaker but does not retire the pool: the segment may well fit
        next time.
        """
        if not self.available:
            return None
        with self._lock:
            existing = self._exports.get((epoch, key))
            if existing is not None and not existing.closed:
                return existing.handle
        try:
            export = shm.export_table(table, weights)
        except Exception as exc:
            self.record_fallback(f"export_failed: {type(exc).__name__}")
            self.breaker.record_failure()
            return None
        with self._lock:
            if self._closed:
                export.close()
                return None
            raced = self._exports.get((epoch, key))
            if raced is not None and not raced.closed:
                export.close()
                return raced.handle
            self._exports[(epoch, key)] = export
            self._segments_exported += 1
            self._bytes_exported += export.nbytes
        return export.handle

    def release_epoch(self, epoch: int) -> None:
        """Close + unlink every segment exported under ``epoch`` (idempotent)."""
        with self._lock:
            keys = [k for k in self._exports if k[0] == epoch]
            exports = [self._exports.pop(k) for k in keys]
        for export in exports:
            export.close()

    def release_export(self, epoch: int, key: str) -> None:
        """Close + unlink one export (transient uses: sample builds)."""
        with self._lock:
            export = self._exports.pop((epoch, key), None)
        if export is not None:
            export.close()

    # -- execution -----------------------------------------------------------------
    def _chunk_fault_directive(
        self, injector: FaultInjector | None
    ) -> dict[str, Any] | None:
        """Evaluate worker-directed fault points for one chunk submission.

        Workers have no injector installed (they are spawned fresh), so the
        parent draws the verdict here — one arrival per point per chunk, in
        a fixed order, keeping the fault schedule deterministic — and ships
        the directive with the task.
        """
        if injector is None:
            return None
        decision = injector.check("procpool.worker_crash")
        if decision is not None:
            return {"kind": "crash"}
        decision = injector.check("procpool.worker_hang")
        if decision is not None:
            return {"kind": "hang", "seconds": decision.latency_seconds or 1.0}
        decision = injector.check("shm.attach_fail")
        if decision is not None:
            return {"kind": "attach_fail"}
        return None

    def _retry_delay(self, round_number: int, salt: int) -> float:
        """Capped exponential backoff with deterministic jitter in [0.5, 1.5)."""
        base = min(
            self.retry_backoff_seconds * (2.0 ** (round_number - 1)),
            _MAX_BACKOFF_SECONDS,
        )
        jitter = index_uniforms(
            np.array([round_number], dtype=np.int64), "procpool", "backoff", salt
        )[0]
        return base * (0.5 + float(jitter))

    def map_partitions(
        self,
        plan: LogicalPlan,
        handle: shm.SharedTableHandle,
        partitions: Sequence[TablePartition],
        *,
        sink: ScanSink | None = None,
        executor: QueryExecutor | None = None,
        trace_span: AnySpan = NULL_SPAN,
        timeout: float | None = None,
        health: dict[str, Any] | None = None,
    ) -> list[PartialAggregation | None] | None:
        """Partial-aggregate ``partitions`` of the exported table in workers.

        Partitions are split into at most ``max_workers`` contiguous chunks
        (one task each: partitions are equal row ranges, so chunks are
        balanced); the plan is pickled once per query.  Results come back as
        serialized partial states, reassembled into input order.  Worker
        span records are re-anchored onto this process's monotonic clock
        (``gather_end - worker_elapsed``) and attached under ``trace_span``;
        worker scan counters merge into ``sink`` and ``executor``'s lifetime
        totals exactly as the thread path would have recorded them.

        Faults heal in place: a broken round cancels its still-pending
        futures immediately, recycles the pool, and re-dispatches the failed
        chunks (bounded rounds, capped backoff + jitter); a chunk whose task
        deadline expires is hedged to the calling thread.  Chunks that
        exhaust process-side retries are recomputed on the parent thread via
        ``executor``; positions that still can't be computed come back as
        ``None`` holes for the caller's coverage machinery.  ``timeout``
        bounds the *whole* call in wall seconds (the service's admission
        deadline lands here); ``health``, if given, is filled with this
        call's retry/hedge/surrender accounting.

        Returns ``None`` only when *nothing* could be computed — the caller
        then falls back to threads wholesale.
        """
        report: dict[str, Any] = health if health is not None else {}
        if not self.available:
            return None
        if not partitions:
            return []
        plan_blob = pickle.dumps(plan)
        total = len(partitions)
        num_chunks = min(total, self.max_workers)
        base, extra = divmod(total, num_chunks)
        chunks: list[list[tuple[int, int, int, int, int]]] = []
        position = 0
        for i in range(num_chunks):
            size = base + (1 if i < extra else 0)
            chunk = []
            for pos in range(position, position + size):
                block = partitions[pos].block
                chunk.append(
                    (pos, block.index, block.row_start, block.row_end, block.size_bytes)
                )
            chunks.append(chunk)
            position += size

        deadline = monotonic() + timeout if timeout is not None else None
        injector = _fault_active()
        pending = list(range(len(chunks)))
        hedged: list[int] = []
        results: list[dict[str, Any]] = []
        fault_note: str | None = None
        retries_used = 0
        hedges = 0
        tasks_submitted = 0
        with self._lock:
            respawns_before = self._respawns
        round_number = 0

        while pending and round_number <= self.retry_attempts:
            if deadline is not None and monotonic() >= deadline:
                break
            round_number += 1
            pool = self._ensure_pool()
            if pool is None:
                fault_note = fault_note or self._failure or "pool unavailable"
                break

            submitted: list[tuple[int, Future]] = []
            for chunk_index in pending:
                directive = self._chunk_fault_directive(injector)
                try:
                    future = pool.submit(
                        _run_partition_chunk,
                        handle,
                        plan_blob,
                        chunks[chunk_index],
                        directive,
                    )
                except Exception as exc:
                    # Pool broke between rounds; unsubmitted chunks stay
                    # pending for the next round.
                    fault_note = fault_note or f"{type(exc).__name__}: {exc}"
                    break
                submitted.append((chunk_index, future))
            tasks_submitted += len(submitted)
            submitted_ids = {chunk_index for chunk_index, _ in submitted}
            next_pending = [ci for ci in pending if ci not in submitted_ids]

            broken = False
            hung = False
            for slot, (chunk_index, future) in enumerate(submitted):
                wait: float | None = self.task_timeout_seconds
                if deadline is not None:
                    remaining = deadline - monotonic()
                    wait = remaining if wait is None else min(wait, remaining)
                try:
                    if wait is not None and wait <= 0.0:
                        raise FuturesTimeoutError()
                    results.append(future.result(timeout=wait))
                except FuturesTimeoutError:
                    # Hung (or deadline-starved) task: don't wait, hedge the
                    # chunk to the thread path and recycle the pool after
                    # this round.
                    future.cancel()
                    hung = True
                    hedges += 1
                    fault_note = fault_note or "worker hang: task deadline exceeded"
                    hedged.append(chunk_index)
                except BrokenProcessPool as exc:
                    # First failure: cancel everything still pending instead
                    # of awaiting the whole batch (satellite fix), salvage
                    # any already-completed siblings, re-pend the rest.
                    fault_note = fault_note or f"{type(exc).__name__}: {exc}"
                    broken = True
                    next_pending.append(chunk_index)
                    for other_index, other in submitted[slot + 1 :]:
                        other.cancel()
                        salvaged = False
                        if other.done() and not other.cancelled():
                            try:
                                results.append(other.result(timeout=0))
                                salvaged = True
                            except Exception:
                                salvaged = False
                        if not salvaged:
                            next_pending.append(other_index)
                    break
                except Exception as exc:
                    # Worker-raised (picklable) failure: only this chunk
                    # failed, the pool survives.
                    fault_note = fault_note or f"{type(exc).__name__}: {exc}"
                    next_pending.append(chunk_index)

            pending = next_pending
            if broken or hung:
                self._recycle_pool()
            if pending and round_number <= self.retry_attempts:
                retries_used += len(pending)
                delay = self._retry_delay(round_number, salt=len(pending))
                if deadline is not None:
                    delay = min(delay, max(0.0, deadline - monotonic()))
                if delay > 0.0:
                    time.sleep(delay)

        # Process-side rounds are over; whatever is left goes to the calling
        # thread (hedged hung chunks first, then retry-exhausted ones).
        leftover_positions = [
            entry[0] for ci in hedged + pending for entry in chunks[ci]
        ]
        redispatched: list[tuple[int, PartialAggregation]] = []
        surrendered_positions: list[int] = []
        if leftover_positions:
            if self.thread_redispatch and executor is not None:
                for pos in leftover_positions:
                    if deadline is not None and monotonic() >= deadline:
                        surrendered_positions.append(pos)
                        continue
                    started = monotonic()
                    try:
                        partial = executor.partial_aggregate_partition(
                            plan, partitions[pos], sink=sink
                        )
                    except Exception as exc:
                        fault_note = fault_note or f"{type(exc).__name__}: {exc}"
                        surrendered_positions.append(pos)
                        continue
                    block = partitions[pos].block
                    trace_span.record_span(
                        "partition",
                        started,
                        monotonic(),
                        rows=block.row_end - block.row_start,
                        backend="thread-redispatch",
                    )
                    redispatched.append((pos, partial))
            else:
                surrendered_positions = list(leftover_positions)

        gather_end = monotonic()
        partials: list[PartialAggregation | None] = [None] * total
        shipped = 0
        for result in results:
            for pos, blob in result["partials"]:
                shipped += len(blob)
                partials[pos] = PartialAggregation.from_bytes(blob)
            # Worker clocks are not our clock: anchor each task's relative
            # span records so the task *ends* at its gather time here.
            anchor = gather_end - result["elapsed"]
            for name, rel_start, rel_end, attrs in result["spans"]:
                trace_span.record_span(
                    name, anchor + rel_start, anchor + rel_end,
                    pid=result["pid"], **attrs,
                )
            scan = dict(result["scan"])
            rows_in = scan.pop("rows_in", 0)
            rows_matched = scan.pop("rows_matched", 0)
            counters = ScanCounters(**scan)
            if executor is not None:
                executor.absorb_scan(counters)
            if sink is not None:
                sink.record_scan(counters)
                if rows_in:
                    sink.record_filter(rows_in, rows_matched)
        for pos, partial in redispatched:
            partials[pos] = partial
        surrendered = sum(1 for p in partials if p is None)

        with self._lock:
            self._queries += 1
            self._tasks += tasks_submitted
            self._partials_shipped += total - surrendered
            self._bytes_shipped_total += shipped
            self._bytes_shipped_last = shipped
            self._retries += retries_used
            self._hedges += hedges
            self._surrendered += surrendered
            self._thread_redispatches += len(redispatched)
            respawns_delta = self._respawns - respawns_before

        report.update(
            {
                "retries": retries_used,
                "hedges": hedges,
                "respawns": respawns_delta,
                "thread_redispatches": len(redispatched),
                "surrendered": surrendered,
            }
        )
        if fault_note is not None:
            report["fault"] = fault_note
            self.breaker.record_failure()
        else:
            self.breaker.record_success()
        if surrendered == total:
            # Nothing computed at all — wholesale fallback is strictly
            # better than an all-holes answer.
            self.record_fallback(fault_note or "no partitions computed")
            return None
        return partials

    def map_calls(
        self,
        fn: Callable[..., Any],
        argses: Iterable[tuple],
        *,
        timeout: float | None = None,
    ) -> list[Any] | None:
        """Run ``fn(*args)`` per tuple on the pool; ``None`` → run inline.

        ``fn`` must be a module-level function (pickled by reference); its
        arguments typically include a :class:`SharedTableHandle` so the
        worker reads its O(rows) input from shared memory.  Used by sample
        builds and ingest maintenance.  A broken pool is recycled, not
        retired — the caller recomputes inline this time, the next call
        respawns.
        """
        calls = list(argses)
        if not calls:
            return []
        if not self.available:
            return None
        pool = self._ensure_pool()
        if pool is None:
            return None
        futures: list[Future] = []
        try:
            futures = [pool.submit(fn, *args) for args in calls]
            out = [future.result(timeout=timeout) for future in futures]
        except Exception as exc:
            for future in futures:
                future.cancel()
            if isinstance(exc, (BrokenProcessPool, FuturesTimeoutError)):
                self._recycle_pool()
            self.record_fallback(f"map_calls: {type(exc).__name__}")
            return None
        with self._lock:
            self._tasks += len(calls)
        return out

    # -- observability / lifecycle -------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Pool/IPC gauges (``db.metrics()["procpool"]``); all numeric."""
        breaker_stats = self.breaker.stats()
        with self._lock:
            out = {
                "workers": self.max_workers,
                "started": int(self._pool is not None),
                "available": int(
                    not self._closed
                    and self._failure is None
                    and shm.shared_memory_available()
                ),
                "queries": self._queries,
                "tasks": self._tasks,
                "partials_shipped": self._partials_shipped,
                "bytes_shipped_total": self._bytes_shipped_total,
                "bytes_shipped_last_query": self._bytes_shipped_last,
                "segments_exported": self._segments_exported,
                "segments_active": sum(
                    1 for e in self._exports.values() if not e.closed
                ),
                "bytes_exported": self._bytes_exported,
                "retries": self._retries,
                "respawns": self._respawns,
                "hedges": self._hedges,
                "surrendered": self._surrendered,
                "thread_redispatches": self._thread_redispatches,
            }
            for slug, count in self._fallbacks.items():
                out[f"fallbacks.{slug}"] = count
        out.update(breaker_stats)
        return out

    def close(self) -> None:
        """Unlink every live segment, then shut the workers down (idempotent).

        Unlink-first matters: a SIGKILLed worker can leave the executor's
        management thread wedged, and a ``wait=True`` shutdown before the
        unlink loop would leak every ``/dev/shm`` segment if teardown never
        returned.  POSIX unlink leaves existing worker mappings valid, so
        the order is safe; surviving workers are then terminated rather than
        waited on, and the executor's manager thread gets a *bounded* join —
        it holds the executor's queue semaphores, so reaping it here frees
        their ``/dev/shm`` entries now instead of at interpreter exit, while
        the timeout keeps a wedged manager from hanging ``close()``.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
            exports = list(self._exports.values())
            self._exports.clear()
        for export in exports:
            export.close()
        if pool is not None:
            procs = list(getattr(pool, "_processes", {}).values())
            manager = getattr(pool, "_executor_manager_thread", None)
            pool.shutdown(wait=False, cancel_futures=True)
            for proc in procs:
                try:
                    if proc.is_alive():
                        proc.terminate()
                except Exception:  # pragma: no cover - raced process exit
                    pass
            if manager is not None:
                manager.join(timeout=5.0)

    def __del__(self) -> None:  # pragma: no cover - GC backstop
        try:
            self.close()
        except Exception:
            pass


class ProcessBackend:
    """One query-path binding of (pool, exported table) for the pipeline seam.

    The pipeline duck-types on :meth:`map_partitions`; a ``None`` return
    means "use my ``fallback``" (the runtime's thread pool, or inline).
    Plans with dimension joins always decline — workers hold no dimension
    tables, and broadcast-joining them per query would break the zero-copy
    contract.  Every decline records *why* (``last_fallback_reason``, pool
    fallback counters), and the per-call healing accounting lands in
    ``last_health`` for the pipeline to surface in ``metadata``.
    """

    name = "processes"

    def __init__(
        self,
        pool: ProcessPartitionPool,
        handle: shm.SharedTableHandle,
        *,
        executor: QueryExecutor | None = None,
        fallback: Executor | None = None,
    ) -> None:
        self.pool = pool
        self.handle = handle
        self.executor = executor
        self.fallback = fallback
        #: Wall-clock deadline (``monotonic()`` scale) set by the service /
        #: runtime from the query's admission deadline; converted into
        #: ``map_partitions(timeout=...)`` so a hung worker can't hold a
        #: WITHIN-bounded query past its bound.
        self.deadline: float | None = None
        self.last_fallback_reason: str | None = None
        self.last_health: dict[str, Any] = {}

    def map_partitions(
        self,
        plan: LogicalPlan,
        partitions: Sequence[TablePartition],
        *,
        sink: ScanSink | None = None,
        trace_span: AnySpan = NULL_SPAN,
    ) -> list[PartialAggregation | None] | None:
        self.last_health = {}
        if plan.joins:
            self.last_fallback_reason = "joins"
            self.pool.record_fallback("joins")
            return None
        if partitions and partitions[0].source.num_rows != self.handle.num_rows:
            # Stale handle: table changed under us — fall back.
            self.last_fallback_reason = "stale_handle"
            self.pool.record_fallback("stale_handle")
            return None
        timeout = None
        if self.deadline is not None:
            timeout = max(0.0, self.deadline - monotonic())
        health: dict[str, Any] = {}
        shipped = self.pool.map_partitions(
            plan,
            self.handle,
            partitions,
            sink=sink,
            executor=self.executor,
            trace_span=trace_span,
            timeout=timeout,
            health=health,
        )
        self.last_health = health
        if shipped is None:
            self.last_fallback_reason = (
                health.get("fault") or self.pool.fallback_reason or "pool declined"
            )
        else:
            self.last_fallback_reason = None
        return shipped
