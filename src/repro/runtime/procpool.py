"""Process-parallel partition execution over shared-memory blocks.

The partition pipeline's thread pool keeps the *schedule* honest but not the
wall clock: CPython threads share one GIL, so fanning CPU-bound partial
aggregation over threads buys nothing.  This module is the escape hatch —
a persistent spawn-based :class:`ProcessPartitionPool` whose workers

* **attach** exported tables by shared-memory handle
  (:mod:`repro.storage.shm`): the O(rows) column data never crosses the
  process boundary, only the small picklable handle does;
* **execute** the filter + partial-aggregation stage with their own
  :class:`~repro.engine.executor.QueryExecutor` (zone maps and kernels
  included — the exporter ships its zone-map metadata in the handle);
* **ship back** only the compact serialized
  :class:`~repro.engine.accumulators.PartialAggregation` states —
  O(groups × aggregates) bytes per partition, never O(rows).

The pool is deliberately dumb about *what* it runs: the pipeline seam in
:mod:`repro.runtime.partitioned` duck-types on
:meth:`ProcessBackend.map_partitions`, and every failure path (no
``/dev/shm``, spawn refused, a worker dying mid-query) returns ``None`` so
the caller falls back to the thread/inline path — the process backend can
degrade, never break, a query.

Segment lifecycle is *epoch*-fenced: each runtime generation takes an epoch
(:meth:`ProcessPartitionPool.new_epoch`), registers its table exports under
it, and releases the whole epoch when the facade invalidates the runtime
(append / ``load_table`` / sample rebuild).  Workers only ever close their
attach-side mappings; the parent owns every unlink, so no segment outlives
the generation that exported it.

Beyond queries, :meth:`ProcessPartitionPool.map_calls` runs arbitrary
module-level functions on the same workers — sample builds fan per-stratum
permutation work out through it, and ingest maintenance fans its per-family
batch preparation — so writes scale on the same pool as reads.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from collections import OrderedDict
from concurrent.futures import Executor, ProcessPoolExecutor
from multiprocessing import get_context
from typing import Any, Callable, Iterable, Sequence

from repro.common.clock import monotonic
from repro.engine.accumulators import PartialAggregation
from repro.engine.executor import QueryExecutor
from repro.engine.kernels import ScanCounters, ScanSink
from repro.obs.trace import NULL_SPAN, AnySpan
from repro.planner.logical import LogicalPlan
from repro.storage import shm
from repro.storage.block import Block, TablePartition

#: How many attached segments each worker keeps mapped (LRU).  A segment is
#: attached once per worker and reused across every query of its generation;
#: the cache only matters when many tables/resolutions rotate through.
_DEFAULT_SEGMENT_CACHE = 8


# -- worker side --------------------------------------------------------------------
#
# Workers are spawned (never forked: fork would snapshot the parent's locks,
# kernel caches, and numpy state) with `_worker_init` as the initializer.
# All worker state lives in this module-global dict, keyed per process.

_WORKER: dict[str, Any] = {}


def _worker_init(executor_options: dict[str, Any], cache_segments: int) -> None:
    """Per-process initializer: a private executor + an attach cache."""
    _WORKER["executor"] = QueryExecutor(**executor_options)
    _WORKER["segments"] = OrderedDict()
    _WORKER["cache_segments"] = max(1, int(cache_segments))


def _attached(handle: shm.SharedTableHandle) -> shm.AttachedTable:
    """Attach ``handle``'s segment (cached per worker, LRU-evicted)."""
    segments: OrderedDict[str, shm.AttachedTable] = _WORKER["segments"]
    cached = segments.get(handle.segment)
    if cached is not None:
        segments.move_to_end(handle.segment)
        return cached
    attached = shm.attach_table(handle)
    segments[handle.segment] = attached
    while len(segments) > _WORKER["cache_segments"]:
        _, evicted = segments.popitem(last=False)
        evicted.close()
    return attached


def _warm() -> int:
    """No-op task used to force worker spawn + import cost up front."""
    return os.getpid()


def _run_partition_chunk(
    handle: shm.SharedTableHandle,
    plan_blob: bytes,
    ranges: Sequence[tuple[int, int, int, int, int]],
) -> dict[str, Any]:
    """Partial-aggregate a chunk of row-range partitions of one shared table.

    ``ranges`` holds ``(position, block_index, row_start, row_end,
    size_bytes)`` tuples — ``position`` is the caller's slot for the partial,
    the rest rebuild the zero-copy :class:`TablePartition` over the attached
    table exactly as the parent's ``table.partitions()`` would.

    Returns a small dict: serialized partials, span records relative to the
    task's own clock (the parent re-anchors them into the query trace), the
    worker's scan-counter snapshot, and its pid.
    """
    t0 = time.monotonic()
    executor: QueryExecutor = _WORKER["executor"]
    attached = _attached(handle)
    plan = pickle.loads(plan_blob)
    sink = ScanSink()
    partials: list[tuple[int, bytes]] = []
    spans: list[tuple[str, float, float, dict[str, Any]]] = []
    for position, block_index, row_start, row_end, size_bytes in ranges:
        started = time.monotonic() - t0
        block = Block(handle.name, block_index, row_start, row_end, size_bytes)
        weights = (
            attached.weights[row_start:row_end]
            if attached.weights is not None
            else None
        )
        partition = TablePartition(source=attached.table, block=block, weights=weights)
        partial = executor.partial_aggregate_partition(plan, partition, sink=sink)
        spans.append(
            (
                "partition",
                started,
                time.monotonic() - t0,
                {"rows": row_end - row_start, "backend": "process"},
            )
        )
        partials.append((position, partial.to_bytes()))
    return {
        "partials": partials,
        "spans": spans,
        "elapsed": time.monotonic() - t0,
        "scan": sink.as_dict(),
        "pid": os.getpid(),
    }


def stratum_permutations_task(
    handle: shm.SharedTableHandle, columns: tuple[str, ...]
) -> tuple:
    """Worker task: per-stratum permutations of one shared table.

    :func:`~repro.sampling.stratified.stratum_permutations` is deterministic
    in (table name, column set) — ``stable_rng``-seeded — so the result is
    bit-identical to the parent computing it; only the O(rows) group-and-sort
    work moves off the parent.  Imported lazily: the sampling layer is not a
    dependency of the pool itself.
    """
    from repro.sampling.stratified import stratum_permutations

    attached = _attached(handle)
    return stratum_permutations(attached.table, tuple(columns))


# -- parent side --------------------------------------------------------------------


class ProcessPartitionPool:
    """A persistent spawn-based worker pool over shared-memory table exports.

    Owned by the facade (one pool for the process, surviving runtime
    rebuilds); runtimes rent *epochs* from it and register their table
    exports under the epoch, so releasing the epoch unlinks exactly the
    segments of that generation.  All entry points degrade by returning
    ``None``/``False`` instead of raising — the caller always has a
    same-semantics thread or inline path to fall back to.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        scan_acceleration: bool = True,
        zone_block_rows: int | None = None,
        encoded_fold: bool = True,
        cache_segments: int = _DEFAULT_SEGMENT_CACHE,
    ) -> None:
        cpu = os.cpu_count() or 1
        self.max_workers = max(1, int(max_workers) if max_workers else cpu)
        self._executor_options = {
            "scan_acceleration": scan_acceleration,
            "zone_block_rows": zone_block_rows,
            "encoded_fold": encoded_fold,
        }
        self._cache_segments = cache_segments
        self._lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = None
        self._closed = False
        self._failure: str | None = None
        self._epoch_counter = 0
        self._exports: dict[tuple[int, str], shm.TableExport] = {}
        # Lifetime counters (exposed as db.metrics()["procpool"] gauges).
        self._queries = 0
        self._tasks = 0
        self._partials_shipped = 0
        self._bytes_shipped_total = 0
        self._bytes_shipped_last = 0
        self._segments_exported = 0
        self._bytes_exported = 0

    # -- availability --------------------------------------------------------------
    @property
    def available(self) -> bool:
        """Whether the process backend can run here (or has permanently failed)."""
        return (
            not self._closed
            and self._failure is None
            and shm.shared_memory_available()
        )

    @property
    def fallback_reason(self) -> str | None:
        """Why the backend is unavailable, or ``None`` when it is usable."""
        if self._closed:
            return "pool closed"
        if self._failure is not None:
            return self._failure
        if not shm.shared_memory_available():
            return "shared memory unavailable"
        return None

    def _mark_failed(self, exc: BaseException) -> None:
        """Record a permanent failure and retire the pool (threads take over)."""
        with self._lock:
            if self._failure is None:
                self._failure = f"{type(exc).__name__}: {exc}"
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        with self._lock:
            if self._closed or self._failure is not None:
                return None
            if self._pool is None:
                try:
                    self._pool = ProcessPoolExecutor(
                        max_workers=self.max_workers,
                        mp_context=get_context("spawn"),
                        initializer=_worker_init,
                        initargs=(dict(self._executor_options), self._cache_segments),
                    )
                except Exception as exc:  # pragma: no cover - platform-specific
                    self._failure = f"{type(exc).__name__}: {exc}"
                    return None
            return self._pool

    def warm(self, timeout: float | None = 60.0) -> bool:
        """Spawn all workers now (spawn + import cost off the first query)."""
        if not self.available:
            return False
        pool = self._ensure_pool()
        if pool is None:
            return False
        try:
            futures = [pool.submit(_warm) for _ in range(self.max_workers)]
            for future in futures:
                future.result(timeout=timeout)
        except Exception as exc:
            self._mark_failed(exc)
            return False
        return True

    # -- epoch-fenced exports ------------------------------------------------------
    def new_epoch(self) -> int:
        """A fresh export epoch (one per runtime generation)."""
        with self._lock:
            self._epoch_counter += 1
            return self._epoch_counter

    def ensure_export(
        self, epoch: int, key: str, table, weights=None
    ) -> shm.SharedTableHandle | None:
        """Export ``table`` under ``(epoch, key)`` once; return its handle.

        Idempotent per key: repeated calls for the same resolution reuse the
        first export.  Returns ``None`` when exporting is impossible (shm
        unavailable / pool closed) or fails — the query then falls back.
        """
        if not self.available:
            return None
        with self._lock:
            existing = self._exports.get((epoch, key))
            if existing is not None and not existing.closed:
                return existing.handle
        try:
            export = shm.export_table(table, weights)
        except Exception as exc:
            self._mark_failed(exc)
            return None
        with self._lock:
            if self._closed:
                export.close()
                return None
            raced = self._exports.get((epoch, key))
            if raced is not None and not raced.closed:
                export.close()
                return raced.handle
            self._exports[(epoch, key)] = export
            self._segments_exported += 1
            self._bytes_exported += export.nbytes
        return export.handle

    def release_epoch(self, epoch: int) -> None:
        """Close + unlink every segment exported under ``epoch`` (idempotent)."""
        with self._lock:
            keys = [k for k in self._exports if k[0] == epoch]
            exports = [self._exports.pop(k) for k in keys]
        for export in exports:
            export.close()

    def release_export(self, epoch: int, key: str) -> None:
        """Close + unlink one export (transient uses: sample builds)."""
        with self._lock:
            export = self._exports.pop((epoch, key), None)
        if export is not None:
            export.close()

    # -- execution -----------------------------------------------------------------
    def map_partitions(
        self,
        plan: LogicalPlan,
        handle: shm.SharedTableHandle,
        partitions: Sequence[TablePartition],
        *,
        sink: ScanSink | None = None,
        executor: QueryExecutor | None = None,
        trace_span: AnySpan = NULL_SPAN,
    ) -> list[PartialAggregation] | None:
        """Partial-aggregate ``partitions`` of the exported table in workers.

        Partitions are split into at most ``max_workers`` contiguous chunks
        (one task each: partitions are equal row ranges, so chunks are
        balanced); the plan is pickled once per query.  Results come back as
        serialized partial states, reassembled into input order.  Worker
        span records are re-anchored onto this process's monotonic clock
        (``gather_end - worker_elapsed``) and attached under ``trace_span``;
        worker scan counters merge into ``sink`` and ``executor``'s lifetime
        totals exactly as the thread path would have recorded them.

        Returns ``None`` on any failure — the caller falls back to threads.
        """
        if not self.available:
            return None
        if not partitions:
            return []
        pool = self._ensure_pool()
        if pool is None:
            return None
        plan_blob = pickle.dumps(plan)
        total = len(partitions)
        num_chunks = min(total, self.max_workers)
        base, extra = divmod(total, num_chunks)
        chunks: list[list[tuple[int, int, int, int, int]]] = []
        position = 0
        for i in range(num_chunks):
            size = base + (1 if i < extra else 0)
            chunk = []
            for pos in range(position, position + size):
                block = partitions[pos].block
                chunk.append(
                    (pos, block.index, block.row_start, block.row_end, block.size_bytes)
                )
            chunks.append(chunk)
            position += size
        try:
            futures = [
                pool.submit(_run_partition_chunk, handle, plan_blob, chunk)
                for chunk in chunks
            ]
            results = [future.result() for future in futures]
        except Exception as exc:
            self._mark_failed(exc)
            return None

        gather_end = monotonic()
        partials: list[PartialAggregation | None] = [None] * total
        shipped = 0
        for result in results:
            for pos, blob in result["partials"]:
                shipped += len(blob)
                partials[pos] = PartialAggregation.from_bytes(blob)
            # Worker clocks are not our clock: anchor each task's relative
            # span records so the task *ends* at its gather time here.
            anchor = gather_end - result["elapsed"]
            for name, rel_start, rel_end, attrs in result["spans"]:
                trace_span.record_span(
                    name, anchor + rel_start, anchor + rel_end,
                    pid=result["pid"], **attrs,
                )
            scan = dict(result["scan"])
            rows_in = scan.pop("rows_in", 0)
            rows_matched = scan.pop("rows_matched", 0)
            counters = ScanCounters(**scan)
            if executor is not None:
                executor.absorb_scan(counters)
            if sink is not None:
                sink.record_scan(counters)
                if rows_in:
                    sink.record_filter(rows_in, rows_matched)
        assert all(p is not None for p in partials)
        with self._lock:
            self._queries += 1
            self._tasks += len(chunks)
            self._partials_shipped += total
            self._bytes_shipped_total += shipped
            self._bytes_shipped_last = shipped
        return partials  # type: ignore[return-value]

    def map_calls(
        self,
        fn: Callable[..., Any],
        argses: Iterable[tuple],
        *,
        timeout: float | None = None,
    ) -> list[Any] | None:
        """Run ``fn(*args)`` per tuple on the pool; ``None`` → run inline.

        ``fn`` must be a module-level function (pickled by reference); its
        arguments typically include a :class:`SharedTableHandle` so the
        worker reads its O(rows) input from shared memory.  Used by sample
        builds and ingest maintenance.
        """
        calls = list(argses)
        if not calls:
            return []
        if not self.available:
            return None
        pool = self._ensure_pool()
        if pool is None:
            return None
        try:
            futures = [pool.submit(fn, *args) for args in calls]
            out = [future.result(timeout=timeout) for future in futures]
        except Exception as exc:
            self._mark_failed(exc)
            return None
        with self._lock:
            self._tasks += len(calls)
        return out

    # -- observability / lifecycle -------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Pool/IPC gauges (``db.metrics()["procpool"]``); all numeric."""
        with self._lock:
            return {
                "workers": self.max_workers,
                "started": int(self._pool is not None),
                "available": int(
                    not self._closed
                    and self._failure is None
                    and shm.shared_memory_available()
                ),
                "queries": self._queries,
                "tasks": self._tasks,
                "partials_shipped": self._partials_shipped,
                "bytes_shipped_total": self._bytes_shipped_total,
                "bytes_shipped_last_query": self._bytes_shipped_last,
                "segments_exported": self._segments_exported,
                "segments_active": sum(
                    1 for e in self._exports.values() if not e.closed
                ),
                "bytes_exported": self._bytes_exported,
            }

    def close(self) -> None:
        """Shut down workers and unlink every live segment (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
            exports = list(self._exports.values())
            self._exports.clear()
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        for export in exports:
            export.close()

    def __del__(self) -> None:  # pragma: no cover - GC backstop
        try:
            self.close()
        except Exception:
            pass


class ProcessBackend:
    """One query-path binding of (pool, exported table) for the pipeline seam.

    The pipeline duck-types on :meth:`map_partitions`; a ``None`` return
    means "use my ``fallback``" (the runtime's thread pool, or inline).
    Plans with dimension joins always decline — workers hold no dimension
    tables, and broadcast-joining them per query would break the zero-copy
    contract.
    """

    name = "processes"

    def __init__(
        self,
        pool: ProcessPartitionPool,
        handle: shm.SharedTableHandle,
        *,
        executor: QueryExecutor | None = None,
        fallback: Executor | None = None,
    ) -> None:
        self.pool = pool
        self.handle = handle
        self.executor = executor
        self.fallback = fallback

    def map_partitions(
        self,
        plan: LogicalPlan,
        partitions: Sequence[TablePartition],
        *,
        sink: ScanSink | None = None,
        trace_span: AnySpan = NULL_SPAN,
    ) -> list[PartialAggregation] | None:
        if plan.joins:
            return None
        if partitions and partitions[0].source.num_rows != self.handle.num_rows:
            return None  # stale handle: table changed under us — fall back
        return self.pool.map_partitions(
            plan,
            self.handle,
            partitions,
            sink=sink,
            executor=self.executor,
            trace_span=trace_span,
        )
