"""Run-time sample-family selection (paper §4.1).

Given a logical plan, the selector decides which family — the uniform family
or one of the stratified families — the query should run on:

1. If one or more stratified families exist whose column set is a superset of
   the plan's WHERE/GROUP BY column set φ, the one with the fewest columns
   is chosen (§4.1.1): its strata align with the query's filter, so answers
   converge fastest and rare groups are guaranteed present.
2. Otherwise the query is executed on the *smallest* resolution of every
   family in parallel (they are small enough to fit in cluster memory), and
   the family with the highest ratio of rows selected to rows read wins: the
   response time grows with rows read while the error shrinks with rows
   selected.

Disjunctive WHERE clauses are already hoisted into disjoint conjunctive
branches by the logical plan (§4.1.2); each branch gets its own family
selection so the runtime can aggregate the partial answers.

Probe memoization
-----------------
Probe outcomes are deterministic given the plan (sans bounds) and the
resolution, so they are memoized in a small LRU keyed by
``(plan.probe_fingerprint(), resolution.name)``.  The memo's lifetime is
the selector's — the facade discards the whole runtime (and with it this
selector) whenever samples or base data change, so a probe can never
outlive the data generation it measured.  Hit/miss counters feed
``runtime.stats`` and the service metrics.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.common.errors import SampleNotFoundError
from repro.engine.executor import ExecutionContext, Plannable, QueryExecutor
from repro.engine.result import QueryResult
from repro.planner.logical import LogicalPlan
from repro.sampling.family import StratifiedSampleFamily, UniformSampleFamily
from repro.sampling.resolution import SampleResolution

from repro.storage.catalog import Catalog

#: Probe memo capacity; probes are tiny but hold a full QueryResult each.
_PROBE_CACHE_ENTRIES = 512


@dataclass(frozen=True)
class ProbeResult:
    """Statistics gathered by running a query on one (small) resolution."""

    resolution: SampleResolution
    result: QueryResult
    rows_read: int
    rows_matched: int
    num_groups: int

    @property
    def selectivity(self) -> float:
        """Fraction of scanned rows the query's predicates selected."""
        if self.rows_read == 0:
            return 0.0
        return self.rows_matched / self.rows_read

    @property
    def worst_relative_error(self) -> float:
        """The largest (finite-preferred) relative error across groups/aggregates."""
        finite: list[float] = []
        has_infinite = False
        for group in self.result.groups:
            for aggregate in group.aggregates.values():
                error = aggregate.relative_error
                if np.isfinite(error):
                    finite.append(error)
                else:
                    has_infinite = True
        if finite:
            return max(finite)
        return float("inf") if has_infinite else 0.0

    @property
    def has_unbounded_group(self) -> bool:
        """True when some group's error could not be estimated from the probe."""
        for group in self.result.groups:
            for aggregate in group.aggregates.values():
                if not np.isfinite(aggregate.relative_error):
                    return True
        return False


@dataclass(frozen=True)
class FamilySelection:
    """The outcome of family selection for one query (or one branch)."""

    family: UniformSampleFamily | StratifiedSampleFamily
    reason: str
    probe: ProbeResult | None = None
    probes: tuple[ProbeResult, ...] = ()

    @property
    def is_stratified(self) -> bool:
        return isinstance(self.family, StratifiedSampleFamily)

    @property
    def covers_query(self) -> bool:
        """True when the family's column set covers the query's φ (exact strata)."""
        return self.reason == "superset-match"


class SampleFamilySelector:
    """Implements the family-selection policy of §4.1 (probe-memoized)."""

    def __init__(self, catalog: Catalog, executor: QueryExecutor) -> None:
        self.catalog = catalog
        self.executor = executor
        self._probe_cache: OrderedDict[tuple[str, str], ProbeResult] = OrderedDict()
        self._probe_lock = threading.Lock()
        self._probe_hits = 0
        self._probe_misses = 0

    # -- public API ---------------------------------------------------------------
    def select(self, plan: Plannable, probe_on_miss: bool = True) -> FamilySelection:
        """Select the family for a plan, probing when no superset family exists."""
        plan = LogicalPlan.of(plan)
        columns = plan.template_columns()
        return self.select_for_columns(plan, columns, probe_on_miss)

    def select_for_columns(
        self, plan: Plannable, columns: set[str], probe_on_miss: bool = True
    ) -> FamilySelection:
        plan = LogicalPlan.of(plan)
        table_name = plan.table
        families = self._all_families(table_name)
        if not families:
            raise SampleNotFoundError(
                f"no samples exist for table {table_name!r}; build samples first"
            )

        # 1. Superset match: smallest column set wins (§4.1.1).
        stratified = [
            f for f in families if isinstance(f, StratifiedSampleFamily) and f.covers(columns)
        ]
        if columns and stratified:
            best = min(stratified, key=lambda f: (len(f.columns), f.columns))
            return FamilySelection(family=best, reason="superset-match")

        if not columns:
            # No filters or grouping at all: the uniform family is the natural
            # choice (every stratified family over-represents its tail).
            uniform = self._uniform_family(families)
            if uniform is not None:
                return FamilySelection(family=uniform, reason="no-filter-uniform")

        # 2. Probe every family's smallest resolution (§4.1.1, second half).
        if not probe_on_miss:
            uniform = self._uniform_family(families)
            fallback = uniform if uniform is not None else families[0]
            return FamilySelection(family=fallback, reason="fallback-no-probe")

        probes: list[tuple[FamilySelection, ProbeResult]] = []
        for family in families:
            probe = self.probe(plan, family.smallest)
            probes.append((FamilySelection(family=family, reason="probe"), probe))
        best_selection, best_probe = max(
            probes, key=lambda item: (item[1].selectivity, -len(getattr(item[0].family, "columns", ())))
        )
        return FamilySelection(
            family=best_selection.family,
            reason="probe-best-ratio",
            probe=best_probe,
            probes=tuple(p for _, p in probes),
        )

    def probe(self, plan: Plannable, resolution: SampleResolution) -> ProbeResult:
        """Run the plan on one resolution and collect selectivity statistics.

        Memoized: identical plans (up to bounds) probing the same resolution
        return the cached outcome instead of re-executing.
        """
        plan = LogicalPlan.of(plan)
        key = (plan.probe_fingerprint(), resolution.name)
        with self._probe_lock:
            cached = self._probe_cache.get(key)
            if cached is not None:
                self._probe_cache.move_to_end(key)
                self._probe_hits += 1
                return cached
            self._probe_misses += 1
        probe = self._probe_uncached(plan, resolution)
        with self._probe_lock:
            self._probe_cache[key] = probe
            self._probe_cache.move_to_end(key)
            while len(self._probe_cache) > _PROBE_CACHE_ENTRIES:
                self._probe_cache.popitem(last=False)
        return probe

    def _probe_uncached(self, plan: LogicalPlan, resolution: SampleResolution) -> ProbeResult:
        context = ExecutionContext(
            weights=resolution.weights,
            exact=False,
            unit_weight_exact=False,
            rows_read=resolution.num_rows,
            population_read=resolution.represented_rows,
            sample_name=resolution.name,
        )
        result = self.executor.execute(plan, resolution.table, context)
        # Kernel-backed count: zone maps let skip/take-all blocks contribute
        # without evaluation, and no full-width mask is materialized.  The
        # execute() above already accounted this scan in the lifetime
        # counters, so the count does not record it a second time.
        rows_matched = self.executor.count_matching(
            plan, resolution.table, record=False
        )
        return ProbeResult(
            resolution=resolution,
            result=result,
            rows_read=resolution.num_rows,
            rows_matched=rows_matched,
            num_groups=max(1, len(result.groups)),
        )

    def invalidate_table(self, table_name: str) -> int:
        """Drop memoized probes of one table's resolutions (the ingest fence).

        Streaming appends change a table's data and samples without
        discarding the runtime, so probes measured on the previous generation
        must not steer planning afterwards.  Resolution names are namespaced
        by table (``"<table>/uniform/…"``, ``"<table>/strat(…)"``), which is
        what the match keys on; other tables' probes survive.
        """
        prefix = f"{table_name}/"
        with self._probe_lock:
            stale = [key for key in self._probe_cache if key[1].startswith(prefix)]
            for key in stale:
                del self._probe_cache[key]
            return len(stale)

    @property
    def probe_cache_stats(self) -> dict[str, int]:
        """Thread-safe snapshot of the probe memo's hit/miss/size counters."""
        with self._probe_lock:
            return {
                "probe_cache_hits": self._probe_hits,
                "probe_cache_misses": self._probe_misses,
                "probe_cache_entries": len(self._probe_cache),
            }

    # -- disjunctive branches (§4.1.2) ----------------------------------------------
    def disjunctive_branches(self, plan: Plannable):
        """The plan's disjoint conjunctive branches (hoisted by the logical plan)."""
        return list(LogicalPlan.of(plan).branches)

    def select_for_branch(
        self, plan: Plannable, branch, probe_on_miss: bool = True
    ) -> FamilySelection:
        """Family selection for one disjunctive branch (its own column set)."""
        plan = LogicalPlan.of(plan)
        return self.select_for_columns(
            plan.for_branch(branch), plan.branch_columns(branch), probe_on_miss
        )

    # -- internals -----------------------------------------------------------------------
    def _all_families(self, table_name: str) -> list[UniformSampleFamily | StratifiedSampleFamily]:
        families: list[UniformSampleFamily | StratifiedSampleFamily] = []
        for _, family in self.catalog.iter_families(table_name):
            families.append(family)  # type: ignore[arg-type]
        return families

    @staticmethod
    def _uniform_family(families) -> UniformSampleFamily | None:
        for family in families:
            if isinstance(family, UniformSampleFamily):
                return family
        return None
