"""The BlinkDB runtime: dynamic sample selection and approximate execution.

This package implements §4 of the paper:

* :mod:`repro.runtime.selection` — choosing a sample *family* for a query
  (§4.1): exact column-set superset match when possible, otherwise probing
  the smallest resolution of every family and picking the one with the best
  selected-to-read row ratio; disjunctive WHERE clauses are rewritten into
  disjoint conjunctive branches (§4.1.2).
* :mod:`repro.runtime.sizing` — choosing a sample *resolution* within the
  family by building an Error-Latency Profile (§4.2) from the probe results
  and the cluster cost model.
* :mod:`repro.runtime.execution` — the end-to-end runtime that parses
  constraints, probes, sizes, executes with bias correction (§4.3), and
  attaches simulated latencies and error bars to the answer.
"""

from repro.runtime.execution import BlinkDBRuntime, RuntimeDecision
from repro.runtime.partitioned import (
    PartitionPipeline,
    PartitionRunStats,
    PartitionTiming,
    ProgressiveSnapshot,
)
from repro.runtime.selection import FamilySelection, ProbeResult, SampleFamilySelector
from repro.runtime.sizing import ErrorLatencyProfile, ProfileEntry, SampleSizer

__all__ = [
    "BlinkDBRuntime",
    "RuntimeDecision",
    "PartitionPipeline",
    "PartitionRunStats",
    "PartitionTiming",
    "ProgressiveSnapshot",
    "FamilySelection",
    "ProbeResult",
    "SampleFamilySelector",
    "ErrorLatencyProfile",
    "ProfileEntry",
    "SampleSizer",
]
