"""The partition-parallel execution pipeline with anytime answers.

The paper's engine runs a query as many small map tasks — one per sample
block (§2.2.1, Fig. 4) — whose partial aggregates are merged into the final
answer.  :class:`PartitionPipeline` reproduces that plan shape on top of the
staged executor: it splits the chosen sample into zero-copy
:class:`~repro.storage.block.TablePartition` views, computes one mergeable
partial state per partition (optionally fanned out over a shared thread
pool), and merges the partials in the order the *simulated* cluster would
complete them.

Simulated partition schedule
----------------------------
Each partition becomes one task whose simulated cost is its share of the
query's serial scan work plus a per-task overhead, inflated by a
deterministic straggler factor.  Tasks are placed greedily on
``sim_workers`` lanes (the per-query task slots the cluster grants the
query), so the pipeline's completion time is the busy time of the slowest
lane — the slowest wave dominates, as on a real cluster.  The serial work is
calibrated from the cluster simulator's full-scan latency: running with
``reference_workers`` lanes reproduces the simulator's whole-scan latency,
and other worker counts scale it accordingly.

Anytime answers
---------------
Given a ``deadline_seconds`` (the query's ``WITHIN`` bound, on the simulated
clock), only the partitions whose simulated completion time fits the deadline
are merged; the estimate is finalized with the coverage-corrected weight
scale so COUNT/SUM stay unbiased and the error bars widen to reflect the
rows that were never seen.  At least one partition is always merged.  A
``progress`` callback observes one :class:`ProgressiveSnapshot` per merge,
which is how the service layer exposes progressively refining answers.
"""

from __future__ import annotations

from concurrent.futures import Executor
from dataclasses import dataclass, replace
from typing import Any, Callable, Sequence

import numpy as np

from repro.common.errors import ExecutionError
from repro.common.rng import make_rng
from repro.engine.accumulators import PartialAggregation
from repro.engine.executor import ExecutionContext, Plannable, QueryExecutor
from repro.engine.kernels import ScanSink
from repro.engine.result import QueryResult
from repro.obs.trace import NULL_SPAN, AnySpan
from repro.planner.logical import LogicalPlan
from repro.storage.block import TablePartition
from repro.storage.table import Table


@dataclass(frozen=True)
class PartitionTiming:
    """Simulated schedule entry of one partition task.

    A *skipped* partition is one whose blocks the zone maps proved entirely
    non-matching: no task is dispatched for it (``lane`` is ``-1``), it
    completes at time zero for free, and it still counts as merged coverage
    — its rows were scanned-for-free.
    """

    index: int
    rows: int
    cost_seconds: float
    start_seconds: float
    completion_seconds: float
    lane: int
    merged: bool
    skipped: bool = False


@dataclass(frozen=True)
class ProgressiveSnapshot:
    """One progressively refined answer, emitted after each state merge."""

    partitions_merged: int
    num_partitions: int
    coverage_fraction: float
    simulated_seconds: float
    result: QueryResult

    @property
    def fraction_merged(self) -> float:
        if self.num_partitions == 0:
            return 1.0
        return self.partitions_merged / self.num_partitions


@dataclass(frozen=True)
class PartitionRunStats:
    """Everything the pipeline decided and observed for one query."""

    num_partitions: int
    merged_partitions: int
    coverage_row_fraction: float
    coverage_population_fraction: float
    makespan_seconds: float
    merged_seconds: float
    deadline_seconds: float | None
    sim_workers: int
    reference_workers: int
    timings: tuple[PartitionTiming, ...]
    #: Partitions completed without dispatching work (all blocks zone-map
    #: skippable); ``rows_skipped`` is the row total of exactly those
    #: partitions — covered, scanned for free.  (Blocks skipped *inside*
    #: dispatched partitions are accounted by the executor's scan counters.)
    skipped_partitions: int = 0
    rows_skipped: int = 0

    @property
    def complete(self) -> bool:
        return self.merged_partitions == self.num_partitions


ProgressCallback = Callable[[ProgressiveSnapshot], None]


class PartitionPipeline:
    """Partition → partial state → merge → estimate, on a simulated clock."""

    def __init__(
        self,
        executor: QueryExecutor,
        *,
        straggler_spread: float = 0.2,
        seed: int = 7,
    ) -> None:
        self.executor = executor
        self.straggler_spread = straggler_spread
        self.seed = seed

    def run(
        self,
        plan: Plannable,
        table: Table,
        context: ExecutionContext,
        *,
        num_partitions: int,
        sim_workers: int,
        reference_workers: int | None = None,
        scan_latency_seconds: float | None = None,
        task_overhead_seconds: float = 0.0,
        deadline_seconds: float | None = None,
        confidence: float | None = None,
        pool: Executor | None = None,
        progress: ProgressCallback | None = None,
        trace_span: AnySpan = NULL_SPAN,
    ) -> QueryResult:
        """Execute ``plan`` partition-parallel; see the module docstring.

        The returned result carries the merged estimate, a simulated latency
        equal to the completion time of the last merged partition, and a
        :class:`PartitionRunStats` under ``metadata["partitions"]``.

        ``trace_span`` is the query trace's parent span for this pipeline
        run; the stages open children under it (the partial-aggregation
        children are opened *from the pool's worker threads* — the trace's
        internal lock makes that safe).
        """
        plan = LogicalPlan.of(plan)
        weights = context.weights
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)

        num_partitions = max(1, min(num_partitions, max(1, table.num_rows)))
        sim_workers = max(1, min(sim_workers, num_partitions))
        if reference_workers is None:
            reference_workers = sim_workers
        reference_workers = max(1, reference_workers)

        partitions = table.partitions(weights=weights, num_partitions=num_partitions)
        # Zone-map triage: partitions whose blocks are all provably
        # non-matching complete without dispatching work, and partially
        # skippable ones carry proportionally less simulated scan cost.
        with trace_span.span("kernel-triage", partitions=len(partitions)) as triage_span:
            triage = self.executor.partition_triage(plan, partitions)
            scan_rows = None if triage is None else [t.scan_rows for t in triage]
            triage_span.annotate(
                applicable=triage is not None,
                fully_skipped=0 if triage is None else sum(t.all_skipped for t in triage),
            )
        timings = self._schedule(
            partitions,
            sim_workers=sim_workers,
            reference_workers=reference_workers,
            scan_latency_seconds=scan_latency_seconds,
            task_overhead_seconds=task_overhead_seconds,
            scan_rows=scan_rows,
        )
        makespan = max(t.completion_seconds for t in timings)

        merge_order = sorted(timings, key=lambda t: (t.completion_seconds, t.index))
        if deadline_seconds is None:
            merged_timings = merge_order
        else:
            merged_timings = [
                t for t in merge_order if t.completion_seconds <= deadline_seconds
            ]
            # An anytime answer always reports *something informative*: at
            # least one *evaluated* partition.  Zone-map-skipped partitions
            # are provably match-free, so a merge of only those says nothing
            # about the regions where matches can live.
            if not any(not t.skipped for t in merged_timings):
                first_evaluated = next(
                    (t for t in merge_order if not t.skipped), None
                )
                if first_evaluated is not None:
                    merged_timings.append(first_evaluated)
                    merged_timings.sort(
                        key=lambda t: (t.completion_seconds, t.index)
                    )
                elif not merged_timings:
                    merged_timings = merge_order[:1]
        merged_set = {t.index for t in merged_timings}
        timings = tuple(replace(t, merged=t.index in merged_set) for t in timings)

        # The real computation: partial-aggregate only the partitions the
        # simulated schedule managed to complete, fanned over the pool.
        # Skipped partitions get a synthetic empty partial carrying their
        # row/weight coverage — no data of theirs is ever read.
        to_aggregate = [partitions[t.index] for t in merged_timings if not t.skipped]
        aggregated, backend_info = self._aggregate(
            plan, to_aggregate, pool, sink=context.scan_sink, trace_span=trace_span
        )
        real_partials = iter(aggregated)
        partials = [
            self._skipped_partial(plan, partitions[t.index])
            if t.skipped
            else next(real_partials)
            for t in merged_timings
        ]
        # Surrendered partitions (a fault exhausted every retry) come back as
        # ``None`` holes: drop them from the merge so the anytime/coverage
        # machinery scales the answer and widens the bars around the rows
        # that were never seen — explicitly degraded, never silently wrong.
        surrendered = sum(1 for p in partials if p is None)
        if surrendered:
            kept = [(t, p) for t, p in zip(merged_timings, partials) if p is not None]
            if not any(not t.skipped for t, _ in kept):
                raise ExecutionError(
                    "every evaluated partition was surrendered to faults: "
                    f"{backend_info.get('fault', 'unknown fault')}"
                )
            merged_timings = [t for t, _ in kept]
            partials = [p for _, p in kept]
            merged_set = {t.index for t in merged_timings}
            timings = tuple(replace(t, merged=t.index in merged_set) for t in timings)
        if triage is not None:
            self._record_skipped(
                plan, table, partitions, triage, timings, sink=context.scan_sink
            )

        rows_total = table.num_rows
        if context.population_read is not None:
            population_full = float(context.population_read)
        elif weights is not None:
            population_full = float(np.sum(weights))
        else:
            population_full = float(rows_total)
        rows_read_full = context.rows_read if context.rows_read is not None else rows_total

        merged: PartialAggregation | None = None
        merged_count = 0
        skipped_rows_merged = 0
        skipped_weight_merged = 0.0
        result: QueryResult | None = None
        with trace_span.span("merge", partials=len(merged_timings)) as merge_span:
            for timing, partial in zip(merged_timings, partials):
                merged = partial if merged is None else merged.merge(partial)
                merged_count += 1
                if timing.skipped:
                    skipped_rows_merged += partial.rows_scanned
                    skipped_weight_merged += partial.weight_scanned
                if progress is None and merged_count < len(merged_timings):
                    continue  # only the final merge needs finalizing
                with merge_span.span("estimate", partials_merged=merged_count):
                    result = self._finalize_merged(
                        plan,
                        merged,
                        context,
                        confidence,
                        rows_total=rows_total,
                        rows_read_full=rows_read_full,
                        population_full=population_full,
                        complete=merged_count == num_partitions,
                        skipped_rows=skipped_rows_merged,
                        skipped_weight=skipped_weight_merged,
                    )
                result = replace(
                    result, simulated_latency_seconds=timing.completion_seconds
                )
                if progress is not None:
                    coverage = (
                        merged.weight_scanned / population_full
                        if population_full > 0
                        else 1.0
                    )
                    progress(
                        ProgressiveSnapshot(
                            partitions_merged=merged_count,
                            num_partitions=num_partitions,
                            coverage_fraction=min(1.0, coverage),
                            simulated_seconds=timing.completion_seconds,
                            result=result,
                        )
                    )
        assert merged is not None and result is not None

        coverage_rows = merged.rows_scanned / rows_total if rows_total else 1.0
        coverage_population = (
            merged.weight_scanned / population_full if population_full > 0 else 1.0
        )
        stats = PartitionRunStats(
            num_partitions=num_partitions,
            merged_partitions=merged_count,
            coverage_row_fraction=min(1.0, coverage_rows),
            coverage_population_fraction=min(1.0, coverage_population),
            makespan_seconds=makespan,
            merged_seconds=merged_timings[-1].completion_seconds,
            deadline_seconds=deadline_seconds,
            sim_workers=sim_workers,
            reference_workers=reference_workers,
            timings=timings,
            skipped_partitions=sum(1 for t in timings if t.skipped),
            rows_skipped=sum(t.rows for t in timings if t.skipped),
        )
        result.metadata["partitions"] = stats
        result.metadata["backend_info"] = backend_info
        if surrendered:
            result.metadata["degraded"] = {
                "surrendered_partitions": surrendered,
                "fault": backend_info.get("fault"),
            }
        return result

    # -- internals -----------------------------------------------------------------
    def _schedule(
        self,
        partitions: Sequence[TablePartition],
        *,
        sim_workers: int,
        reference_workers: int,
        scan_latency_seconds: float | None,
        task_overhead_seconds: float,
        scan_rows: Sequence[int] | None = None,
    ) -> list[PartitionTiming]:
        """Greedy least-loaded placement of partition tasks on simulated lanes.

        ``scan_rows`` — when zone-map triage ran — is the per-partition count
        of rows that must actually be read.  A partition with zero scan rows
        dispatches no task at all (it completes, for free, at time zero);
        partially skippable partitions carry proportionally less cost.
        ``scan_latency_seconds`` is the simulated cost of the work that must
        actually be done — the planner's scan accounting already discounts
        it for predicted skips — so shares are normalized over the
        *effective* (non-skipped) row total: the skipped rows never
        contribute lane busy time, and the discount is applied exactly once.
        """
        rows_total = sum(p.num_rows for p in partitions)
        effective_total = rows_total if scan_rows is None else sum(scan_rows)
        if scan_latency_seconds is None:
            # No simulator: the sizing layer's linear proxy (1M rows/second)
            # over the rows that actually need scanning.
            scan_latency_seconds = effective_total / 1e6 + task_overhead_seconds
        work_seconds = max(0.0, scan_latency_seconds - task_overhead_seconds)
        # Serial scan work, calibrated so `reference_workers` lanes reproduce
        # the simulator's full-scan latency.
        serial_work = work_seconds * reference_workers

        jitter = 1.0 + self.straggler_spread * make_rng(self.seed).random(len(partitions))
        lanes = [0.0] * sim_workers
        timings: list[PartitionTiming] = []
        # Dispatch in bit-reversed order so the earliest wave spans the whole
        # table: stratified samples are stored sorted by their column set, and
        # an anytime cut that merged only a *prefix* of row ranges would
        # systematically miss the strata stored last.
        for index in _spread_order(len(partitions)):
            partition = partitions[index]
            effective_rows = (
                partition.num_rows if scan_rows is None else scan_rows[index]
            )
            if scan_rows is not None and effective_rows == 0:
                # Every block provably non-matching: no task is dispatched.
                timings.append(
                    PartitionTiming(
                        index=index,
                        rows=partition.num_rows,
                        cost_seconds=0.0,
                        start_seconds=0.0,
                        completion_seconds=0.0,
                        lane=-1,
                        merged=False,
                        skipped=True,
                    )
                )
                continue
            share = effective_rows / effective_total if effective_total else 0.0
            cost = task_overhead_seconds + float(jitter[index]) * share * serial_work
            lane = min(range(sim_workers), key=lanes.__getitem__)
            start = lanes[lane]
            lanes[lane] = start + cost
            timings.append(
                PartitionTiming(
                    index=index,
                    rows=partition.num_rows,
                    cost_seconds=cost,
                    start_seconds=start,
                    completion_seconds=start + cost,
                    lane=lane,
                    merged=False,
                )
            )
        timings.sort(key=lambda t: t.index)
        return timings

    def _aggregate(
        self,
        plan: LogicalPlan,
        partitions: Sequence[TablePartition],
        pool: Executor | None,
        sink: ScanSink | None = None,
        trace_span: AnySpan = NULL_SPAN,
    ) -> tuple[list[PartialAggregation | None], dict[str, Any]]:
        """Partial-aggregate ``partitions``; also report which backend ran.

        The second element is the ``backend_info`` dict surfaced under
        ``result.metadata``: the backend actually used ("processes",
        "threads", or "inline"), the fallback reason when a process backend
        declined or failed, and — on the process path — the call's healing
        accounting (retries / hedges / respawns / surrendered counts).
        """
        aggregate = self.executor.partial_aggregate_partition
        if not partitions:
            return [], {"backend": "inline"}
        with trace_span.span("partial-aggregate", partitions=len(partitions)) as dispatch:
            # Backend seam: a process backend (duck-typed on
            # ``map_partitions``) runs the partials in worker processes over
            # shared memory and ships back serialized states; any ``None``
            # return (no shm, joins, worker death) falls through to its
            # thread-pool fallback with identical semantics.
            fallback_reason: str | None = None
            tried_processes = hasattr(pool, "map_partitions")
            if tried_processes:
                if len(partitions) > 1:
                    shipped = pool.map_partitions(
                        plan, partitions, sink=sink, trace_span=dispatch
                    )
                    if shipped is not None:
                        dispatch.annotate(backend="processes")
                        info: dict[str, Any] = {"backend": "processes"}
                        info.update(getattr(pool, "last_health", None) or {})
                        return shipped, info
                    fallback_reason = (
                        getattr(pool, "last_fallback_reason", None) or "pool declined"
                    )
                else:
                    fallback_reason = "single_partition"
                pool = getattr(pool, "fallback", None)

            # The per-partition child spans are opened from whichever thread
            # runs the partition — the pool's workers under fan-out — and
            # joined into this dispatch span across threads.
            def one(partition: TablePartition) -> PartialAggregation:
                with dispatch.span("partition", rows=partition.num_rows):
                    return aggregate(plan, partition, sink)

            if pool is None or len(partitions) <= 1:
                results: list[PartialAggregation | None] = [one(p) for p in partitions]
                backend = "inline"
            else:
                results = list(pool.map(one, partitions))
                backend = "threads"
            info = {"backend": backend}
            if fallback_reason is not None:
                info["fallback_reason"] = fallback_reason
                dispatch.annotate(backend=backend, fallback_reason=fallback_reason)
            return results, info

    @staticmethod
    def _skipped_partial(
        plan: LogicalPlan, partition: TablePartition
    ) -> PartialAggregation:
        """The partial of a fully zone-map-skipped partition: coverage, no rows.

        Matches exactly what :meth:`QueryExecutor.partial_aggregate` would
        produce for the partition (its predicate provably matches no row):
        the scanned row/weight totals, and no group contributions.
        """
        weights = partition.weights
        if weights is not None:
            weight_scanned = float(np.sum(np.asarray(weights, dtype=np.float64)))
        else:
            weight_scanned = float(partition.num_rows)
        return PartialAggregation(
            group_columns=tuple(plan.group_by),
            rows_scanned=partition.num_rows,
            weight_scanned=weight_scanned,
            has_weights=weights is not None,
        )

    def _record_skipped(
        self,
        plan: LogicalPlan,
        table: Table,
        partitions: Sequence[TablePartition],
        triage,
        timings: Sequence[PartitionTiming],
        sink: ScanSink | None = None,
    ) -> None:
        """Account fully-skipped partitions in the executor's scan counters.

        Their blocks never reach the evaluation path, so they are recorded
        here; partially skippable partitions record themselves when
        aggregated.
        """
        skipped = [t.index for t in timings if t.skipped]
        if not skipped:
            return
        row_width = self.executor.prune(plan, table).row_width_bytes
        for index in skipped:
            verdict = triage[index]
            self.executor.record_skipped_scan(
                rows=verdict.rows, blocks=verdict.blocks, row_width=row_width, sink=sink
            )

    def _finalize_merged(
        self,
        plan: LogicalPlan,
        merged: PartialAggregation,
        context: ExecutionContext,
        confidence: float | None,
        *,
        rows_total: int,
        rows_read_full: int,
        population_full: float,
        complete: bool,
        skipped_rows: int = 0,
        skipped_weight: float = 0.0,
    ) -> QueryResult:
        """Finalize a (possibly partial) merge with coverage correction.

        Zone-map-skipped coverage is *non-representative by construction* —
        those regions provably hold no matching rows, while every match
        lives in the evaluated ones.  The inverse-coverage weight scale and
        the ``rows_read`` that drives error-bar widths are therefore
        computed over the *scannable* (non-skipped) population only: the
        skipped regions contribute their exact zero, and the uncertainty
        reflects just the evaluated-but-unmerged remainder.
        """
        if complete or merged.weight_scanned <= 0:
            weight_scale = 1.0
            rows_read = rows_read_full
        else:
            scannable_population = max(0.0, population_full - skipped_weight)
            merged_scannable = merged.weight_scanned - skipped_weight
            if merged_scannable <= 0:
                weight_scale = 1.0
                rows_read = max(0, merged.rows_scanned - skipped_rows)
            else:
                weight_scale = max(1.0, scannable_population / merged_scannable)
                rows_read = max(1, merged.rows_scanned - skipped_rows)
        return self.executor.finalize(
            plan,
            merged,
            context,
            confidence,
            rows_read=rows_read,
            population_read=population_full,
            weight_scale=weight_scale,
        )


def _spread_order(n: int) -> list[int]:
    """Indices 0..n-1 in bit-reversed order (maximally spread out)."""
    if n <= 2:
        return list(range(n))
    bits = (n - 1).bit_length()
    reversed_keys = [int(format(i, f"0{bits}b")[::-1], 2) for i in range(n)]
    return sorted(range(n), key=lambda i: (reversed_keys[i], i))
