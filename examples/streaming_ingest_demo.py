"""Streaming-ingest demo: live appends under concurrent analysts.

Loads a Conviva-like table, builds samples, then starts two things at once:

* a **producer** feeding rows through an ``IngestController`` (batching +
  backpressure, background flushing), and
* an **analyst** issuing the same diagnostic query in a loop through a
  ``QueryService`` session.

While both run, the demo prints how the answers track the growing table:
every answer is stamped with the *generation* it was computed against (a
query never sees a mix of old and new blocks), the service cache is fenced
per table (each append drops only this table's entries), and the sample
maintainers keep the error bars honest — the approximate answer tracks the
exact answer on the grown table within its reported 95%-confidence bar
(expect the occasional miss: that is what a 95% bar means, and the exact
answer here is computed a few generations later while the stream runs on).
When enough data has arrived, the staleness budget escalates ingestion into
a sample re-plan.

Run with::

    python examples/streaming_ingest_demo.py
"""

from __future__ import annotations

import threading
import time

from repro import BlinkDB, BlinkDBConfig, ClusterConfig, SamplingConfig
from repro.workloads.conviva import conviva_query_templates, generate_sessions_table

QUERY = (
    "SELECT AVG(session_time) FROM sessions "
    "WHERE country = 'country_0001' ERROR WITHIN 10% AT CONFIDENCE 95%"
)


def main() -> None:
    # 1. The usual offline setup: load, register workload, build samples.
    config = BlinkDBConfig(
        sampling=SamplingConfig(largest_cap=300, min_cap=20, uniform_sample_fraction=0.1),
        cluster=ClusterConfig(num_nodes=20),
        ingest_staleness_budget=0.2,
    )
    db = BlinkDB(config)
    base = generate_sessions_table(num_rows=40_000, seed=7, num_cities=40, num_countries=15)
    db.load_table(base, simulated_rows=40_000_000)
    db.register_workload(templates=conviva_query_templates())
    db.build_samples(storage_budget_fraction=0.5)
    service = db.serve(num_workers=2)
    session = service.connect(name="dashboard")

    # 2. Producer: stream fresh rows through the batching controller.
    stop = threading.Event()

    def producer() -> None:
        controller = db.ingest_controller("sessions", batch_rows=2_000)
        seed = 1000
        with controller:
            while not stop.is_set():
                chunk = generate_sessions_table(
                    num_rows=2_000, seed=seed, num_cities=40, num_countries=15
                )
                rows = {n: list(chunk.column(n).values()) for n in chunk.column_names}
                controller.submit(
                    [{n: rows[n][i] for n in rows} for i in range(2_000)]
                )
                seed += 1
                time.sleep(0.05)

    feeder = threading.Thread(target=producer, daemon=True)
    feeder.start()

    # 3. Analyst: same query in a loop; watch generation + error bar + truth.
    print(f"{'generation':>10}  {'rows':>8}  {'approx':>9}  {'bar':>7}  {'exact':>9}  in-bar")
    try:
        for _ in range(12):
            result = session.execute(QUERY)
            approx = result.scalar()
            exact = db.query_exact(
                "SELECT AVG(session_time) FROM sessions WHERE country = 'country_0001'"
            ).scalar().estimate.value
            generation = result.metadata.get("generation")
            rows = db.catalog.table("sessions").num_rows
            in_bar = abs(approx.estimate.value - exact) <= approx.error_bar
            print(
                f"{generation!s:>10}  {rows:>8}  {approx.estimate.value:>9.3f}  "
                f"{approx.error_bar:>7.3f}  {exact:>9.3f}  {in_bar}"
            )
            time.sleep(0.4)
    finally:
        stop.set()
        feeder.join(timeout=30)

    # 4. What the ingest layer did, as the service metrics see it.
    snapshot = service.describe()
    print("\ningest gauges:", snapshot["metrics"]["ingest"])
    print("cache:", {k: snapshot["cache"][k] for k in ("hits", "misses", "invalidations")})
    service.close()


if __name__ == "__main__":
    main()
