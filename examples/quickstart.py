"""Quickstart: load data, register a workload, build samples, query with bounds.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import BlinkDB, BlinkDBConfig, ClusterConfig, SamplingConfig
from repro.workloads.conviva import conviva_query_templates, generate_sessions_table


def main() -> None:
    # 1. A BlinkDB instance simulating a modest 20-node cluster.
    config = BlinkDBConfig(
        sampling=SamplingConfig(largest_cap=200, min_cap=10, uniform_sample_fraction=0.1),
        cluster=ClusterConfig(num_nodes=20),
    )
    db = BlinkDB(config)

    # 2. Load a synthetic "video sessions" fact table.  The in-memory table
    #    holds 50k rows; the simulator treats it as standing in for 50M rows.
    sessions = generate_sessions_table(num_rows=50_000, seed=7, num_cities=40, num_countries=15)
    db.load_table(sessions, simulated_rows=50_000_000)

    # 3. Register the historical query workload (templates + weights) and let
    #    the optimizer decide which stratified sample families to build under
    #    a 50% storage budget.
    db.register_workload(templates=conviva_query_templates())
    plan = db.build_samples(storage_budget_fraction=0.5)
    print("Sample families built:")
    for row in plan.describe():
        print(f"  {row['columns']:>24}  {row['storage_bytes'] / 2**20:8.1f} MB")

    # 4. An error-bounded query: answer within +/-10% at 95% confidence.
    result = db.query(
        "SELECT AVG(session_time) FROM sessions WHERE city = 'city_0003' "
        "GROUP BY os ERROR WITHIN 10% AT CONFIDENCE 95%"
    )
    print("\nAverage session time for city_0003 by OS (error-bounded):")
    for group in result:
        value = group["avg_session_time"]
        print(f"  {group.key[0]:>10}: {value.interval}")
    print(f"  sample used: {result.sample_name}")
    print(f"  simulated latency: {result.simulated_latency_seconds:.2f} s")

    # 5. A time-bounded query: the most accurate answer within 5 seconds.
    result = db.query(
        "SELECT COUNT(*), RELATIVE ERROR AT 95% CONFIDENCE FROM sessions "
        "WHERE country = 'country_0002' GROUP BY genre WITHIN 5 SECONDS"
    )
    print("\nSessions from country_0002 by genre (time-bounded, 5 s):")
    for group in result:
        value = group["count_star"]
        print(f"  {group.key[0]:>12}: {value.value:12,.0f} ± {value.error_bar:,.0f}")
    print(f"  simulated latency: {result.simulated_latency_seconds:.2f} s")

    # 6. Compare with the exact answer (full scan of the base table).
    exact = db.query_exact(
        "SELECT AVG(session_time) FROM sessions WHERE city = 'city_0003' GROUP BY os"
    )
    print(f"\nExact full-scan simulated latency: {exact.simulated_latency_seconds:.2f} s")


if __name__ == "__main__":
    main()
