"""Service demo: N concurrent analysts with mixed error/time bounds.

Starts a ``QueryService`` over a Conviva-like table, opens several client
sessions with different per-session defaults, drives them concurrently, and
prints the per-session histories and the service-level metrics (queue waits,
cache hits, shed queries).

Run with::

    python examples/service_demo.py
"""

from __future__ import annotations

import threading

from repro import BlinkDB, BlinkDBConfig, ClusterConfig, SamplingConfig
from repro.service import SessionDefaults, mixed_bound_trace, run_closed_loop
from repro.workloads.conviva import conviva_query_templates, generate_sessions_table


def main() -> None:
    # 1. Build the database as usual: load, register workload, build samples.
    config = BlinkDBConfig(
        sampling=SamplingConfig(largest_cap=200, min_cap=10, uniform_sample_fraction=0.1),
        cluster=ClusterConfig(num_nodes=20),
    )
    db = BlinkDB(config)
    sessions = generate_sessions_table(num_rows=50_000, seed=7, num_cities=40, num_countries=15)
    db.load_table(sessions, simulated_rows=50_000_000)
    db.register_workload(templates=conviva_query_templates())
    db.build_samples(storage_budget_fraction=0.5)

    # 2. Start the query service: 4 workers over one shared runtime, result
    #    cache on.  Rebuilding samples later would invalidate the cache
    #    automatically.
    service = db.serve(num_workers=4)

    # 3. Three analysts with different per-session defaults.  Queries that
    #    carry no bound of their own inherit the session's default.
    analysts = [
        service.connect(name="dashboard", defaults=SessionDefaults(time_bound_seconds=5.0)),
        service.connect(name="explorer", defaults=SessionDefaults(error_percent=10.0)),
        service.connect(name="batch", defaults=SessionDefaults()),
    ]
    sql = "SELECT AVG(session_time) FROM sessions WHERE city = 'city_0003' GROUP BY os"

    def drive(session, repeats: int) -> None:
        for _ in range(repeats):
            ticket = session.submit(sql)
            ticket.wait(timeout=60)

    threads = [
        threading.Thread(target=drive, args=(session, 4), daemon=True) for session in analysts
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    print("Per-session view (same SQL, different default bounds):")
    for session in analysts:
        info = session.describe()
        print(
            f"  {info['name']:>10}: {info['queries']} queries, "
            f"{info['cache_hits']} cache hits, defaults={info['defaults']}"
        )

    # 4. A mixed closed-loop load: 6 clients, error-bounded, time-bounded,
    #    and unbounded queries drawn from the Conviva templates.
    queries = mixed_bound_trace(
        conviva_query_templates(), sessions, num_queries=48, seed=11
    )
    report = run_closed_loop(service, queries, num_clients=6)
    print("\nClosed-loop load (6 clients, 48 queries):")
    for key, value in report.describe().items():
        print(f"  {key:>18}: {value}")

    # 5. Service metrics: admission, cache, and latency histograms.
    snapshot = service.describe()
    print("\nService metrics:")
    print(f"  queries:  {snapshot['metrics']['queries']}")
    print(f"  cache:    {snapshot['metrics']['cache']}")
    queue_wait = snapshot["metrics"]["latency"]["queue_wait"]
    print(f"  queue wait: mean={queue_wait['mean_s']:.4f}s p95={queue_wait['p95_s']:.4f}s")

    service.close()


if __name__ == "__main__":
    main()
