"""Problem diagnosis on skewed session logs (the paper's motivating use case).

A service operator wants to know, *right now*, whether users of a particular
platform in particular cities are experiencing poor quality of service —
without waiting for a full scan of the log.  This example:

1. builds samples over a skewed sessions table,
2. runs a sequence of progressively narrower error-bounded diagnostic queries
   (overall -> per-platform -> per-city for the suspect platform),
3. shows how the runtime trades rows read for the requested accuracy, and
4. contrasts the missing-subgroup behaviour of uniform vs stratified samples.

Run with::

    python examples/conviva_diagnostics.py
"""

from __future__ import annotations

from repro import BlinkDB, BlinkDBConfig, ClusterConfig, SamplingConfig
from repro.workloads.conviva import conviva_query_templates, generate_sessions_table


def show(result, aggregate_name: str, label: str) -> None:
    print(f"\n{label}")
    for group in result:
        value = group[aggregate_name]
        print(f"  {str(group.key):>28}: {value.interval}")
    decision = result.metadata.get("decision")
    if decision is not None:
        print(
            f"  [sample={result.sample_name}  rows_read={result.rows_read:,}  "
            f"latency={result.simulated_latency_seconds:.2f}s  "
            f"bound_satisfied={decision.bound_satisfied}]"
        )


def main() -> None:
    config = BlinkDBConfig(
        sampling=SamplingConfig(largest_cap=300, min_cap=10, uniform_sample_fraction=0.1),
        cluster=ClusterConfig(num_nodes=50),
    )
    db = BlinkDB(config)
    sessions = generate_sessions_table(
        num_rows=80_000, seed=21, num_cities=40, num_countries=15, num_customers=100
    )
    db.load_table(sessions, simulated_rows=2_000_000_000)
    db.register_workload(templates=conviva_query_templates())
    plan = db.build_samples(storage_budget_fraction=0.5)
    print("Stratified families:", [list(f.columns) for f in plan.families])

    # Step 1: is buffering elevated anywhere? (coarse, cheap, 10% error is fine)
    result = db.query(
        "SELECT AVG(buffer_ratio) FROM sessions GROUP BY os "
        "ERROR WITHIN 10% AT CONFIDENCE 95%"
    )
    show(result, "avg_buffer_ratio", "Step 1 — average buffering ratio by platform (±10%):")

    # Step 2: drill into the worst platform, per city, with a tighter bound.
    worst_platform = max(result, key=lambda g: g["avg_buffer_ratio"].value).key[0]
    result = db.query(
        f"SELECT AVG(buffer_ratio), COUNT(*) FROM sessions WHERE os = '{worst_platform}' "
        "GROUP BY city ERROR WITHIN 5% AT CONFIDENCE 95% LIMIT 8"
    )
    show(
        result,
        "avg_buffer_ratio",
        f"Step 2 — buffering for platform {worst_platform!r} by city (±5%, first 8 cities):",
    )

    # Step 3: the same drill-down under a hard latency budget instead.
    result = db.query(
        f"SELECT AVG(session_time) FROM sessions WHERE os = '{worst_platform}' "
        "GROUP BY city WITHIN 2 SECONDS LIMIT 8"
    )
    show(
        result,
        "avg_session_time",
        f"Step 3 — session time for {worst_platform!r} by city (2-second budget):",
    )

    # Step 4: subset error — compare group coverage of the approximate answer
    # with the exact answer.  Stratified samples keep every country present.
    approx = db.query("SELECT COUNT(*) FROM sessions GROUP BY country WITHIN 2 SECONDS")
    exact = db.query_exact("SELECT COUNT(*) FROM sessions GROUP BY country")
    missing = [g.key for g in exact if not approx.has_group(g.key)]
    print(
        f"\nStep 4 — subset error: exact answer has {len(exact)} countries, "
        f"approximate answer has {len(approx)}; missing groups: {missing or 'none'}"
    )


if __name__ == "__main__":
    main()
