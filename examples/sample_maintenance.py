"""Sample maintenance: workload drift, bounded-churn re-planning, refresh.

The offline samples BlinkDB maintains must follow the data and the workload.
This example shows the §3.2.3 / §4.5 machinery:

1. build samples for an initial workload,
2. detect that the workload has drifted,
3. re-plan under different churn budgets ``r`` (how much sample storage may be
   created/discarded) and apply the chosen plan,
4. periodically refresh (re-draw) the samples in the background.

Run with::

    python examples/sample_maintenance.py
"""

from __future__ import annotations

from repro import BlinkDB, BlinkDBConfig, ClusterConfig, SamplingConfig
from repro.sql.templates import QueryTemplate, normalize_weights
from repro.workloads.conviva import conviva_query_templates, generate_sessions_table


def main() -> None:
    config = BlinkDBConfig(
        sampling=SamplingConfig(largest_cap=200, min_cap=10, uniform_sample_fraction=0.08),
        cluster=ClusterConfig(num_nodes=20),
    )
    db = BlinkDB(config)
    sessions = generate_sessions_table(
        num_rows=60_000, seed=3, num_cities=40, num_countries=15, num_customers=100
    )
    db.load_table(sessions, simulated_rows=600_000_000)

    initial_templates = conviva_query_templates()
    db.register_workload(templates=initial_templates)
    plan = db.build_samples(storage_budget_fraction=0.5)
    print("Initial families:", [list(f.columns) for f in plan.families])

    # The workload drifts: analysts now slice by customer/date and content.
    drifted = normalize_weights(
        [
            QueryTemplate("sessions", ("customer", "dt"), 0.45),
            QueryTemplate("sessions", ("objectid",), 0.25),
            QueryTemplate("sessions", ("city", "os"), 0.20),
            QueryTemplate("sessions", ("genre", "url"), 0.10),
        ]
    )
    manager = db.maintenance()
    print(
        "\nWorkload drift detected:",
        manager.detect_workload_drift(initial_templates, drifted),
    )

    # Re-plan under different churn budgets without applying, to compare.
    for churn in (0.0, 0.3, 1.0):
        candidate_plan, actions = db.replan_samples(
            "sessions", templates=drifted, churn_fraction=churn, apply=False
        )
        created = [a.columns for a in actions if a.kind.value == "create"]
        dropped = [a.columns for a in actions if a.kind.value == "drop"]
        print(
            f"  r={churn:3.1f}: objective={candidate_plan.objective:8.1f}  "
            f"create={created or '-'}  drop={dropped or '-'}"
        )

    # Apply the moderate-churn plan.
    plan, actions = db.replan_samples(
        "sessions", templates=drifted, churn_fraction=0.3, apply=True
    )
    print("\nAfter applying the r=0.3 plan, families:",
          sorted(db.catalog.stratified_families("sessions")))

    # Periodic background refresh: re-draw every family from the current data.
    rebuilt = manager.refresh_families(sessions)
    print(f"Refreshed {rebuilt} stratified families (background re-sampling, §4.5).")

    # The refreshed samples still answer drifted-workload queries.
    result = db.query(
        "SELECT COUNT(*) FROM sessions WHERE customer = 'cust_0005' "
        "GROUP BY dt ERROR WITHIN 15% AT CONFIDENCE 95% LIMIT 5"
    )
    print("\nSessions for cust_0005 by day (first 5 days):")
    for group in result:
        value = group["count_star"]
        print(f"  day {group.key[0]:>2}: {value.value:10,.0f} ± {value.error_bar:,.0f}")


if __name__ == "__main__":
    main()
