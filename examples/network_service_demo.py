"""Network front door demo: a wire server and two competing tenant clients.

Everything in-process examples do — approximate answers with error bars,
progressive streams, EXPLAIN ANALYZE — also works over a real TCP socket:

1. start a :class:`~repro.net.server.NetworkServer` on an ephemeral port,
   with per-tenant quotas (a small in-flight cap and a rows/s budget for the
   ``reporting`` tenant, a heavier weight for ``dashboard``);
2. talk to it with :class:`repro.client.Client` — sync queries (bit-identical
   to ``db.query()``), ticket submit/poll, progressive streaming, and
   EXPLAIN ANALYZE with the admission-wait span;
3. drive both tenants concurrently and show the fair-share scheduler's
   per-tenant accounting plus a structured 429 (shed-quota) with its
   Retry-After hint.

Run with::

    python examples/network_service_demo.py
"""

from __future__ import annotations

import threading

from repro import BlinkDB, BlinkDBConfig, ClusterConfig, SamplingConfig
from repro.client import Client
from repro.common.errors import QueryRejectedError
from repro.service.tenancy import TenantQuota
from repro.workloads.conviva import conviva_query_templates, generate_sessions_table

SQL = "SELECT COUNT(*), AVG(session_time) FROM sessions GROUP BY os"


def build_db() -> BlinkDB:
    config = BlinkDBConfig(
        sampling=SamplingConfig(largest_cap=400, min_cap=25, uniform_sample_fraction=0.1),
        cluster=ClusterConfig(num_nodes=20),
    )
    db = BlinkDB(config)
    table = generate_sessions_table(num_rows=30_000, seed=7, num_cities=40)
    db.load_table(table, simulated_rows=50_000_000)
    db.register_workload(templates=conviva_query_templates())
    db.build_samples(storage_budget_fraction=0.5)
    return db


def tenant_loop(name: str, host: str, port: int, queries: int, done: dict) -> None:
    completed = shed = 0
    with Client(host, port, tenant=name, retries=4) as client:
        for _ in range(queries):
            try:
                client.query(SQL)
                completed += 1
            except QueryRejectedError as error:
                shed += 1
                print(
                    f"  [{name}] shed-quota: {error} "
                    f"(retry after {error.retry_after_seconds})"
                )
    done[name] = (completed, shed)


def main() -> None:
    db = build_db()
    server = db.serve_network(
        quotas={
            "reporting": TenantQuota(max_in_flight=1, rows_per_second=50_000.0),
            "dashboard": TenantQuota(weight=2.0),
        },
        num_workers=2,
    )
    print(f"serving on {server.url}\n")

    with Client(server.host, server.port, tenant="dashboard") as client:
        print("-- healthz --")
        print(client.healthz())

        print("\n-- sync query (bit-identical to db.query) --")
        result = client.query(SQL)
        for group in result:
            print(f"  {str(group.key):>12}: {group['count_star'].interval}")
        print(
            f"  [generation={result.metadata['generation']} "
            f"backend={result.metadata['backend']} "
            f"trace_id={result.metadata['trace_id']}]"
        )

        print("\n-- progressive stream --")
        for kind, payload in client.stream_progressive(
            "SELECT SUM(session_time) FROM sessions GROUP BY city"
        ):
            if kind == "snapshot":
                print(
                    f"  snapshot {payload.partitions_merged}/{payload.num_partitions} "
                    f"coverage={payload.coverage_fraction:.2f}"
                )
            else:
                print(f"  final: {len(payload.groups)} groups")

        print("\n-- EXPLAIN ANALYZE over the wire --")
        analyzed = client.explain_analyze(SQL)
        print("\n".join(analyzed["text"].splitlines()[:12]))

    print("\n-- two tenants race: dashboard (weight 2) vs reporting (cap 1) --")
    done: dict = {}
    threads = [
        threading.Thread(target=tenant_loop, args=(name, server.host, server.port, 20, done))
        for name in ("dashboard", "reporting")
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for name, (completed, shed) in sorted(done.items()):
        print(f"  {name}: completed={completed} shed={shed}")

    print("\n-- per-tenant accounting (db.metrics()['tenants']) --")
    for series in db.metrics()["tenants"]["series"]:
        print(f"  {series['labels']['name']}: {series['value']}")

    server.close()
    db.close()


if __name__ == "__main__":
    main()
