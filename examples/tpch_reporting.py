"""TPC-H-style reporting with joins, quantiles, and an accuracy/latency sweep.

This example exercises the parts of the API the quickstart does not:

* a fact table (lineitem) joined against a dimension table (orders),
* QUANTILE / SUM aggregates,
* the same query answered under a ladder of error bounds, showing how the
  runtime escalates to larger sample resolutions as the bound tightens
  (the "progressively tweak the bounds" exploration loop of §2).

Run with::

    python examples/tpch_reporting.py
"""

from __future__ import annotations

from repro import BlinkDB, BlinkDBConfig, ClusterConfig, SamplingConfig
from repro.workloads.tpch import (
    generate_lineitem_table,
    generate_orders_table,
    tpch_query_templates,
)


def main() -> None:
    config = BlinkDBConfig(
        sampling=SamplingConfig(largest_cap=300, min_cap=10, uniform_sample_fraction=0.1),
        cluster=ClusterConfig(num_nodes=50),
    )
    db = BlinkDB(config)

    lineitem = generate_lineitem_table(num_rows=80_000, seed=13)
    orders = generate_orders_table(num_orders=25_000, seed=17)
    db.load_table(lineitem, simulated_rows=6_000_000_000)  # ~SF-1000 lineitem
    db.load_dimension_table(orders)
    db.register_workload(templates=tpch_query_templates())
    plan = db.build_samples(storage_budget_fraction=0.5)
    print("Stratified families:", [list(f.columns) for f in plan.families])

    # Report 1: revenue by ship mode with a time bound (pricing summary style).
    result = db.query(
        "SELECT SUM(extendedprice), COUNT(*) FROM lineitem "
        "WHERE shipdate BETWEEN 100 AND 400 GROUP BY shipmode WITHIN 5 SECONDS"
    )
    print("\nRevenue by ship mode (shipdate in [100, 400), 5-second budget):")
    for group in result:
        revenue = group["sum_extendedprice"]
        print(f"  {group.key[0]:>8}: {revenue.value:16,.0f} ± {revenue.error_bar:,.0f}")
    print(f"  latency: {result.simulated_latency_seconds:.2f} s  sample: {result.sample_name}")

    # Report 2: tail latency style — the 90th percentile of quantity per flag.
    result = db.query(
        "SELECT QUANTILE(quantity, 0.9), AVG(discount) FROM lineitem "
        "GROUP BY returnflag ERROR WITHIN 10% AT CONFIDENCE 95%"
    )
    print("\n90th-percentile quantity and average discount by return flag (±10%):")
    for group in result:
        q90 = group["quantile_quantity_0.9"]
        discount = group["avg_discount"]
        print(f"  {group.key[0]}: q90={q90.value:5.1f}  avg_discount={discount.interval}")

    # Report 3: join with the orders dimension table.
    result = db.query(
        "SELECT AVG(extendedprice) FROM lineitem JOIN orders ON orderkey = orderkey "
        "WHERE shipmode = 'AIR' GROUP BY orderpriority WITHIN 10 SECONDS"
    )
    print("\nAverage line price of AIR shipments by order priority (join, 10-second budget):")
    for group in result:
        value = group["avg_extendedprice"]
        print(f"  {group.key[0]:>16}: {value.interval}")

    # Report 4: tightening the error bound buys accuracy with more rows.
    print("\nAccuracy/latency trade-off for SUM(extendedprice) WHERE discount = 0.05:")
    exact = db.query_exact(
        "SELECT SUM(extendedprice) FROM lineitem WHERE discount = 0.05"
    ).scalar().value
    for bound in (32, 16, 8, 4, 2):
        result = db.query(
            "SELECT SUM(extendedprice) FROM lineitem WHERE discount = 0.05 "
            f"ERROR WITHIN {bound}% AT CONFIDENCE 95%"
        )
        estimate = result.scalar()
        actual_error = abs(estimate.value - exact) / exact
        print(
            f"  bound ±{bound:2d}%  rows_read={result.rows_read:7,}  "
            f"estimate={estimate.value:16,.0f}  actual_error={actual_error:6.2%}  "
            f"latency={result.simulated_latency_seconds:5.2f}s"
        )
    print(f"  exact answer: {exact:,.0f}")


if __name__ == "__main__":
    main()
