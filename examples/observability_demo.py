"""Observability demo: traces, EXPLAIN ANALYZE, the ledger, and metrics.

Walks the whole observability surface over a Conviva-like table:

1. ``EXPLAIN ANALYZE`` on the serial, partitioned, and exact dispatch
   paths — the estimated-vs-actual rendering plus the span tree;
2. a service-side analyze ticket, where the trace additionally shows the
   admission queue wait;
3. ``db.audit_accuracy`` runs feeding the accuracy ledger's error-bar
   coverage track;
4. the unified metrics registry in both exposition formats.

Run with::

    python examples/observability_demo.py
"""

from __future__ import annotations

import json

from repro import BlinkDB, BlinkDBConfig, ClusterConfig, SamplingConfig
from repro.workloads.conviva import conviva_query_templates, generate_sessions_table


def banner(title: str) -> None:
    print(f"\n{'=' * 74}\n{title}\n{'=' * 74}")


def main() -> None:
    # 1. Build the database as usual: load, register workload, build samples.
    config = BlinkDBConfig(
        sampling=SamplingConfig(largest_cap=200, min_cap=10, uniform_sample_fraction=0.1),
        cluster=ClusterConfig(num_nodes=20),
    )
    db = BlinkDB(config)
    sessions = generate_sessions_table(num_rows=50_000, seed=7, num_cities=40, num_countries=15)
    db.load_table(sessions, simulated_rows=50_000_000)
    db.register_workload(templates=conviva_query_templates())
    db.build_samples(storage_budget_fraction=0.5)

    # 2. EXPLAIN ANALYZE through the facade: plan + estimated-vs-actual +
    #    span tree, on each dispatch path.
    banner("EXPLAIN ANALYZE — serial dispatch")
    print(
        db.query(
            "EXPLAIN ANALYZE SELECT AVG(session_time) FROM sessions "
            "WHERE city = 'city_0003' ERROR WITHIN 10% AT CONFIDENCE 95%"
        )
    )

    banner("EXPLAIN ANALYZE — partition-parallel dispatch")
    print(
        db.explain_analyze(
            "SELECT AVG(session_time) FROM sessions GROUP BY country WITHIN 2 SECONDS",
            partitioned=True,
        )
    )

    banner("EXPLAIN ANALYZE — exact path (the audit baseline)")
    print(
        db.explain_analyze(
            "SELECT COUNT(*) FROM sessions WHERE city = 'city_0003'", exact=True
        )
    )

    # 3. The same through a service: the ticket's trace shows the admission
    #    queue wait in front of execution.
    banner("Service analyze ticket — trace includes admission-wait")
    service = db.serve(num_workers=2)
    try:
        ticket = service.submit(
            "EXPLAIN ANALYZE SELECT COUNT(*) FROM sessions "
            "WHERE country = 'country_0001' WITHIN 2 SECONDS"
        )
        ticket.result(timeout=30)
        trace = ticket.trace()
        print(trace.render())
        wait = trace.find("admission-wait")
        print(f"\nqueue wait: {wait.duration_s * 1e3:.2f} ms ({wait.attrs['admission']})")
    finally:
        service.close()

    # 4. Audit error bars against exact answers; the ledger aggregates
    #    coverage per query template.
    banner("Accuracy ledger — error-bar coverage vs configured confidence")
    audits = [
        "SELECT COUNT(*) FROM sessions GROUP BY country ERROR WITHIN 10% AT CONFIDENCE 95%",
        "SELECT AVG(session_time) FROM sessions GROUP BY country ERROR WITHIN 10% AT CONFIDENCE 95%",
        "SELECT COUNT(*) FROM sessions WHERE city = 'city_0003' ERROR WITHIN 10% AT CONFIDENCE 95%",
    ]
    for sql in audits:
        audit = db.audit_accuracy(sql)
        print(
            f"{audit['template']:24s} {audit['covered']:3d}/{audit['audits']:3d} "
            f"error bars contained the exact answer"
        )
    print("\nledger:", json.dumps(db.obs.ledger.describe(), indent=2, default=str)[:800], "…")

    # 5. The unified registry: one namespace over runtime, service, ingest,
    #    tracer, and ledger surfaces.
    banner("db.metrics() — JSON exposition (keys)")
    print(sorted(db.metrics().keys()))

    banner("db.metrics_text() — Prometheus text exposition (excerpt)")
    text = db.metrics_text()
    print("\n".join(line for line in text.splitlines() if "accuracy" in line or "queries_total" in line))


if __name__ == "__main__":
    main()
