"""Tests for the BlinkQL lexer and parser."""

import pytest

from repro.common.errors import ParseError
from repro.sql.ast import (
    AggregateFunction,
    BetweenPredicate,
    BinaryPredicate,
    ComparisonOp,
    CompoundPredicate,
    InPredicate,
    LogicalOp,
    NotPredicate,
    to_disjunctive_branches,
)
from repro.sql.lexer import TokenType, tokenize
from repro.sql.parser import parse_query


class TestLexer:
    def test_keywords_uppercased(self):
        tokens = tokenize("select from where")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers_preserve_case(self):
        tokens = tokenize("SELECT Session_Time")
        assert tokens[1].value == "Session_Time"
        assert tokens[1].type is TokenType.IDENTIFIER

    def test_string_literals(self):
        tokens = tokenize("WHERE city = 'New York'")
        strings = [t for t in tokens if t.type is TokenType.STRING]
        assert strings[0].value == "New York"

    def test_double_quoted_strings(self):
        tokens = tokenize('WHERE city = "SF"')
        assert any(t.type is TokenType.STRING and t.value == "SF" for t in tokens)

    def test_numbers_including_decimals(self):
        tokens = tokenize("WITHIN 2.5 SECONDS")
        numbers = [t for t in tokens if t.type is TokenType.NUMBER]
        assert numbers[0].value == "2.5"

    def test_two_char_symbols(self):
        tokens = tokenize("a >= 5 AND b <> 3")
        symbols = [t.value for t in tokens if t.type is TokenType.SYMBOL]
        assert ">=" in symbols
        assert "<>" in symbols

    def test_unterminated_string_raises(self):
        with pytest.raises(ParseError):
            tokenize("WHERE city = 'oops")

    def test_unknown_character_raises(self):
        with pytest.raises(ParseError):
            tokenize("SELECT @foo")

    def test_eof_token_appended(self):
        tokens = tokenize("SELECT")
        assert tokens[-1].type is TokenType.EOF


class TestParserBasics:
    def test_simple_count_star(self):
        query = parse_query("SELECT COUNT(*) FROM sessions")
        assert query.table == "sessions"
        assert query.aggregates[0].function is AggregateFunction.COUNT
        assert query.aggregates[0].column is None

    def test_paper_example_error_bound(self):
        query = parse_query(
            "SELECT COUNT(*) FROM Sessions WHERE Genre = 'western' "
            "GROUP BY OS ERROR WITHIN 10% AT CONFIDENCE 95%"
        )
        assert query.error_bound is not None
        assert query.error_bound.error == pytest.approx(0.10)
        assert query.error_bound.confidence == pytest.approx(0.95)
        assert query.group_by_columns() == {"OS"}
        assert query.where_columns() == {"Genre"}

    def test_paper_example_time_bound_with_error_report(self):
        query = parse_query(
            "SELECT COUNT(*), RELATIVE ERROR AT 95% CONFIDENCE FROM Sessions "
            "WHERE Genre = 'western' GROUP BY OS WITHIN 5 SECONDS"
        )
        assert query.time_bound is not None
        assert query.time_bound.seconds == 5.0
        assert query.report_error is True

    def test_multiple_aggregates_and_aliases(self):
        query = parse_query(
            "SELECT AVG(latency) AS mean_latency, SUM(bytes), COUNT(*) FROM logs"
        )
        names = [a.output_name() for a in query.aggregates]
        assert names == ["mean_latency", "sum_bytes", "count_star"]

    def test_quantile_and_median(self):
        query = parse_query("SELECT QUANTILE(latency, 0.99), MEDIAN(latency) FROM logs")
        q99, median = query.aggregates
        assert q99.function is AggregateFunction.QUANTILE
        assert q99.quantile == pytest.approx(0.99)
        assert median.function is AggregateFunction.QUANTILE
        assert median.quantile == pytest.approx(0.5)

    def test_percentile_integer_form(self):
        query = parse_query("SELECT PERCENTILE(latency, 95) FROM logs")
        assert query.aggregates[0].quantile == pytest.approx(0.95)

    def test_group_by_columns_in_select_list(self):
        query = parse_query("SELECT city, SUM(time) FROM sessions GROUP BY city")
        assert query.group_by_columns() == {"city"}

    def test_select_column_not_in_group_by_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT city, SUM(time) FROM sessions GROUP BY os")

    def test_limit_and_semicolon(self):
        query = parse_query("SELECT COUNT(*) FROM t GROUP BY c LIMIT 5;")
        assert query.limit == 5

    def test_absolute_error_bound(self):
        query = parse_query("SELECT AVG(x) FROM t ERROR WITHIN 2 AT CONFIDENCE 99%")
        assert query.error_bound.relative is False
        assert query.error_bound.error == 2.0
        assert query.error_bound.confidence == pytest.approx(0.99)

    def test_join_clause(self):
        query = parse_query(
            "SELECT AVG(price) FROM lineitem JOIN orders ON orderkey = orderkey "
            "WHERE shipmode = 'AIR'"
        )
        assert len(query.joins) == 1
        assert query.joins[0].right_table == "orders"

    def test_missing_aggregate_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT city FROM sessions GROUP BY city")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT COUNT(*) FROM t nonsense nonsense")

    def test_raw_sql_preserved(self):
        sql = "SELECT COUNT(*) FROM t"
        assert parse_query(sql).raw_sql == sql


class TestPredicates:
    def test_conjunction(self):
        query = parse_query("SELECT COUNT(*) FROM t WHERE a = 1 AND b = 2 AND c = 3")
        assert isinstance(query.where, CompoundPredicate)
        assert query.where.op is LogicalOp.AND
        assert len(query.where.operands) == 3

    def test_disjunction_and_branches(self):
        query = parse_query("SELECT COUNT(*) FROM t WHERE a = 1 OR b = 2")
        assert isinstance(query.where, CompoundPredicate)
        assert query.where.op is LogicalOp.OR
        branches = to_disjunctive_branches(query.where)
        assert len(branches) == 2

    def test_parentheses_override_precedence(self):
        query = parse_query("SELECT COUNT(*) FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        assert isinstance(query.where, CompoundPredicate)
        assert query.where.op is LogicalOp.AND

    def test_not_predicate(self):
        query = parse_query("SELECT COUNT(*) FROM t WHERE NOT a = 1")
        assert isinstance(query.where, NotPredicate)

    def test_in_predicate(self):
        query = parse_query("SELECT COUNT(*) FROM t WHERE city IN ('NY', 'SF', 'LA')")
        assert isinstance(query.where, InPredicate)
        assert query.where.values == ("NY", "SF", "LA")

    def test_between_predicate(self):
        query = parse_query("SELECT COUNT(*) FROM t WHERE x BETWEEN 5 AND 10")
        assert isinstance(query.where, BetweenPredicate)
        assert (query.where.low, query.where.high) == (5, 10)

    def test_comparison_operators(self):
        for symbol, op in [("<", ComparisonOp.LT), (">=", ComparisonOp.GE), ("!=", ComparisonOp.NE)]:
            query = parse_query(f"SELECT COUNT(*) FROM t WHERE x {symbol} 5")
            assert isinstance(query.where, BinaryPredicate)
            assert query.where.op is op

    def test_qualified_column_reference(self):
        query = parse_query("SELECT COUNT(*) FROM t WHERE t.city = 'NY'")
        assert isinstance(query.where, BinaryPredicate)
        assert query.where.column.table == "t"
        assert query.where.column.name == "city"

    def test_template_columns_union_where_and_group_by(self):
        query = parse_query(
            "SELECT COUNT(*) FROM t WHERE a = 1 AND b = 2 GROUP BY c"
        )
        assert query.template_columns() == {"a", "b", "c"}


class TestAstValidation:
    def test_error_and_time_bound_mutually_exclusive(self):
        with pytest.raises(ParseError):
            # The grammar only allows one bound; a second bound is trailing garbage.
            parse_query(
                "SELECT COUNT(*) FROM t ERROR WITHIN 5% AT CONFIDENCE 95% WITHIN 3 SECONDS"
            )

    def test_invalid_error_bound_values(self):
        from repro.sql.ast import ErrorBound

        with pytest.raises(ValueError):
            ErrorBound(error=-0.1)
        with pytest.raises(ValueError):
            ErrorBound(error=0.1, confidence=1.5)

    def test_invalid_time_bound(self):
        from repro.sql.ast import TimeBound

        with pytest.raises(ValueError):
            TimeBound(seconds=0)


class TestContextualKeywords:
    """Keyword-like words are ordinary identifiers in column/table positions."""

    def test_keyword_as_aggregate_column(self):
        query = parse_query("SELECT SUM(in) FROM a")
        assert query.aggregates[0].column.name == "in"

    def test_keyword_spelling_is_preserved(self):
        query = parse_query("SELECT SUM(At) FROM a")
        assert query.aggregates[0].column.name == "At"

    def test_keyword_as_table_name(self):
        query = parse_query("SELECT COUNT(*) FROM group")
        assert query.table == "group"

    def test_keywords_in_where_and_group_by(self):
        query = parse_query(
            "SELECT COUNT(*) FROM t WHERE at >= 1 AND on = 'x' GROUP BY by"
        )
        assert query.where_columns() == {"at", "on"}
        assert query.group_by_columns() == {"by"}

    def test_keyword_column_followed_by_bound(self):
        query = parse_query("SELECT AVG(seconds) FROM t GROUP BY error WITHIN 3 SECONDS")
        assert query.group_by_columns() == {"error"}
        assert query.time_bound is not None and query.time_bound.seconds == 3.0

    def test_keyword_column_in_in_predicate(self):
        query = parse_query("SELECT COUNT(*) FROM t WHERE in IN (1, 2)")
        assert query.where_columns() == {"in"}

    def test_projected_keyword_column(self):
        query = parse_query("SELECT within, COUNT(*) FROM t GROUP BY within")
        assert query.group_by_columns() == {"within"}
