"""Unit tests for the query service layer: scheduler, cache, metrics, sessions."""

from __future__ import annotations

import pytest

from repro.common.config import BlinkDBConfig, ClusterConfig, SamplingConfig
from repro.common.errors import QueryRejectedError
from repro.core.blinkdb import BlinkDB
from repro.engine.result import QueryResult
from repro.service.cache import ResultCache, cache_key, template_label
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.scheduler import Admission, DeadlineScheduler
from repro.service.session import SessionDefaults
from repro.sql.parser import parse_query
from repro.workloads.conviva import conviva_query_templates


# -- scheduler ------------------------------------------------------------------------


class TestDeadlineScheduler:
    def test_earliest_deadline_pops_first(self):
        scheduler = DeadlineScheduler(num_workers=1)
        scheduler.try_admit("loose", predicted_seconds=0.1, time_bound_seconds=50.0)
        scheduler.try_admit("tight", predicted_seconds=0.1, time_bound_seconds=1.0)
        scheduler.try_admit("medium", predicted_seconds=0.1, time_bound_seconds=10.0)
        order = [scheduler.pop(timeout=1).payload for _ in range(3)]
        assert order == ["tight", "medium", "loose"]

    def test_unbounded_queries_drain_after_bounded_ones(self):
        scheduler = DeadlineScheduler(num_workers=1)
        scheduler.try_admit("unbounded-1", predicted_seconds=0.1)
        scheduler.try_admit("bounded", predicted_seconds=0.1, time_bound_seconds=5.0)
        scheduler.try_admit("unbounded-2", predicted_seconds=0.1)
        order = [scheduler.pop(timeout=1).payload for _ in range(3)]
        # Bounded first; unbounded keep FIFO order among themselves.
        assert order == ["bounded", "unbounded-1", "unbounded-2"]

    def test_sheds_when_predicted_completion_misses_deadline(self):
        scheduler = DeadlineScheduler(num_workers=1)
        # 10 simulated seconds of backlog ahead of the new arrival.
        for _ in range(5):
            admission, _ = scheduler.try_admit("bulk", predicted_seconds=2.0)
            assert admission is Admission.ADMITTED
        admission, item = scheduler.try_admit(
            "tight", predicted_seconds=1.0, time_bound_seconds=3.0
        )
        assert admission is Admission.SHED_DEADLINE
        assert item is None
        # A generous deadline is still admitted over the same backlog.
        admission, _ = scheduler.try_admit(
            "loose", predicted_seconds=1.0, time_bound_seconds=60.0
        )
        assert admission is Admission.ADMITTED

    def test_more_workers_admit_more_deadline_work(self):
        # The same backlog sheds on 1 worker but admits on 4.
        for workers, expected in ((1, Admission.SHED_DEADLINE), (4, Admission.ADMITTED)):
            scheduler = DeadlineScheduler(num_workers=workers)
            for _ in range(4):
                scheduler.try_admit("bulk", predicted_seconds=2.0)
            admission, _ = scheduler.try_admit(
                "bounded", predicted_seconds=1.0, time_bound_seconds=4.0
            )
            assert admission is expected

    def test_sheds_when_queue_is_full(self):
        scheduler = DeadlineScheduler(num_workers=1, max_queue_depth=2)
        assert scheduler.try_admit("a", 0.1)[0] is Admission.ADMITTED
        assert scheduler.try_admit("b", 0.1)[0] is Admission.ADMITTED
        assert scheduler.try_admit("c", 0.1)[0] is Admission.SHED_QUEUE_FULL

    def test_backlog_and_virtual_clock_track_dispatch(self):
        scheduler = DeadlineScheduler(num_workers=2)
        scheduler.try_admit("a", predicted_seconds=4.0)
        scheduler.try_admit("b", predicted_seconds=2.0)
        assert scheduler.predicted_backlog_seconds() == pytest.approx(6.0)
        scheduler.pop(timeout=1)
        # Each dispatched item advances the virtual clock by predicted/workers.
        assert scheduler.predicted_backlog_seconds() == pytest.approx(2.0)
        assert scheduler.virtual_now() == pytest.approx(2.0)

    def test_in_flight_work_counts_against_admission(self):
        scheduler = DeadlineScheduler(num_workers=1)
        scheduler.try_admit("long", predicted_seconds=100.0)
        item = scheduler.pop(timeout=1)
        # Queue is empty but the popped item is still running: a 1-second
        # deadline is hopeless behind 100s of in-flight work.
        assert scheduler.depth() == 0
        assert scheduler.in_flight_seconds() == pytest.approx(100.0)
        admission, _ = scheduler.try_admit("tight", 0.5, time_bound_seconds=1.0)
        assert admission is Admission.SHED_DEADLINE
        scheduler.task_done(item)
        assert scheduler.in_flight_seconds() == 0.0
        admission, _ = scheduler.try_admit("tight", 0.5, time_bound_seconds=1.0)
        assert admission is Admission.ADMITTED

    def test_pop_drains_then_returns_none_after_close(self):
        scheduler = DeadlineScheduler(num_workers=1)
        scheduler.try_admit("a", 0.1)
        scheduler.close()
        assert scheduler.pop(timeout=1).payload == "a"
        assert scheduler.pop(timeout=0.05) is None

    def test_pop_timeout_on_empty_queue(self):
        scheduler = DeadlineScheduler(num_workers=1)
        assert scheduler.pop(timeout=0.02) is None


# -- cache ----------------------------------------------------------------------------


def _result(sample: str = "s", rows: int = 1) -> QueryResult:
    return QueryResult(group_by=(), groups=(), rows_read=rows, sample_name=sample)


class TestCacheKey:
    def test_whitespace_and_keyword_case_do_not_matter(self):
        a = parse_query("SELECT COUNT(*) FROM t WHERE a = 1 GROUP BY b")
        b = parse_query("select   COUNT(*)  from t  where a = 1  group by b")
        assert cache_key(a) == cache_key(b)

    def test_commutative_predicates_share_a_key(self):
        a = parse_query("SELECT COUNT(*) FROM t WHERE a = 1 AND b = 2")
        b = parse_query("SELECT COUNT(*) FROM t WHERE b = 2 AND a = 1")
        assert cache_key(a) == cache_key(b)

    def test_different_constants_get_different_keys(self):
        a = parse_query("SELECT COUNT(*) FROM t WHERE a = 1")
        b = parse_query("SELECT COUNT(*) FROM t WHERE a = 2")
        assert cache_key(a) != cache_key(b)

    def test_bounds_distinguish_keys(self):
        plain = parse_query("SELECT COUNT(*) FROM t WHERE a = 1")
        error = parse_query("SELECT COUNT(*) FROM t WHERE a = 1 ERROR WITHIN 10% AT CONFIDENCE 95%")
        time_b = parse_query("SELECT COUNT(*) FROM t WHERE a = 1 WITHIN 5 SECONDS")
        keys = {cache_key(plain), cache_key(error), cache_key(time_b)}
        assert len(keys) == 3

    def test_template_label_uses_phi_columns(self):
        query = parse_query("SELECT COUNT(*) FROM sessions WHERE city = 'x' GROUP BY os")
        assert template_label(query) == "sessions[city,os]"


class TestResultCache:
    def test_put_get_roundtrip_and_hit_counting(self):
        cache = ResultCache()
        cache.put("k", _result(), table="t")
        assert cache.get("k").sample_name == "s"
        assert cache.stats.hits == 1
        assert cache.get("missing") is None
        assert cache.stats.misses == 1

    def test_invalidate_drops_everything_and_bumps_generation(self):
        cache = ResultCache()
        cache.put("k", _result(), table="t")
        generation = cache.generation
        assert cache.invalidate("rebuild") == 1
        assert cache.generation == generation + 1
        assert cache.get("k") is None

    def test_put_refuses_results_from_an_old_generation(self):
        cache = ResultCache()
        old_generation = cache.generation
        cache.invalidate("rebuild")
        assert cache.put("k", _result(), table="t", generation=old_generation) is False
        assert cache.get("k") is None
        assert cache.put("k", _result(), table="t", generation=cache.generation) is True

    def test_invalidate_table_is_scoped(self):
        cache = ResultCache()
        cache.put("k1", _result(), table="a")
        cache.put("k2", _result(), table="b")
        dropped = cache.invalidate_table("a")
        assert dropped == 1
        # Other tables' answers keep serving; the invalidated table is gone
        # and its in-flight inserts are fenced by the per-table generation.
        assert cache.get("k2") is not None
        assert cache.get("k1") is None
        stale_generation = cache.generation_for("a") - 1
        assert cache.put("k1", _result(), table="a", generation=stale_generation) is False

    def test_lru_eviction(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", _result(), table="t")
        cache.put("b", _result(), table="t")
        assert cache.get("a") is not None  # refresh a; b becomes LRU
        cache.put("c", _result(), table="t")
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.stats.evictions == 1


# -- metrics --------------------------------------------------------------------------


class TestMetrics:
    def test_histogram_percentiles_are_exact_over_window(self):
        histogram = LatencyHistogram()
        for value in range(1, 101):
            histogram.observe(value / 100.0)
        assert histogram.percentile(0.50) == pytest.approx(0.50, abs=0.02)
        assert histogram.percentile(0.95) == pytest.approx(0.95, abs=0.02)
        assert histogram.count == 100
        summary = histogram.summary()
        assert summary["max_s"] == pytest.approx(1.0)
        assert summary["count"] == 100

    def test_service_metrics_describe_shape(self):
        metrics = ServiceMetrics()
        metrics.submitted.increment()
        metrics.cache_hits.increment()
        metrics.record_template("t[a]", cache_hit=True)
        snapshot = metrics.describe()
        assert snapshot["queries"]["submitted"] == 1
        assert snapshot["cache"]["hits"] == 1
        assert snapshot["templates"]["t[a]"]["cache_hits"] == 1


# -- session defaults -----------------------------------------------------------------


class TestSessionDefaults:
    def test_error_default_applied_to_unbounded_query(self):
        defaults = SessionDefaults(error_percent=10.0, confidence=0.9)
        query = defaults.apply(parse_query("SELECT COUNT(*) FROM t GROUP BY a"))
        assert query.error_bound is not None
        assert query.error_bound.error == pytest.approx(0.10)
        assert query.error_bound.confidence == pytest.approx(0.9)

    def test_time_default_applied(self):
        defaults = SessionDefaults(time_bound_seconds=5.0)
        query = defaults.apply(parse_query("SELECT COUNT(*) FROM t GROUP BY a"))
        assert query.time_bound is not None
        assert query.time_bound.seconds == 5.0

    def test_explicit_bound_wins_over_defaults(self):
        defaults = SessionDefaults(time_bound_seconds=5.0)
        query = defaults.apply(parse_query("SELECT COUNT(*) FROM t WITHIN 2 SECONDS"))
        assert query.time_bound.seconds == 2.0

    def test_conflicting_defaults_rejected(self):
        with pytest.raises(ValueError):
            SessionDefaults(error_percent=10.0, time_bound_seconds=5.0)


# -- service over a real BlinkDB instance ---------------------------------------------


@pytest.fixture(scope="module")
def service_db(sessions_table):
    config = BlinkDBConfig(
        sampling=SamplingConfig(largest_cap=80, min_cap=10, uniform_sample_fraction=0.1),
        cluster=ClusterConfig(num_nodes=20),
    )
    db = BlinkDB(config)
    db.load_table(sessions_table, simulated_rows=20_000_000)
    db.register_workload(templates=conviva_query_templates())
    db.build_samples(storage_budget_fraction=0.5)
    return db


REPEATED_SQL = "SELECT COUNT(*) FROM sessions WHERE city = 'city_0003' GROUP BY os"


class TestQueryService:
    def test_repeated_template_served_from_cache(self, service_db):
        with service_db.serve(num_workers=2) as service:
            session = service.connect(name="analyst")
            first = session.execute(REPEATED_SQL)
            second = session.execute(REPEATED_SQL)
            assert second is first  # the very same cached result object
            assert service.metrics.cache_hits.value == 1
            assert service.metrics.cache_misses.value == 1
            tickets = session.history()
            assert tickets[0].cache_hit is False
            assert tickets[1].cache_hit is True

    def test_build_samples_invalidates_cache(self, service_db):
        with service_db.serve(num_workers=2) as service:
            session = service.connect()
            session.execute(REPEATED_SQL)
            misses_before = service.metrics.cache_misses.value
            service_db.build_samples(storage_budget_fraction=0.5)
            assert service.metrics.cache_invalidations.value >= 1
            session.execute(REPEATED_SQL)
            # Served by re-execution, not from the (now stale) cache.
            assert service.metrics.cache_misses.value == misses_before + 1

    def test_replan_samples_invalidates_cache(self, service_db):
        with service_db.serve(num_workers=2) as service:
            session = service.connect()
            session.execute(REPEATED_SQL)
            misses_before = service.metrics.cache_misses.value
            service_db.replan_samples("sessions")
            assert service.metrics.cache_invalidations.value >= 1
            session.execute(REPEATED_SQL)
            assert service.metrics.cache_misses.value == misses_before + 1

    def test_deadline_shedding_under_backlog(self, service_db):
        service = service_db.serve(
            num_workers=1,
            autostart=False,
            cache=False,
            default_predicted_seconds=2.0,
            deadline_slack=0.0,
        )
        try:
            for _ in range(5):
                ticket = service.submit("SELECT COUNT(*) FROM sessions GROUP BY os")
                assert ticket.metrics.admission == "admitted"
            shed = service.submit(f"{REPEATED_SQL} WITHIN 1 SECONDS")
            assert shed.done()
            assert shed.status == "shed"
            with pytest.raises(QueryRejectedError):
                shed.result(timeout=0)
            assert service.metrics.shed_deadline.value == 1
            service.start()
        finally:
            service.close()
        assert service.metrics.completed.value == 5

    def test_ticket_metrics_and_describe(self, service_db):
        with service_db.serve(num_workers=2) as service:
            session = service.connect(name="bob", time_bound_seconds=30.0)
            ticket = session.submit(REPEATED_SQL)
            result = ticket.result(timeout=30)
            assert result.sample_name is not None
            metrics = ticket.metrics
            assert metrics.queue_wait_seconds is not None and metrics.queue_wait_seconds >= 0
            assert metrics.service_seconds is not None and metrics.service_seconds > 0
            assert metrics.sample_name == result.sample_name
            assert metrics.simulated_latency_seconds is not None
            assert metrics.predicted_latency_seconds is not None
            snapshot = service.describe()
            assert snapshot["metrics"]["queries"]["completed"] >= 1
            assert "scheduler" in snapshot and "cache" in snapshot
            assert session.describe()["queries"] == 1

    def test_connect_on_facade_uses_default_service(self, service_db):
        session = service_db.connect(name="facade-session", error_percent=20.0)
        try:
            result = session.execute(REPEATED_SQL)
            assert len(result) > 0
            assert session.defaults.error_percent == 20.0
        finally:
            session.service.close()
