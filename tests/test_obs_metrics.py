"""MetricsRegistry and ServiceMetrics tests, including concurrency hammers.

The registry's contract: get-or-create races resolve to one instrument,
conflicting re-registration raises, keyed collectors replace instead of
accumulate, and both exposition formats stay consistent while writer
threads are mid-increment.  The service-layer histogram's windowed ``max_s``
fix is pinned here too: a lifetime spike older than the window must not
keep dominating the windowed summary.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs.registry import (
    LabeledCounter,
    LabeledGauge,
    LabeledHistogram,
    MetricsRegistry,
    SummaryWindow,
)
from repro.service.metrics import LatencyHistogram, ServiceMetrics


class TestInstruments:
    def test_counter_inc_and_value_per_label_set(self):
        counter = LabeledCounter("queries_total", labelnames=("mode",))
        counter.inc(mode="approximate")
        counter.inc(2, mode="approximate")
        counter.inc(mode="exact")
        assert counter.value(mode="approximate") == 3
        assert counter.value(mode="exact") == 1

    def test_counter_rejects_negative_increment(self):
        counter = LabeledCounter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labels_must_match_labelnames(self):
        gauge = LabeledGauge("g", labelnames=("table",))
        with pytest.raises(ValueError):
            gauge.set(1.0, wrong="x")
        with pytest.raises(ValueError):
            gauge.set(1.0)

    def test_gauge_set_overwrites(self):
        gauge = LabeledGauge("depth")
        gauge.set(4.0)
        gauge.set(2.0)
        assert gauge.value() == 2.0

    def test_histogram_summary_shape(self):
        histogram = LabeledHistogram("latency", labelnames=("stage",))
        for value in (0.1, 0.2, 0.3):
            histogram.observe(value, stage="execute")
        ((key, summary),) = histogram.summaries()
        assert dict(key) == {"stage": "execute"}
        assert summary["count"] == 3
        assert summary["max_s"] == pytest.approx(0.3)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("hits", labelnames=("table",))
        second = registry.counter("hits", labelnames=("table",))
        assert first is second

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("hits")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("hits")

    def test_labelnames_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("hits", labelnames=("table",))
        with pytest.raises(ValueError, match="labels"):
            registry.counter("hits", labelnames=("mode",))

    def test_describe_includes_series_and_values(self):
        registry = MetricsRegistry()
        registry.counter("hits", "cache hits", ("table",)).inc(table="sessions")
        registry.gauge("depth").set(3.0)
        described = registry.describe()
        assert described["hits"]["series"] == [
            {"labels": {"table": "sessions"}, "value": 1.0}
        ]
        assert described["depth"]["value"] == 3.0

    def test_prometheus_text_format(self):
        registry = MetricsRegistry(namespace="blinkdb")
        registry.counter("queries_total", "Total queries", ("mode",)).inc(mode="exact")
        text = registry.render_text()
        assert "# HELP blinkdb_queries_total Total queries" in text
        assert "# TYPE blinkdb_queries_total counter" in text
        assert 'blinkdb_queries_total{mode="exact"} 1' in text
        assert text.endswith("\n")

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.gauge("g", labelnames=("name",)).set(1.0, name='quo"te\nline')
        text = registry.render_text()
        assert r'name="quo\"te\nline"' in text

    def test_labeled_instrument_with_no_children_renders_no_samples(self):
        registry = MetricsRegistry(namespace="ns")
        registry.gauge("empty_labeled", "x", ("table",))
        registry.gauge("empty_unlabeled", "y")
        text = registry.render_text()
        assert "ns_empty_labeled{" not in text
        assert "\nns_empty_labeled " not in text  # no bogus unlabeled sample
        assert "ns_empty_unlabeled 0.0" in text

    def test_histogram_renders_summary_quantiles(self):
        registry = MetricsRegistry(namespace="ns")
        registry.histogram("lat", labelnames=("stage",)).observe(0.25, stage="run")
        text = registry.render_text()
        assert '# TYPE ns_lat summary' in text
        assert 'ns_lat{stage="run",quantile="0.5"} 0.25' in text
        assert 'ns_lat_count{stage="run"} 1' in text

    def test_collector_key_replaces_previous_registration(self):
        registry = MetricsRegistry()
        calls = []
        registry.register_collector(lambda: calls.append("old"), key="source")
        registry.register_collector(lambda: calls.append("new"), key="source")
        registry.collect()
        assert calls == ["new"]

    def test_collector_errors_do_not_break_exposition(self):
        registry = MetricsRegistry()

        def broken() -> None:
            raise RuntimeError("source went away")

        registry.register_collector(broken, key="dead")
        registry.gauge("alive").set(1.0)
        assert registry.describe()["alive"]["value"] == 1.0
        assert "alive" in registry.render_text()


class TestWindowedMax:
    def test_latency_histogram_max_is_windowed(self):
        histogram = LatencyHistogram(window=4)
        histogram.observe(100.0)  # the one lifetime spike
        for _ in range(4):
            histogram.observe(0.5)  # pushes the spike out of the window
        summary = histogram.summary()
        assert summary["max_s"] == pytest.approx(0.5)
        assert summary["max_lifetime_s"] == pytest.approx(100.0)
        assert summary["count"] == 5  # count stays lifetime

    def test_summary_window_matches_service_histogram_shape(self):
        service = LatencyHistogram(window=8)
        obs = SummaryWindow(window=8)
        for value in (0.1, 0.9, 0.4):
            service.observe(value)
            obs.observe(value)
        assert set(service.summary()) == set(obs.summary())
        assert obs.summary()["max_s"] == pytest.approx(0.9)

    def test_empty_summary_is_all_zero(self):
        summary = LatencyHistogram().summary()
        assert summary["max_s"] == 0.0
        assert summary["max_lifetime_s"] == 0.0


class TestConcurrency:
    def test_registry_parallel_observe_and_describe(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops", labelnames=("kind",))
        histogram = registry.histogram("lat", labelnames=("kind",), window=64)
        registry.register_collector(
            lambda: registry.gauge("pulled").set(1.0), key="pull"
        )
        errors: list[BaseException] = []
        stop = threading.Event()

        def writer(kind: str) -> None:
            try:
                for i in range(500):
                    counter.inc(kind=kind)
                    histogram.observe(i / 1000.0, kind=kind)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        def reader() -> None:
            try:
                while not stop.is_set():
                    registry.describe()
                    registry.render_text()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        writers = [
            threading.Thread(target=writer, args=(kind,))
            for kind in ("a", "b", "c", "d")
        ]
        readers = [threading.Thread(target=reader) for _ in range(2)]
        for thread in writers + readers:
            thread.start()
        for thread in writers:
            thread.join()
        stop.set()
        for thread in readers:
            thread.join()
        assert not errors
        for kind in ("a", "b", "c", "d"):
            assert counter.value(kind=kind) == 500

    def test_registry_parallel_get_or_create_is_single_instrument(self):
        registry = MetricsRegistry()
        found: list[object] = []
        barrier = threading.Barrier(8)

        def create() -> None:
            barrier.wait()
            found.append(registry.counter("racy", labelnames=("x",)))

        threads = [threading.Thread(target=create) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({id(instrument) for instrument in found}) == 1

    def test_service_metrics_parallel_observe_and_describe(self):
        metrics = ServiceMetrics()
        errors: list[BaseException] = []
        stop = threading.Event()

        def writer() -> None:
            try:
                for i in range(400):
                    metrics.submitted.increment()
                    metrics.completed.increment()
                    metrics.queue_wait.observe(i / 1000.0)
                    metrics.service_time.observe(i / 2000.0)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        def reader() -> None:
            try:
                while not stop.is_set():
                    metrics.describe()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        writers = [threading.Thread(target=writer) for _ in range(4)]
        readers = [threading.Thread(target=reader) for _ in range(2)]
        for thread in writers + readers:
            thread.start()
        for thread in writers:
            thread.join()
        stop.set()
        for thread in readers:
            thread.join()
        assert not errors
        assert metrics.submitted.value == 1600
        assert metrics.queue_wait.count == 1600
