"""Tests for the weighted estimators and uncertainty propagation."""

import math

import numpy as np
import pytest

from repro.estimation.estimators import (
    estimate_aggregate,
    estimate_avg,
    estimate_count,
    estimate_quantile,
    estimate_stddev,
    estimate_sum,
    estimate_variance,
)
from repro.estimation.propagation import combine_sum, difference, scale, weighted_average


@pytest.fixture()
def skewed_values(rng):
    return rng.lognormal(3.0, 1.0, size=2_000)


class TestCount:
    def test_uniform_weights_estimate(self):
        weights = np.full(40, 25.0)  # a 4% sample with 40 matching rows
        estimate = estimate_count(weights, rows_read=1000, population_read=25_000)
        assert estimate.value == pytest.approx(1000.0)
        assert estimate.variance > 0
        assert estimate.sample_rows == 40

    def test_exact_flag_zeroes_variance(self):
        estimate = estimate_count(np.ones(10), rows_read=10, exact=True)
        assert estimate.value == 10
        assert estimate.variance == 0.0
        assert estimate.interval().half_width == 0.0

    def test_zero_matching_rows(self):
        estimate = estimate_count(np.zeros(0), rows_read=100, population_read=1000)
        assert estimate.value == 0.0
        assert estimate.variance > 0

    def test_heterogeneous_weights_use_ht_variance(self):
        weights = np.array([1.0, 1.0, 10.0, 10.0, 10.0])
        estimate = estimate_count(weights, rows_read=100, population_read=500)
        assert estimate.value == pytest.approx(32.0)
        assert estimate.variance > 0


class TestSumAvg:
    def test_sum_scales_by_weights(self):
        values = np.array([2.0, 4.0, 6.0])
        estimate = estimate_sum(values, np.full(3, 10.0), rows_read=30, population_read=300)
        assert estimate.value == pytest.approx(120.0)

    def test_avg_weighted_mean(self):
        values = np.array([1.0, 3.0])
        weights = np.array([3.0, 1.0])
        estimate = estimate_avg(values, weights, rows_read=10)
        assert estimate.value == pytest.approx(1.5)

    def test_avg_uniform_weights_variance_matches_table2(self):
        values = np.arange(1, 101, dtype=float)
        estimate = estimate_avg(values, np.full(100, 5.0), rows_read=500)
        assert estimate.variance == pytest.approx(values.var(ddof=1) / 100, rel=1e-6)

    def test_avg_of_empty_is_nan(self):
        estimate = estimate_avg(np.zeros(0), None, rows_read=10)
        assert math.isnan(estimate.value)

    def test_single_row_avg_has_unbounded_error(self):
        estimate = estimate_avg(np.array([5.0]), np.array([2.0]), rows_read=10)
        assert math.isinf(estimate.variance)

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            estimate_avg(np.array([1.0]), np.array([-2.0]), rows_read=10)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            estimate_sum(np.array([1.0, 2.0]), np.array([1.0]), rows_read=10)


class TestUnbiasedness:
    """Repeated weighted estimates should centre on the true population value."""

    def test_stratified_count_is_unbiased(self, rng):
        # Population: one huge stratum (9000 rows) and one small (1000 rows).
        cap = 200
        estimates = []
        for _ in range(150):
            big_rows = rng.choice(9000, cap, replace=False)
            weights = np.concatenate([np.full(cap, 9000 / cap), np.ones(1000)])
            del big_rows
            estimates.append(estimate_count(weights, rows_read=cap + 1000).value)
        assert np.mean(estimates) == pytest.approx(10_000, rel=1e-9)

    def test_uniform_avg_is_unbiased(self, rng, skewed_values):
        true_mean = skewed_values.mean()
        n = 200
        estimates = []
        for _ in range(200):
            sample = rng.choice(skewed_values, n, replace=False)
            estimates.append(estimate_avg(sample, np.full(n, 10.0), rows_read=n).value)
        assert np.mean(estimates) == pytest.approx(true_mean, rel=0.05)

    def test_avg_confidence_interval_coverage(self, rng, skewed_values):
        true_mean = skewed_values.mean()
        n = 300
        covered = 0
        trials = 200
        for _ in range(trials):
            sample = rng.choice(skewed_values, n, replace=False)
            interval = estimate_avg(sample, None, rows_read=n).interval(0.95)
            covered += interval.contains(true_mean)
        assert covered / trials >= 0.85  # should be ~0.95; allow slack for skew


class TestQuantile:
    def test_median_of_uniform_values(self, rng):
        values = rng.random(5_001)
        estimate = estimate_quantile(values, None, 0.5, rows_read=5_001)
        assert estimate.value == pytest.approx(0.5, abs=0.03)
        assert 0 < estimate.variance < 0.01

    def test_quantile_invalid_p(self):
        with pytest.raises(ValueError):
            estimate_quantile(np.array([1.0]), None, 1.5, rows_read=1)

    def test_weighted_quantile_shifts_with_weights(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        heavy_tail = np.array([1.0, 1.0, 1.0, 10.0])
        unweighted = estimate_quantile(values, None, 0.5, rows_read=4).value
        weighted = estimate_quantile(values, heavy_tail, 0.5, rows_read=4).value
        assert weighted > unweighted

    def test_degenerate_distribution_has_zero_variance(self):
        values = np.full(100, 7.0)
        estimate = estimate_quantile(values, None, 0.5, rows_read=100)
        assert estimate.value == 7.0
        assert estimate.variance == 0.0


class TestStddevVariance:
    def test_stddev_estimate(self, rng):
        values = rng.normal(0, 3.0, size=4_000)
        estimate = estimate_stddev(values, None, rows_read=4_000)
        assert estimate.value == pytest.approx(3.0, rel=0.05)

    def test_variance_estimate(self, rng):
        values = rng.normal(0, 2.0, size=4_000)
        estimate = estimate_variance(values, None, rows_read=4_000)
        assert estimate.value == pytest.approx(4.0, rel=0.1)

    def test_too_few_rows(self):
        assert math.isnan(estimate_variance(np.array([1.0]), None, rows_read=1).value)


class TestDispatch:
    def test_estimate_aggregate_dispatch(self):
        values = np.array([1.0, 2.0, 3.0])
        assert estimate_aggregate("avg", values, None, 3).value == pytest.approx(2.0)
        assert estimate_aggregate("sum", values, None, 3).value == pytest.approx(6.0)
        assert estimate_aggregate("count", None, np.ones(3), 3).value == 3.0
        assert estimate_aggregate("quantile", values, None, 3, quantile=0.5).value == pytest.approx(2.0)

    def test_unknown_function_rejected(self):
        with pytest.raises(ValueError):
            estimate_aggregate("mode", np.array([1.0]), None, 1)

    def test_missing_values_rejected(self):
        with pytest.raises(ValueError):
            estimate_aggregate("sum", None, None, 1)


class TestPropagation:
    def test_combine_sum_adds_values_and_variances(self):
        a = estimate_count(np.full(10, 2.0), rows_read=20, population_read=40)
        b = estimate_count(np.full(5, 2.0), rows_read=20, population_read=40)
        combined = combine_sum([a, b])
        assert combined.value == pytest.approx(a.value + b.value)
        assert combined.variance == pytest.approx(a.variance + b.variance)

    def test_combine_sum_requires_estimates(self):
        with pytest.raises(ValueError):
            combine_sum([])

    def test_scale(self):
        a = estimate_count(np.full(10, 2.0), rows_read=20, population_read=40)
        scaled = scale(a, 3.0)
        assert scaled.value == pytest.approx(3 * a.value)
        assert scaled.variance == pytest.approx(9 * a.variance)

    def test_difference(self):
        a = estimate_count(np.full(10, 2.0), rows_read=40, population_read=80)
        b = estimate_count(np.full(4, 2.0), rows_read=40, population_read=80)
        diff = difference(a, b)
        assert diff.value == pytest.approx(a.value - b.value)
        assert diff.variance == pytest.approx(a.variance + b.variance)

    def test_weighted_average(self):
        a = estimate_avg(np.array([1.0, 1.0, 1.0]), None, rows_read=3)
        b = estimate_avg(np.array([3.0, 3.0, 3.0]), None, rows_read=3)
        combined = weighted_average([a, b], [1.0, 3.0])
        assert combined.value == pytest.approx(2.5)

    def test_weighted_average_validation(self):
        a = estimate_avg(np.array([1.0, 2.0]), None, rows_read=2)
        with pytest.raises(ValueError):
            weighted_average([a], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_average([a], [0.0])

    def test_exact_estimates_stay_exact(self):
        a = estimate_count(np.ones(5), rows_read=5, exact=True)
        b = estimate_count(np.ones(3), rows_read=3, exact=True)
        assert combine_sum([a, b]).exact
        assert scale(a, 2.0).exact
