"""Tests for the partition-parallel pipeline and the runtime's anytime path."""

import numpy as np
import pytest

from repro.common.config import BlinkDBConfig, ClusterConfig, SamplingConfig
from repro.core.blinkdb import BlinkDB
from repro.engine.executor import ExecutionContext, QueryExecutor
from repro.runtime.partitioned import PartitionPipeline
from repro.sql.parser import parse_query
from repro.storage.table import Table
from repro.workloads.conviva import conviva_query_templates, generate_sessions_table


@pytest.fixture(scope="module")
def pipeline_inputs():
    rng = np.random.default_rng(17)
    rows = 8_000
    table = Table.from_dict(
        "t",
        {
            "g": [f"g{i}" for i in rng.integers(0, 4, rows)],
            "x": rng.normal(30.0, 6.0, rows).tolist(),
        },
    )
    weights = rng.uniform(1.0, 10.0, rows)
    context = ExecutionContext(weights=weights, rows_read=rows)
    return table, weights, context


@pytest.fixture(scope="module")
def anytime_db():
    table = generate_sessions_table(num_rows=30_000, seed=7, num_cities=40)
    config = BlinkDBConfig(
        sampling=SamplingConfig(largest_cap=400, min_cap=25, uniform_sample_fraction=0.08),
        cluster=ClusterConfig(num_nodes=20),
    )
    db = BlinkDB(config)
    db.load_table(table, simulated_rows=2_000_000_000)
    db.register_workload(templates=conviva_query_templates())
    db.build_samples(storage_budget_fraction=0.5)
    return db


class TestPartitionPipeline:
    def test_full_merge_matches_plain_execution(self, pipeline_inputs):
        table, weights, context = pipeline_inputs
        executor = QueryExecutor()
        pipeline = PartitionPipeline(executor)
        query = parse_query("SELECT COUNT(*), AVG(x) FROM t GROUP BY g")
        plain = executor.execute(query, table, context)
        piped = pipeline.run(
            query, table, context, num_partitions=8, sim_workers=4,
            scan_latency_seconds=10.0, task_overhead_seconds=0.3,
        )
        stats = piped.metadata["partitions"]
        assert stats.complete and stats.merged_partitions == 8
        for g_plain, g_piped in zip(plain, piped):
            for name in g_plain.aggregates:
                assert g_piped[name].value == pytest.approx(g_plain[name].value, rel=1e-9)
                assert g_piped[name].error_bar == pytest.approx(
                    g_plain[name].error_bar, rel=1e-6
                )

    def test_more_sim_workers_shrink_makespan(self, pipeline_inputs):
        table, _, context = pipeline_inputs
        pipeline = PartitionPipeline(QueryExecutor())
        query = parse_query("SELECT SUM(x) FROM t")
        makespans = {}
        for workers in (1, 2, 4):
            result = pipeline.run(
                query, table, context, num_partitions=16, sim_workers=workers,
                reference_workers=1, scan_latency_seconds=8.0,
                task_overhead_seconds=0.05,
            )
            makespans[workers] = result.metadata["partitions"].makespan_seconds
        assert makespans[2] < makespans[1]
        assert makespans[4] < makespans[2]
        assert makespans[1] / makespans[4] > 1.5

    def test_straggler_jitter_makes_slowest_wave_dominate(self, pipeline_inputs):
        table, _, context = pipeline_inputs
        pipeline = PartitionPipeline(QueryExecutor(), straggler_spread=0.5, seed=3)
        query = parse_query("SELECT SUM(x) FROM t")
        result = pipeline.run(
            query, table, context, num_partitions=8, sim_workers=8,
            reference_workers=8, scan_latency_seconds=10.0,
            task_overhead_seconds=0.2,
        )
        stats = result.metadata["partitions"]
        costs = [t.cost_seconds for t in stats.timings]
        assert stats.makespan_seconds == pytest.approx(max(costs))
        assert max(costs) > min(costs)  # jitter applied

    def test_deadline_cuts_coverage_and_widens_bars(self, pipeline_inputs):
        table, _, context = pipeline_inputs
        pipeline = PartitionPipeline(QueryExecutor())
        query = parse_query("SELECT COUNT(*) FROM t WHERE g = 'g1'")
        full = pipeline.run(
            query, table, context, num_partitions=8, sim_workers=2,
            reference_workers=2, scan_latency_seconds=8.0, task_overhead_seconds=0.1,
        )
        cut = pipeline.run(
            query, table, context, num_partitions=8, sim_workers=2,
            reference_workers=2, scan_latency_seconds=8.0, task_overhead_seconds=0.1,
            deadline_seconds=4.0,
        )
        stats = cut.metadata["partitions"]
        assert 0 < stats.merged_partitions < 8
        assert stats.coverage_population_fraction < 1.0
        assert cut.simulated_latency_seconds <= 4.0
        # Unbiased despite the cut, wider uncertainty.
        assert cut.scalar().value == pytest.approx(full.scalar().value, rel=0.15)
        assert cut.scalar().error_bar > full.scalar().error_bar

    def test_impossible_deadline_still_merges_one_partition(self, pipeline_inputs):
        table, _, context = pipeline_inputs
        pipeline = PartitionPipeline(QueryExecutor())
        query = parse_query("SELECT COUNT(*) FROM t")
        result = pipeline.run(
            query, table, context, num_partitions=8, sim_workers=4,
            scan_latency_seconds=8.0, task_overhead_seconds=0.5,
            deadline_seconds=1e-6,
        )
        stats = result.metadata["partitions"]
        assert stats.merged_partitions == 1
        assert result.scalar().value > 0

    def test_deadline_cut_with_skipping_is_not_biased_low(self):
        # Regression: on a sorted table, zone maps skip every partition
        # except the one holding all matches.  A deadline that drops the
        # evaluated partitions must not report a near-zero answer with
        # narrow bars off the (provably match-free) skipped coverage —
        # at least one *evaluated* partition is always merged, and the
        # coverage correction renormalizes over the scannable region only.
        rows = 20_000
        table = Table.from_dict("t", {"x": sorted(range(rows))})
        true_count = sum(1 for v in range(rows) if v > rows - 250)
        query = parse_query(f"SELECT COUNT(*) FROM t WHERE x > {rows - 250}")
        pipeline = PartitionPipeline(
            QueryExecutor(scan_acceleration=True, zone_block_rows=256)
        )
        result = pipeline.run(
            query, table, ExecutionContext(exact=True),
            num_partitions=16, sim_workers=2,
            scan_latency_seconds=8.0, task_overhead_seconds=0.1,
            deadline_seconds=1.0,
        )
        stats = result.metadata["partitions"]
        assert stats.skipped_partitions > 0
        assert any(not t.skipped and t.merged for t in stats.timings)
        # Every match lives in evaluated partitions; the coverage-scaled
        # estimate must be in the right ballpark, not collapsed to ~0.
        assert result.scalar().value >= 0.5 * true_count
        assert stats.rows_skipped == sum(
            t.rows for t in stats.timings if t.skipped
        )

    def test_progress_snapshots_monotone(self, pipeline_inputs):
        table, _, context = pipeline_inputs
        pipeline = PartitionPipeline(QueryExecutor())
        query = parse_query("SELECT AVG(x) FROM t")
        snapshots = []
        result = pipeline.run(
            query, table, context, num_partitions=6, sim_workers=2,
            scan_latency_seconds=5.0, progress=snapshots.append,
        )
        assert len(snapshots) == 6
        fractions = [s.fraction_merged for s in snapshots]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0
        seconds = [s.simulated_seconds for s in snapshots]
        assert seconds == sorted(seconds)
        assert snapshots[-1].result.scalar().value == result.scalar().value


class TestRuntimeAnytime:
    def test_unsatisfiable_time_bound_returns_partial_coverage(self, anytime_db):
        result = anytime_db.query(
            "SELECT COUNT(*) FROM sessions WHERE city = 'city_0001' WITHIN 0.05 SECONDS"
        )
        decision = result.metadata["decision"]
        assert decision.anytime
        assert not decision.bound_satisfied
        assert 0.0 < decision.coverage_fraction < 1.0
        assert decision.partitions > 1
        stats = result.metadata["partitions"]
        assert stats.merged_partitions < stats.num_partitions

    def test_anytime_bars_wider_than_full_answer(self, anytime_db):
        # A broad predicate, so the partitions merged before the deadline
        # contain matching rows (a clustered rare predicate could see none).
        sql = "SELECT COUNT(*) FROM sessions WHERE dt = 5"
        tight = anytime_db.query(sql + " WITHIN 0.05 SECONDS")
        loose = anytime_db.query(sql + " WITHIN 60 SECONDS")
        assert tight.metadata["decision"].anytime
        assert not loose.metadata["decision"].anytime
        assert tight.scalar().error_bar > loose.scalar().error_bar

    def test_satisfiable_bound_keeps_legacy_path(self, anytime_db):
        result = anytime_db.query(
            "SELECT COUNT(*) FROM sessions WHERE city = 'city_0001' WITHIN 60 SECONDS"
        )
        decision = result.metadata["decision"]
        assert decision.bound_satisfied
        assert not decision.anytime
        assert decision.partitions == 1
        assert "partitions" not in result.metadata

    def test_anytime_disabled_restores_old_behaviour(self):
        table = generate_sessions_table(num_rows=10_000, seed=7, num_cities=20)
        config = BlinkDBConfig(
            sampling=SamplingConfig(largest_cap=200, min_cap=25,
                                    uniform_sample_fraction=0.08),
            cluster=ClusterConfig(num_nodes=10),
            anytime_enabled=False,
        )
        db = BlinkDB(config)
        db.load_table(table, simulated_rows=1_000_000_000)
        db.register_workload(templates=conviva_query_templates())
        db.build_samples(storage_budget_fraction=0.5)
        result = db.query("SELECT COUNT(*) FROM sessions WITHIN 0.05 SECONDS")
        decision = result.metadata["decision"]
        assert not decision.anytime
        assert decision.coverage_fraction == 1.0

    def test_close_shuts_down_partition_pool(self, anytime_db):
        runtime = anytime_db.runtime
        pool = runtime._partition_pool()
        assert pool is not None
        runtime.close()
        assert runtime._pool is None
        with pytest.raises(RuntimeError):
            pool.submit(lambda: None)  # the old pool really is shut down
        # Lazily recreated on next use; close is idempotent.
        assert runtime._partition_pool() is not None
        runtime.close()
        runtime.close()

    def test_rebuild_closes_previous_runtime_pool(self, anytime_db):
        runtime = anytime_db.runtime
        pool = runtime._partition_pool()
        anytime_db.build_samples("sessions", storage_budget_fraction=0.5)
        assert anytime_db.runtime is not runtime
        with pytest.raises(RuntimeError):
            pool.submit(lambda: None)

    def test_runtime_stats_count_anytime(self, anytime_db):
        before = anytime_db.runtime.stats["anytime_queries_executed"]
        anytime_db.query("SELECT COUNT(*) FROM sessions WITHIN 0.01 SECONDS")
        assert anytime_db.runtime.stats["anytime_queries_executed"] == before + 1

    def test_execute_partitioned_equivalent_estimates(self, anytime_db):
        sql = "SELECT AVG(session_time) FROM sessions WHERE dt = 5"
        plain = anytime_db.query(sql)
        piped = anytime_db.runtime.execute_partitioned(
            sql, num_partitions=8, sim_workers=4
        )
        assert piped.scalar().value == pytest.approx(plain.scalar().value, rel=1e-9)
        assert piped.metadata["decision"].partitions == 8

    def test_execute_partitioned_worker_sweep_speedup(self, anytime_db):
        sql = "SELECT SUM(session_time) FROM sessions WHERE dt = 5"
        makespans = {}
        for workers in (1, 4):
            result = anytime_db.runtime.execute_partitioned(
                sql, num_partitions=16, sim_workers=workers, reference_workers=1
            )
            makespans[workers] = result.metadata["partitions"].makespan_seconds
        assert makespans[1] / makespans[4] > 1.5
