"""Property tests for the scan-acceleration layer.

For random tables, predicates, and block granularities:

* the accelerated executor (zone maps + compiled kernels + selection
  vectors) returns **bitwise-identical** estimates and error bars to the
  naive mask path on the serial route, and identical-to-merge-rounding
  results through the partition pipeline;
* zone-map classification is **sound**: a SKIP block contains no matching
  row and a TAKE_ALL block contains only matching rows — no false skips.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.executor import ExecutionContext, QueryExecutor
from repro.engine.expressions import evaluate_predicate
from repro.engine.kernels import compile_predicate
from repro.planner.logical import LogicalPlan
from repro.runtime.partitioned import PartitionPipeline
from repro.storage.table import Table
from repro.storage.zonemaps import ZoneDecision

# -- random inputs ------------------------------------------------------------------

_STRINGS = ["s0", "s1", "s2", "s3", "s4", "s5"]

#: Labels for a `Column.from_codes` column — deliberately NOT in sorted
#: order, because such dictionaries carry arbitrary label order and string
#: range predicates must stay correct anyway.
_CODED_LABELS = ["TRUCK", "AIR", "SHIP", "RAIL", "MAIL"]

_ATOMS = [
    "a = {v}".format,
    "a != {v}".format,
    "a < {v}".format,
    "a >= {v}".format,
    "a BETWEEN {v} AND {w}".format,
    "a IN ({v}, {w})".format,
    "x < {v}.5".format,
    "x >= {v}.25".format,
    "g = 's{u}'".format,
    "g != 's{u}'".format,
    "g < 's{u}'".format,
    "g >= 's{u}'".format,
    "g IN ('s{u}', 's9')".format,
    "NOT a < {v}".format,
    "m < 'RAIL'".format,
    "m >= 'MAIL'".format,
    "m BETWEEN 'AIR' AND 'SHIP'".format,
    "m = 'TRUCK'".format,
]


def _render_atom(spec) -> str:
    index, v, w, u = spec
    return _ATOMS[index](v=min(v, w), w=max(v, w), u=u)


atom_strategy = st.tuples(
    st.sampled_from(range(len(_ATOMS))),
    st.integers(min_value=0, max_value=20),
    st.integers(min_value=0, max_value=20),
    st.integers(min_value=0, max_value=9),
)

case_strategy = st.fixed_dictionaries(
    {
        "rows": st.integers(min_value=1, max_value=240),
        "seed": st.integers(min_value=0, max_value=2**16),
        "sort_by": st.sampled_from([None, "a", "g"]),
        "atoms": st.lists(atom_strategy, min_size=1, max_size=3),
        "connector": st.sampled_from([" AND ", " OR "]),
        "aggregate": st.sampled_from(["COUNT(*)", "SUM(x)", "COUNT(*), AVG(x)"]),
        "group_by": st.booleans(),
        "weighted": st.booleans(),
        "block_rows": st.integers(min_value=1, max_value=64),
        "partitions": st.integers(min_value=1, max_value=8),
    }
)


def _build_case(case):
    rng = np.random.default_rng(case["seed"])
    rows = case["rows"]
    table = Table.from_dict(
        "t",
        {
            "a": rng.integers(0, 21, rows).tolist(),
            "x": np.round(rng.normal(10.0, 4.0, rows), 3).tolist(),
            "g": [_STRINGS[i] for i in rng.integers(0, len(_STRINGS), rows)],
        },
    )
    from repro.storage.column import Column

    table = table.with_column(
        Column.from_codes(
            "m",
            rng.integers(0, len(_CODED_LABELS), rows),
            np.array(_CODED_LABELS, dtype=object),
        )
    )
    if case["sort_by"]:
        table = table.sort_by([case["sort_by"]])
    predicate = case["connector"].join(_render_atom(a) for a in case["atoms"])
    sql = f"SELECT {case['aggregate']} FROM t WHERE {predicate}"
    if case["group_by"]:
        sql += " GROUP BY g"
    plan = LogicalPlan.of(sql)
    weights = (
        np.round(rng.uniform(1.0, 5.0, rows), 3) if case["weighted"] else None
    )
    return table, plan, weights


def _values(result):
    return {
        group.key: {
            name: (aggregate.estimate.value, aggregate.error_bar)
            for name, aggregate in group.aggregates.items()
        }
        for group in result.groups
    }


def _assert_bitwise_equal(naive, accelerated):
    assert naive.keys() == accelerated.keys()
    for key, aggregates in naive.items():
        for name, (value, error_bar) in aggregates.items():
            other_value, other_error = accelerated[key][name]
            assert _same_float(value, other_value), (key, name, value, other_value)
            assert _same_float(error_bar, other_error), (key, name, error_bar, other_error)


def _same_float(a: float, b: float) -> bool:
    if math.isnan(a) or math.isnan(b):
        return math.isnan(a) and math.isnan(b)
    return a == b


def _executors(block_rows: int) -> tuple[QueryExecutor, QueryExecutor]:
    naive = QueryExecutor(scan_acceleration=False)
    accelerated = QueryExecutor(scan_acceleration=True, zone_block_rows=block_rows)
    return naive, accelerated


# -- properties ---------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(case=case_strategy)
def test_serial_execution_is_bitwise_identical(case):
    table, plan, weights = _build_case(case)
    context = ExecutionContext(weights=weights, exact=weights is None)
    naive, accelerated = _executors(case["block_rows"])
    result_naive = naive.execute(plan, table, context)
    result_accel = accelerated.execute(plan, table, context)
    assert result_naive.rows_read == result_accel.rows_read
    _assert_bitwise_equal(_values(result_naive), _values(result_accel))


@settings(max_examples=40, deadline=None)
@given(case=case_strategy)
def test_partitioned_execution_matches_naive(case):
    table, plan, weights = _build_case(case)
    context = ExecutionContext(weights=weights, exact=weights is None)
    naive, accelerated = _executors(case["block_rows"])
    kwargs = dict(num_partitions=case["partitions"], sim_workers=2)
    result_naive = PartitionPipeline(naive).run(plan, table, context, **kwargs)
    result_accel = PartitionPipeline(accelerated).run(plan, table, context, **kwargs)

    stats_naive = result_naive.metadata["partitions"]
    stats_accel = result_accel.metadata["partitions"]
    assert stats_naive.complete and stats_accel.complete
    assert stats_naive.num_partitions == stats_accel.num_partitions
    # Skipped partitions count as scanned-for-free coverage.
    assert stats_accel.coverage_row_fraction == pytest.approx(1.0)
    assert stats_accel.coverage_population_fraction == pytest.approx(1.0)

    values_naive = _values(result_naive)
    values_accel = _values(result_accel)
    assert values_naive.keys() == values_accel.keys()
    for key, aggregates in values_naive.items():
        for name, (value, error_bar) in aggregates.items():
            other_value, other_error = values_accel[key][name]
            assert other_value == pytest.approx(value, rel=1e-9, abs=1e-12, nan_ok=True)
            assert other_error == pytest.approx(
                error_bar, rel=1e-9, abs=1e-9, nan_ok=True
            )


@settings(max_examples=60, deadline=None)
@given(case=case_strategy)
def test_zone_classification_is_sound(case):
    table, plan, _ = _build_case(case)
    index = table.zone_map_index(case["block_rows"])
    kernel = compile_predicate(plan.where, table, index)
    mask = evaluate_predicate(plan.where, table)
    for block in index.blocks:
        decision = kernel.classify_block(block.zones)
        window = mask[block.row_start:block.row_end]
        if decision is ZoneDecision.SKIP:
            assert not window.any(), "false skip: a matching row was classified away"
        elif decision is ZoneDecision.TAKE_ALL:
            assert window.all(), "false take-all: a non-matching row was included"


@settings(max_examples=30, deadline=None)
@given(case=case_strategy)
def test_selection_vector_equals_mask_everywhere(case):
    table, plan, _ = _build_case(case)
    kernel = compile_predicate(
        plan.where, table, table.zone_map_index(case["block_rows"])
    )
    selection = kernel.select_range(table, 0, table.num_rows)
    expected = np.flatnonzero(evaluate_predicate(plan.where, table))
    assert selection.tolist() == expected.tolist()


@settings(max_examples=20, deadline=None)
@given(case=case_strategy, deadline_fraction=st.floats(min_value=0.1, max_value=1.0))
def test_deadline_cuts_stay_sound_with_skipping(case, deadline_fraction):
    """Anytime cuts on the skip-aware schedule still produce valid coverage."""
    table, plan, weights = _build_case(case)
    context = ExecutionContext(weights=weights, exact=weights is None)
    _, accelerated = _executors(case["block_rows"])
    result = PartitionPipeline(accelerated).run(
        plan,
        table,
        context,
        num_partitions=case["partitions"],
        sim_workers=2,
        scan_latency_seconds=1.0,
        deadline_seconds=deadline_fraction,
    )
    stats = result.metadata["partitions"]
    assert 1 <= stats.merged_partitions <= stats.num_partitions
    assert 0.0 < stats.coverage_row_fraction <= 1.0
    # Fully-skipped partitions complete at t=0 and are always merged.
    for timing in stats.timings:
        if timing.skipped:
            assert timing.merged
            assert timing.completion_seconds == 0.0
            assert timing.lane == -1
