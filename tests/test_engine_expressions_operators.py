"""Tests for predicate evaluation and the hash join."""

import numpy as np
import pytest

from repro.common.errors import ExecutionError
from repro.engine.expressions import evaluate_predicate, measure_selectivity
from repro.engine.operators import hash_join, semi_join_mask
from repro.sql.parser import parse_query
from repro.storage.table import Table


@pytest.fixture()
def table() -> Table:
    return Table.from_dict(
        "t",
        {
            "city": ["NY", "SF", "NY", "LA", "SF", "NY"],
            "visits": [10, 25, 3, 8, 40, 12],
            "score": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        },
    )


def where(sql_fragment: str):
    return parse_query(f"SELECT COUNT(*) FROM t WHERE {sql_fragment}").where


class TestPredicateEvaluation:
    def test_none_selects_everything(self, table):
        assert evaluate_predicate(None, table).sum() == 6

    def test_string_equality(self, table):
        mask = evaluate_predicate(where("city = 'NY'"), table)
        assert mask.tolist() == [True, False, True, False, False, True]

    def test_string_inequality(self, table):
        mask = evaluate_predicate(where("city != 'NY'"), table)
        assert mask.sum() == 3

    def test_absent_string_value_matches_nothing(self, table):
        assert evaluate_predicate(where("city = 'Boston'"), table).sum() == 0

    def test_numeric_comparisons(self, table):
        assert evaluate_predicate(where("visits > 10"), table).sum() == 3
        assert evaluate_predicate(where("visits <= 8"), table).sum() == 2

    def test_between(self, table):
        assert evaluate_predicate(where("visits BETWEEN 8 AND 25"), table).sum() == 4

    def test_in_predicate(self, table):
        assert evaluate_predicate(where("city IN ('LA', 'SF')"), table).sum() == 3

    def test_in_predicate_with_unknown_values(self, table):
        assert evaluate_predicate(where("city IN ('Boston', 'LA')"), table).sum() == 1

    def test_and_or_not(self, table):
        assert evaluate_predicate(where("city = 'NY' AND visits > 5"), table).sum() == 2
        assert evaluate_predicate(where("city = 'LA' OR visits > 20"), table).sum() == 3
        assert evaluate_predicate(where("NOT city = 'NY'"), table).sum() == 3

    def test_nested_parentheses(self, table):
        mask = evaluate_predicate(where("(city = 'NY' OR city = 'SF') AND visits >= 12"), table)
        assert mask.sum() == 3

    def test_selectivity(self, table):
        assert measure_selectivity(where("city = 'NY'"), table) == pytest.approx(0.5)
        assert measure_selectivity(None, table) == 1.0

    def test_compound_short_circuit_preserves_semantics(self, table):
        # An AND whose first (sorted-canonical) operand empties the mask and
        # an OR whose first operand fills it must still return exact masks.
        assert evaluate_predicate(
            where("city = 'Boston' AND visits > 5"), table
        ).sum() == 0
        assert evaluate_predicate(
            where("visits >= 0 OR city = 'Boston'"), table
        ).sum() == 6


class TestHashJoin:
    def test_inner_join_matches_keys(self):
        left = Table.from_dict("fact", {"k": [1, 2, 2, 3], "v": [10, 20, 30, 40]})
        right = Table.from_dict("dim", {"k": [1, 2], "label": ["a", "b"]})
        joined, left_rows = hash_join(left, right, "k", "k")
        assert joined.num_rows == 3
        assert left_rows.tolist() == [0, 1, 2]
        assert joined.column("label").values().tolist() == ["a", "b", "b"]

    def test_join_preserves_left_columns(self):
        left = Table.from_dict("fact", {"k": [1], "v": [10]})
        right = Table.from_dict("dim", {"k": [1], "w": [5]})
        joined, _ = hash_join(left, right, "k", "k")
        assert set(joined.column_names) == {"k", "v", "w"}

    def test_duplicate_dimension_keys_rejected(self):
        left = Table.from_dict("fact", {"k": [1]})
        right = Table.from_dict("dim", {"k": [1, 1], "w": [5, 6]})
        with pytest.raises(ExecutionError):
            hash_join(left, right, "k", "k")

    def test_nan_dimension_keys_are_not_duplicates(self):
        # NaN != NaN: several NaN keys are legal, they just never match.
        left = Table.from_dict("fact", {"k": [1.0, float("nan"), 2.0]})
        right = Table.from_dict(
            "dim", {"k": [1.0, float("nan"), float("nan")], "w": [5, 6, 7]}
        )
        joined, left_rows = hash_join(left, right, "k", "k")
        assert left_rows.tolist() == [0]
        assert joined.column("w").values().tolist() == [5]

    def test_name_collision_gets_prefixed(self):
        left = Table.from_dict("fact", {"k": [1], "v": [10]})
        right = Table.from_dict("dim", {"k": [1], "v": [99]})
        joined, _ = hash_join(left, right, "k", "k")
        assert "dim_v" in joined.column_names

    def test_semi_join_mask(self):
        left = Table.from_dict("fact", {"k": [1, 2, 3, 4]})
        right = Table.from_dict("dim", {"k": [2, 4]})
        mask = semi_join_mask(left, "k", right, "k")
        assert mask.tolist() == [False, True, False, True]

    def test_join_row_mapping_supports_weight_carryover(self):
        left = Table.from_dict("fact", {"k": [5, 6, 7], "v": [1, 2, 3]})
        right = Table.from_dict("dim", {"k": [7, 5], "w": [70, 50]})
        weights = np.array([2.0, 4.0, 8.0])
        joined, left_rows = hash_join(left, right, "k", "k")
        carried = weights[left_rows]
        assert carried.tolist() == [2.0, 8.0]
        assert joined.column("w").values().tolist() == [50, 70]
