"""Tests for progressive tickets: snapshots streamed while a query runs."""

import pytest

from repro.common.config import BlinkDBConfig, ClusterConfig, SamplingConfig
from repro.core.blinkdb import BlinkDB
from repro.workloads.conviva import conviva_query_templates, generate_sessions_table


@pytest.fixture(scope="module")
def db():
    table = generate_sessions_table(num_rows=30_000, seed=7, num_cities=40)
    config = BlinkDBConfig(
        sampling=SamplingConfig(largest_cap=400, min_cap=25, uniform_sample_fraction=0.08),
        cluster=ClusterConfig(num_nodes=20),
    )
    instance = BlinkDB(config)
    instance.load_table(table, simulated_rows=2_000_000_000)
    instance.register_workload(templates=conviva_query_templates())
    instance.build_samples(storage_budget_fraction=0.5)
    return instance


@pytest.fixture()
def service(db):
    svc = db.serve(num_workers=2, cache=False)
    yield svc
    svc.close()


SQL = "SELECT COUNT(*) FROM sessions WHERE dt = 5"


class TestProgressiveTickets:
    def test_progressive_ticket_collects_snapshots(self, service):
        ticket = service.submit(SQL, progressive=True)
        result = ticket.result(timeout=30)
        snapshots = ticket.snapshots()
        assert ticket.progressive
        assert len(snapshots) >= 2
        fractions = [s.fraction_merged for s in snapshots]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0
        # The last snapshot *is* the final answer.
        assert snapshots[-1].result.scalar().value == result.scalar().value
        assert ticket.latest_snapshot() is snapshots[-1]
        assert ticket.progress_fraction == 1.0

    def test_snapshots_expose_partial_results_with_coverage(self, service):
        ticket = service.submit(SQL, progressive=True)
        ticket.result(timeout=30)
        first = ticket.snapshots()[0]
        assert 0.0 < first.coverage_fraction < 1.0
        assert first.partitions_merged == 1
        assert first.result.scalar().error_bar >= ticket.snapshots()[-1].result.scalar().error_bar

    def test_non_progressive_ticket_has_no_snapshots(self, service):
        ticket = service.submit(SQL)
        ticket.result(timeout=30)
        assert not ticket.progressive
        assert ticket.snapshots() == []
        assert ticket.latest_snapshot() is None
        assert ticket.progress_fraction == 1.0  # resolved tickets report done

    def test_describe_reports_progress(self, service):
        ticket = service.submit(SQL, progressive=True)
        ticket.result(timeout=30)
        description = ticket.describe()
        assert description["progressive"] is True
        assert description["progress_fraction"] == 1.0

    def test_session_submit_passes_progressive_flag(self, service):
        session = service.connect(name="dash")
        ticket = session.submit(SQL, progressive=True)
        ticket.result(timeout=30)
        assert ticket.snapshots()

    def test_cache_hit_resolves_without_snapshots(self, db):
        svc = db.serve(num_workers=1, cache=True)
        try:
            svc.submit(SQL, progressive=True).result(timeout=30)
            hit = svc.submit(SQL, progressive=True)
            hit.result(timeout=30)
            assert hit.metrics.cache_hit
            assert hit.snapshots() == []
            assert hit.progress_fraction == 1.0
        finally:
            svc.close()


class TestFailedTicketProgress:
    def test_failed_ticket_reports_zero_progress(self, service):
        # A query against an unknown table fails in the worker; the resolved
        # ticket must not pretend it fully merged (progress_fraction == 1.0).
        ticket = service.submit(
            "SELECT COUNT(*) FROM no_such_table", progressive=True
        )
        assert ticket.exception(timeout=30) is not None
        assert ticket.status == "failed"
        assert ticket.progress_fraction == 0.0
