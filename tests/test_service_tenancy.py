"""Unit tests for per-tenant quotas, fair-share scheduling, and cancellation."""

from __future__ import annotations

import pytest

from repro.common.config import BlinkDBConfig, ClusterConfig, SamplingConfig
from repro.common.errors import QueryRejectedError
from repro.core.blinkdb import BlinkDB
from repro.service.scheduler import Admission, DeadlineScheduler, FairShareScheduler
from repro.service.tenancy import DEFAULT_TENANT, TenantQuota, TenantRegistry
from repro.workloads.conviva import conviva_query_templates


class ManualClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# -- quotas ---------------------------------------------------------------------------


class TestTenantQuota:
    def test_validation(self):
        with pytest.raises(ValueError):
            TenantQuota(max_in_flight=0)
        with pytest.raises(ValueError):
            TenantQuota(rows_per_second=0.0)
        with pytest.raises(ValueError):
            TenantQuota(weight=0.0)
        with pytest.raises(ValueError):
            TenantQuota(burst_seconds=0.0)

    def test_unlimited_quota_admits_everything(self):
        registry = TenantRegistry(default_quota=TenantQuota(max_in_flight=None))
        for _ in range(100):
            assert registry.try_acquire("anyone").admitted


class TestInFlightCap:
    def test_cap_enforced_and_released(self):
        registry = TenantRegistry(default_quota=TenantQuota(max_in_flight=2))
        assert registry.try_acquire("t").admitted
        assert registry.try_acquire("t").admitted
        verdict = registry.try_acquire("t")
        assert not verdict.admitted
        assert "max_in_flight" in (verdict.reason or "")
        assert verdict.retry_after_seconds is not None
        registry.release("t", completed=True)
        assert registry.try_acquire("t").admitted

    def test_caps_are_per_tenant(self):
        registry = TenantRegistry(default_quota=TenantQuota(max_in_flight=1))
        assert registry.try_acquire("a").admitted
        assert not registry.try_acquire("a").admitted
        # A different tenant has its own slot budget.
        assert registry.try_acquire("b").admitted


class TestRowsPerSecondBucket:
    def test_post_paid_debt_and_refill(self):
        clock = ManualClock()
        registry = TenantRegistry(
            quotas={"t": TenantQuota(rows_per_second=100.0, burst_seconds=1.0)},
            clock=clock,
        )
        assert registry.try_acquire("t").admitted
        # Charge 250 rows against a 100-token bucket: 150 rows of debt.
        registry.release("t", rows_read=250, completed=True)
        verdict = registry.try_acquire("t")
        assert not verdict.admitted
        # Debt drains at 100 rows/s: the server names a 1.5 s wait.
        assert verdict.retry_after_seconds == pytest.approx(1.5)
        clock.advance(1.6)
        assert registry.try_acquire("t").admitted

    def test_bucket_caps_at_burst(self):
        clock = ManualClock()
        registry = TenantRegistry(
            quotas={"t": TenantQuota(rows_per_second=10.0, burst_seconds=2.0)},
            clock=clock,
        )
        clock.advance(1000.0)  # idle time never banks more than the burst
        assert registry.describe()["t"] if registry.try_acquire("t").admitted else None
        registry.release("t", rows_read=20, completed=True)  # exactly the burst
        verdict = registry.try_acquire("t")
        assert verdict.admitted  # tokens hit 0.0, not negative

    def test_describe_and_stats_surface_counters(self):
        registry = TenantRegistry(default_quota=TenantQuota(max_in_flight=1))
        registry.try_acquire("acme")
        registry.try_acquire("acme")  # shed
        described = registry.describe()["acme"]
        assert described["submitted"] == 2
        assert described["shed_quota"] == 1
        assert described["in_flight"] == 1
        flat = registry.stats()
        assert flat["acme.shed_quota"] == 1.0


# -- fair-share scheduling ------------------------------------------------------------


class TestFairShareScheduler:
    def _scheduler(self, quotas=None, quantum=0.25, workers=1):
        registry = TenantRegistry(quotas=quotas or {})
        return FairShareScheduler(
            num_workers=workers,
            tenants=registry,
            quantum_seconds=quantum,
        )

    def test_single_tenant_degrades_to_edf(self):
        scheduler = self._scheduler()
        scheduler.try_admit("loose", 0.1, time_bound_seconds=50.0, tenant="a")
        scheduler.try_admit("tight", 0.1, time_bound_seconds=1.0, tenant="a")
        scheduler.try_admit("medium", 0.1, time_bound_seconds=10.0, tenant="a")
        order = [scheduler.pop(timeout=1).payload for _ in range(3)]
        assert order == ["tight", "medium", "loose"]

    def test_no_starvation_under_hot_tenant(self):
        scheduler = self._scheduler(quantum=0.25)
        # Hot tenant floods 20 items before the quiet tenant's single item.
        for i in range(20):
            scheduler.try_admit(("hot", i), 1.0, tenant="hot")
        scheduler.try_admit(("quiet", 0), 1.0, tenant="quiet")
        order = [scheduler.pop(timeout=1).payload for _ in range(21)]
        position = order.index(("quiet", 0))
        # DRR grants each backlogged tenant quantum*weight per rotation, so
        # the quiet item is served after at most ceil(1.0/0.25) = 4 hot
        # dispatches plus rotation slack — not after all 20.
        assert position <= 8, order

    def test_service_seconds_shared_by_weight(self):
        scheduler = self._scheduler(
            quotas={
                "gold": TenantQuota(weight=2.0),
                "bronze": TenantQuota(weight=1.0),
            },
            quantum=0.5,
        )
        for i in range(30):
            scheduler.try_admit(("gold", i), 1.0, tenant="gold")
            scheduler.try_admit(("bronze", i), 1.0, tenant="bronze")
        first_12 = [scheduler.pop(timeout=1).payload[0] for _ in range(12)]
        gold = first_12.count("gold")
        bronze = first_12.count("bronze")
        # Weight 2 should get roughly twice the dispatches of weight 1.
        assert gold > bronze, first_12
        assert gold / max(1, bronze) == pytest.approx(2.0, rel=0.5)

    def test_fairness_is_in_seconds_not_query_counts(self):
        scheduler = self._scheduler(quantum=0.5)
        # Tenant "cheap" sends 10x more queries, each 10x cheaper: equal
        # service seconds means cheap gets ~10 dispatches per expensive one.
        for i in range(40):
            scheduler.try_admit(("cheap", i), 0.1, tenant="cheap")
        for i in range(4):
            scheduler.try_admit(("expensive", i), 1.0, tenant="expensive")
        first_22 = [scheduler.pop(timeout=1).payload[0] for _ in range(22)]
        cheap_seconds = 0.1 * first_22.count("cheap")
        expensive_seconds = 1.0 * first_22.count("expensive")
        assert cheap_seconds == pytest.approx(expensive_seconds, rel=0.6), first_22

    def test_cancelled_items_are_skipped(self):
        scheduler = self._scheduler()
        _, first = scheduler.try_admit("first", 0.1, tenant="a")
        _, second = scheduler.try_admit("second", 0.1, tenant="a")
        assert scheduler.cancel(first) is True
        assert scheduler.cancel(first) is False  # idempotent
        assert scheduler.depth() == 1
        assert scheduler.pop(timeout=1).payload == "second"

    def test_drain_empties_every_tenant_queue(self):
        scheduler = self._scheduler()
        scheduler.try_admit("a1", 0.1, tenant="a")
        scheduler.try_admit("b1", 0.1, tenant="b")
        scheduler.try_admit("b2", 0.1, tenant="b")
        drained = scheduler.drain()
        assert sorted(item.payload for item in drained) == ["a1", "b1", "b2"]
        assert scheduler.depth() == 0
        assert scheduler.predicted_backlog_seconds() == 0.0

    def test_describe_reports_fair_share_state(self):
        scheduler = self._scheduler()
        scheduler.try_admit("x", 0.5, tenant="acme")
        described = scheduler.describe()
        assert described["fair_share"]["tenants_queued"] == {"acme": 1}


class TestDeadlineSchedulerCancellation:
    def test_cancel_releases_backlog_charge(self):
        scheduler = DeadlineScheduler(num_workers=1)
        _, item = scheduler.try_admit("work", predicted_seconds=5.0)
        assert scheduler.predicted_backlog_seconds() == pytest.approx(5.0)
        assert scheduler.cancel(item)
        assert scheduler.predicted_backlog_seconds() == 0.0
        assert scheduler.depth() == 0

    def test_popped_item_cannot_be_cancelled(self):
        scheduler = DeadlineScheduler(num_workers=1)
        _, item = scheduler.try_admit("work", predicted_seconds=1.0)
        assert scheduler.pop(timeout=1) is item
        assert scheduler.cancel(item) is False


# -- the service layer wired to tenancy ----------------------------------------------


@pytest.fixture(scope="module")
def tenancy_db(sessions_table):
    config = BlinkDBConfig(
        sampling=SamplingConfig(largest_cap=80, min_cap=10, uniform_sample_fraction=0.1),
        cluster=ClusterConfig(num_nodes=20),
    )
    db = BlinkDB(config)
    db.load_table(sessions_table, simulated_rows=20_000_000)
    db.register_workload(templates=conviva_query_templates())
    db.build_samples(storage_budget_fraction=0.5)
    yield db
    db.close()


SQL = "SELECT COUNT(*) FROM sessions GROUP BY os"


class TestTenantAwareService:
    def test_quota_shed_carries_structured_error(self, tenancy_db):
        registry = TenantRegistry(quotas={"acme": TenantQuota(max_in_flight=1)})
        service = tenancy_db.serve(
            num_workers=1, autostart=False, cache=False, tenants=registry
        )
        try:
            admitted = service.submit(SQL, tenant="acme")
            assert admitted.metrics.admission == "admitted"
            shed = service.submit(SQL, tenant="acme")
            assert shed.done() and shed.status == "shed"
            with pytest.raises(QueryRejectedError) as excinfo:
                shed.result(timeout=0)
            assert excinfo.value.reason == "shed-quota"
            assert excinfo.value.retry_after_seconds is not None
            assert service.metrics.shed_quota.value == 1
            assert shed.metrics.admission == Admission.SHED_QUOTA.value
            # Another tenant is unaffected by acme's cap.
            other = service.submit(SQL, tenant="other")
            assert other.metrics.admission == "admitted"
        finally:
            service.close()

    def test_sessions_pin_their_tenant(self, tenancy_db):
        service = tenancy_db.serve(num_workers=1, autostart=False, tenants=True)
        try:
            session = service.connect(name="dash", tenant="acme")
            ticket = session.submit(SQL)
            assert ticket.tenant == "acme"
            assert service.tenants.in_flight("acme") == 1
        finally:
            service.close()

    def test_default_tenant_when_none_named(self, tenancy_db):
        service = tenancy_db.serve(num_workers=1, autostart=False, tenants=True)
        try:
            ticket = service.submit(SQL)
            assert ticket.tenant == DEFAULT_TENANT
        finally:
            service.close()

    def test_ticket_cancel_removes_queued_query(self, tenancy_db):
        service = tenancy_db.serve(
            num_workers=1, autostart=False, cache=False, tenants=True
        )
        try:
            first = service.submit(SQL, tenant="acme")
            second = service.submit(SQL, tenant="acme")
            assert second.cancel() is True
            assert second.cancel() is False  # already resolved
            assert second.status == "cancelled"
            with pytest.raises(QueryRejectedError) as excinfo:
                second.result(timeout=0)
            assert excinfo.value.reason == "cancelled"
            assert service.metrics.cancelled.value == 1
            # The quota slot was returned and the registry counted it.
            assert service.tenants.in_flight("acme") == 1
            assert service.tenants.describe()["acme"]["cancelled"] == 1
            assert not first.done()
            # Start the pool: only the live ticket executes.
            service.start()
            first.result(timeout=30)
        finally:
            service.close()

    def test_close_drains_queued_tickets_deterministically(self, tenancy_db):
        service = tenancy_db.serve(num_workers=1, autostart=False, cache=False)
        tickets = [service.submit(SQL) for _ in range(3)]
        service.close()
        for ticket in tickets:
            assert ticket.done()
            with pytest.raises(QueryRejectedError) as excinfo:
                ticket.result(timeout=0)
            assert excinfo.value.reason == "closed"

    def test_completed_queries_charge_rows_to_the_bucket(self, tenancy_db):
        service = tenancy_db.serve(num_workers=1, cache=False, tenants=True)
        try:
            result = service.submit(SQL, tenant="acme").result(timeout=30)
            described = service.tenants.describe()["acme"]
            assert described["completed"] == 1
            assert described["in_flight"] == 0
            assert described["rows_charged"] == result.rows_read
        finally:
            service.close()

    def test_tenants_surface_in_facade_metrics(self, tenancy_db):
        service = tenancy_db.serve(num_workers=1, cache=False, tenants=True)
        try:
            service.submit(SQL, tenant="acme").result(timeout=30)
            tenants_metrics = tenancy_db.metrics()["tenants"]
            flat = {
                series["labels"]["name"]: series["value"]
                for series in tenants_metrics["series"]
            }
            assert flat["acme.completed"] == 1.0
            assert flat["acme.in_flight"] == 0.0
        finally:
            service.close()

    def test_admission_wait_span_carries_tenant(self, tenancy_db):
        service = tenancy_db.serve(num_workers=1, cache=False, tenants=True)
        try:
            ticket = service.submit(f"EXPLAIN ANALYZE {SQL}", tenant="acme")
            analyzed = ticket.result(timeout=30)
            span = analyzed.trace.find("admission-wait")
            assert span is not None
            assert span.attrs["tenant"] == "acme"
        finally:
            service.close()
