"""Tests for sample families, the Fig.-4 layout, and the skew/storage models."""

import math

import numpy as np
import pytest

from repro.common.config import SamplingConfig
from repro.common.errors import SampleNotFoundError
from repro.common.units import MB
from repro.sampling.family import StratifiedSampleFamily, UniformSampleFamily, verify_nesting
from repro.sampling.layout import FamilyLayout
from repro.sampling.skew import (
    delta_skew,
    generalized_harmonic,
    stratified_sample_rows,
    stratified_storage_bytes,
    table_delta_skew,
    zipf_frequencies,
    zipf_rank_count,
    zipf_storage_fraction,
)
from repro.storage.table import Table


@pytest.fixture(scope="module")
def table() -> Table:
    rng = np.random.default_rng(5)
    counts = zipf_frequencies(60, 1.4, 12_000)
    city = np.repeat(np.arange(60), counts)
    rng.shuffle(city)
    return Table.from_dict(
        "fam",
        {
            "city": [f"c{int(v):03d}" for v in city],
            "os": rng.integers(0, 5, 12_000).tolist(),
            "value": rng.normal(50, 10, 12_000).tolist(),
        },
    )


@pytest.fixture(scope="module")
def config() -> SamplingConfig:
    return SamplingConfig(largest_cap=200, min_cap=10, uniform_sample_fraction=0.1)


class TestStratifiedFamily:
    def test_caps_follow_geometric_ladder(self, table, config):
        family = StratifiedSampleFamily.build(table, ("city",), config)
        caps = sorted(family.caps, reverse=True)
        assert caps[0] == 200
        assert all(a > b for a, b in zip(caps, caps[1:]))

    def test_resolutions_ordered_smallest_first(self, table, config):
        family = StratifiedSampleFamily.build(table, ("city",), config)
        rows = [r.num_rows for r in family.resolutions]
        assert rows == sorted(rows)
        assert family.smallest.num_rows == rows[0]
        assert family.largest.num_rows == rows[-1]

    def test_nesting_holds(self, table, config):
        family = StratifiedSampleFamily.build(table, ("city",), config)
        assert verify_nesting(family)

    def test_storage_is_largest_resolution_only(self, table, config):
        family = StratifiedSampleFamily.build(table, ("city",), config)
        assert family.storage_bytes == family.largest.size_bytes
        assert family.total_logical_bytes > family.storage_bytes

    def test_key_is_sorted_column_set(self, table, config):
        family = StratifiedSampleFamily.build(table, ("os", "city"), config)
        assert family.key == ("city", "os")
        assert family.covers(["city"])
        assert not family.covers(["value"])

    def test_resolution_lookup_by_cap(self, table, config):
        family = StratifiedSampleFamily.build(table, ("city",), config)
        assert family.resolution_for_cap(200).cap == 200
        with pytest.raises(SampleNotFoundError):
            family.resolution_for_cap(999)

    def test_cap_at_least_and_at_most(self, table, config):
        family = StratifiedSampleFamily.build(table, ("city",), config)
        assert family.smallest_cap_at_least(60).cap >= 60
        assert family.largest_cap_at_most(60).cap <= 60

    def test_rows_selectors(self, table, config):
        family = StratifiedSampleFamily.build(table, ("city",), config)
        target = family.resolutions[1].num_rows
        assert family.resolution_with_at_least_rows(target).num_rows >= target
        assert family.largest_resolution_with_at_most_rows(target).num_rows <= target

    def test_empty_columns_rejected(self, table, config):
        with pytest.raises(ValueError):
            StratifiedSampleFamily(table_name="fam", resolutions=(), columns=())


class TestUniformFamily:
    def test_build_and_key(self, table, config):
        family = UniformSampleFamily.build(table, config)
        assert family.key is None
        assert verify_nesting(family)
        assert family.largest.fraction == pytest.approx(config.uniform_sample_fraction)

    def test_resolution_order(self, table, config):
        family = UniformSampleFamily.build(table, config)
        rows = [r.num_rows for r in family.resolutions]
        assert rows == sorted(rows)


class TestFamilyLayout:
    def test_blocks_shared_across_resolutions(self, table, config):
        family = StratifiedSampleFamily.build(table, ("city",), config)
        layout = FamilyLayout.for_family(family, block_bytes=64 * 1024)
        small_blocks = layout.blocks_for_resolution(family.smallest)
        large_blocks = layout.blocks_for_resolution(family.largest)
        assert len(small_blocks) <= len(large_blocks)
        assert layout.storage_bytes == layout.physical_blocks.total_bytes

    def test_additional_blocks_model_reuse(self, table, config):
        family = StratifiedSampleFamily.build(table, ("city",), config)
        layout = FamilyLayout.for_family(family, block_bytes=64 * 1024)
        additional = layout.additional_blocks(family.smallest, family.largest)
        small = layout.blocks_for_resolution(family.smallest)
        large = layout.blocks_for_resolution(family.largest)
        assert len(additional) == len(large) - len(small)

    def test_block_size_respected(self, table, config):
        family = StratifiedSampleFamily.build(table, ("city",), config)
        layout = FamilyLayout.for_family(family, block_bytes=1 * MB)
        assert all(block.size_bytes <= 1 * MB for block in layout.physical_blocks)


class TestSkewMetrics:
    def test_delta_counts_tail_values(self):
        frequencies = np.array([1000, 500, 30, 20, 5])
        assert delta_skew(frequencies, 100) == 3
        assert delta_skew(frequencies, 1) == 0

    def test_delta_zero_for_uniform_distribution(self):
        assert delta_skew(np.full(50, 200), cap=100) == 0

    def test_table_delta_skew(self, table, config):
        assert table_delta_skew(table, ["city"], 200) > 0

    def test_storage_rows_and_bytes(self):
        frequencies = np.array([1000, 500, 30])
        assert stratified_sample_rows(frequencies, 100) == 230
        assert stratified_storage_bytes(frequencies, 100, row_width_bytes=10) == 2300

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            delta_skew(np.array([1]), 0)
        with pytest.raises(ValueError):
            stratified_sample_rows(np.array([1]), 0)


class TestZipfStorageModel:
    """Reproduces the analytic storage-overhead numbers of Table 5."""

    @pytest.mark.parametrize(
        "s, cap, expected",
        [
            (1.5, 10_000, 0.024),
            (1.5, 100_000, 0.052),
            (1.5, 1_000_000, 0.114),
            (2.0, 10_000, 0.0038),
            (1.0, 1_000_000, 0.69),
        ],
    )
    def test_matches_paper_table5(self, s, cap, expected):
        fraction = zipf_storage_fraction(s, cap, max_frequency=1e9)
        assert fraction == pytest.approx(expected, rel=0.15)

    def test_fraction_monotone_in_cap(self):
        fractions = [zipf_storage_fraction(1.5, cap) for cap in (10**4, 10**5, 10**6)]
        assert fractions == sorted(fractions)

    def test_fraction_monotone_decreasing_in_exponent(self):
        fractions = [zipf_storage_fraction(s, 10**5) for s in (1.0, 1.5, 2.0)]
        assert fractions == sorted(fractions, reverse=True)

    def test_cap_above_max_frequency_stores_everything(self):
        assert zipf_storage_fraction(1.5, 10**10, max_frequency=1e9) == 1.0

    def test_rank_count(self):
        assert zipf_rank_count(1e9, 1.5) == pytest.approx(1e6)

    def test_generalized_harmonic_small_exact(self):
        assert generalized_harmonic(10, 1.0) == pytest.approx(sum(1 / r for r in range(1, 11)))

    def test_generalized_harmonic_large_approximation(self):
        exact = generalized_harmonic(10**6, 1.5)
        approx = generalized_harmonic(10**6 + 0.5e6, 1.5)
        assert approx > exact
        assert math.isfinite(approx)

    def test_zipf_frequencies_sum(self):
        counts = zipf_frequencies(100, 1.2, 10_000)
        assert counts.sum() == 10_000
        assert counts[0] == counts.max()
