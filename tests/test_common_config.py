"""Tests for repro.common.config."""

import pytest

from repro.common.config import BlinkDBConfig, ClusterConfig, SamplingConfig


class TestSamplingConfig:
    def test_defaults_are_valid(self):
        config = SamplingConfig()
        assert config.resolution_ratio > 1

    def test_effective_cap_uses_explicit_value(self):
        config = SamplingConfig(largest_cap=1234)
        assert config.effective_cap(10**9) == 1234

    def test_effective_cap_auto_scales_with_rows(self):
        config = SamplingConfig(auto_cap_divisor=500, min_cap=10)
        assert config.effective_cap(500_000) == 1000
        assert config.effective_cap(1_000) == 10  # floored at min_cap

    def test_resolution_caps_geometric_ladder(self):
        config = SamplingConfig(largest_cap=100, resolution_ratio=2.0, min_cap=10)
        caps = config.resolution_caps()
        assert caps == [100, 50, 25, 12]
        assert all(a > b for a, b in zip(caps, caps[1:]))

    def test_resolution_caps_explicit_override(self):
        config = SamplingConfig(min_cap=10, resolution_ratio=2.0)
        assert config.resolution_caps(40) == [40, 20, 10]

    def test_resolution_caps_requires_cap_when_auto(self):
        config = SamplingConfig()
        with pytest.raises(ValueError):
            config.resolution_caps()

    def test_with_budget_returns_modified_copy(self):
        config = SamplingConfig()
        other = config.with_budget(2.0)
        assert other.storage_budget_fraction == 2.0
        assert config.storage_budget_fraction != 2.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"largest_cap": 0},
            {"resolution_ratio": 1.0},
            {"min_cap": 0},
            {"storage_budget_fraction": 0.0},
            {"uniform_sample_fraction": 0.0},
            {"uniform_sample_fraction": 1.5},
            {"max_columns_per_family": 0},
            {"confidence": 1.0},
            {"auto_cap_divisor": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SamplingConfig(**kwargs)


class TestClusterConfig:
    def test_defaults_match_paper_cluster_shape(self):
        config = ClusterConfig()
        assert config.num_nodes == 100
        assert config.cores_per_node == 8

    def test_total_memory_and_slots(self):
        config = ClusterConfig(num_nodes=4)
        assert config.total_memory_bytes == 4 * config.memory_per_node_bytes
        assert config.total_slots == 4 * config.scheduler_slots_per_node

    def test_with_nodes_copy(self):
        config = ClusterConfig()
        smaller = config.with_nodes(10)
        assert smaller.num_nodes == 10
        assert config.num_nodes == 100

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 0},
            {"cores_per_node": 0},
            {"disk_bandwidth_bytes_per_sec": 0},
            {"network_bandwidth_bytes_per_sec": -1},
            {"hdfs_block_bytes": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ClusterConfig(**kwargs)


class TestBlinkDBConfig:
    def test_default_composition(self):
        config = BlinkDBConfig()
        assert isinstance(config.sampling, SamplingConfig)
        assert isinstance(config.cluster, ClusterConfig)

    def test_churn_fraction_bounds(self):
        with pytest.raises(ValueError):
            BlinkDBConfig(maintenance_churn_fraction=1.5)
