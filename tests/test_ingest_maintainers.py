"""Unit tests of the ingest subsystem: maintainers, TableIngest, controller.

The statistical invariants (uniform inclusion, cap caps, split-vs-whole
equivalence) are property-tested in ``test_property_ingest.py``; this module
pins the mechanics — nesting, weights, staleness accounting, generation
fencing, escalation, and the controller's batching/backpressure contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.config import BlinkDBConfig, ClusterConfig, SamplingConfig
from repro.core.blinkdb import BlinkDB
from repro.sampling.family import verify_nesting
from repro.workloads.conviva import conviva_query_templates, generate_sessions_table


def fresh_db(rows: int = 12_000, **config_kwargs) -> BlinkDB:
    config = BlinkDBConfig(
        sampling=SamplingConfig(largest_cap=80, min_cap=10, uniform_sample_fraction=0.1),
        cluster=ClusterConfig(num_nodes=10),
        **config_kwargs,
    )
    db = BlinkDB(config)
    table = generate_sessions_table(
        num_rows=rows, seed=7, num_cities=40, num_countries=15, num_customers=100,
        num_dmas=20, num_asns=50,
    )
    db.load_table(table, simulated_rows=rows * 100)
    db.register_workload(templates=conviva_query_templates())
    db.build_samples(storage_budget_fraction=0.5)
    return db


def batch_of(rows: int, seed: int) -> dict[str, list]:
    src = generate_sessions_table(
        num_rows=rows, seed=seed, num_cities=40, num_countries=15, num_customers=100,
        num_dmas=20, num_asns=50,
    )
    return {name: list(src.column(name).values()) for name in src.column_names}


class TestAppendMaintainsFamilies:
    def test_families_stay_nested_and_weighted(self):
        db = fresh_db()
        db.append("sessions", batch_of(2_000, seed=21))
        db.append("sessions", batch_of(1_500, seed=22))
        total = db.catalog.table("sessions").num_rows
        assert total == 15_500

        uniform = db.catalog.uniform_family("sessions")
        assert verify_nesting(uniform)
        for resolution in uniform.resolutions:
            # Weights always reconstruct the *grown* population.
            assert resolution.represented_rows == pytest.approx(total)
            assert resolution.source_rows == total

        for columns, family in db.catalog.stratified_families("sessions").items():
            assert verify_nesting(family), columns
            frequencies = db.catalog.table("sessions").value_frequencies(list(columns))
            for resolution in family.resolutions:
                sample_frequencies = resolution.table.value_frequencies(list(columns))
                # Cap invariant and full stratum coverage.
                assert all(c <= resolution.cap for c in sample_frequencies.values())
                assert set(sample_frequencies) == set(frequencies)
                # Strata below the cap are stored in full with weight 1.
                for key, frequency in frequencies.items():
                    if frequency <= resolution.cap:
                        assert sample_frequencies[key] == frequency
                assert resolution.represented_rows == pytest.approx(total)

    def test_new_stratum_admission(self):
        db = fresh_db()
        batch = batch_of(50, seed=33)
        batch["country"] = ["country_brand_new"] * 50
        db.append("sessions", batch)
        for columns, family in db.catalog.stratified_families("sessions").items():
            if "country" not in columns:
                continue
            for resolution in family.resolutions:
                frequencies = resolution.table.value_frequencies(list(columns))
                admitted = [k for k in frequencies if "country_brand_new" in k]
                assert admitted, (columns, resolution.name)

    def test_append_is_per_table_o_batch_for_zone_maps(self):
        db = fresh_db()
        table = db.catalog.table("sessions")
        index_before = table.zone_map_index(db.config.zone_block_rows)
        db.append("sessions", batch_of(500, seed=44))
        grown = db.catalog.table("sessions")
        index_after = grown.zone_map_index(db.config.zone_block_rows)
        # Complete blocks of the old index are reused by identity.
        reused = index_before.num_rows // index_before.block_rows
        for i in range(reused):
            assert index_after.blocks[i] is index_before.blocks[i]


class TestGenerationFencing:
    def test_generation_bumps_per_append_and_stamps_results(self):
        db = fresh_db()
        assert db.table_generation("sessions") == 0
        db.append("sessions", batch_of(100, seed=5))
        assert db.table_generation("sessions") == 1
        result = db.query("SELECT COUNT(*) FROM sessions WHERE city = 'city_0003'")
        assert result.metadata["generation"] == 1
        exact = db.query_exact("SELECT COUNT(*) FROM sessions")
        assert exact.metadata["generation"] == 1
        db.append("sessions", batch_of(100, seed=6))
        assert db.query("SELECT COUNT(*) FROM sessions").metadata["generation"] == 2

    def test_probe_memo_fenced_per_table(self):
        db = fresh_db()
        # Force probe-path planning (column not covered by any family).
        sql = "SELECT AVG(session_time) FROM sessions WHERE bitrate_kbps > 3000"
        db.query(sql)
        selector = db.runtime.selector
        assert selector.probe_cache_stats["probe_cache_entries"] > 0
        db.append("sessions", batch_of(100, seed=9))
        assert selector.probe_cache_stats["probe_cache_entries"] == 0


class TestEscalation:
    def test_staleness_budget_triggers_escalation(self):
        db = fresh_db(ingest_staleness_budget=0.05)
        report = db.append("sessions", batch_of(2_000, seed=50))
        assert report.staleness_exceeded
        assert report.escalated
        assert report.escalation in {"replan", "refresh"}
        assert db.ingest_stats()["sessions"]["escalations"] == 1
        # Escalation re-anchors: the next small append is fresh again.
        follow_up = db.append("sessions", batch_of(100, seed=51))
        assert not follow_up.staleness_exceeded

    def test_auto_escalation_can_be_disabled(self):
        db = fresh_db(ingest_staleness_budget=0.05, ingest_auto_escalate=False)
        report = db.append("sessions", batch_of(2_000, seed=52))
        assert report.staleness_exceeded
        assert not report.escalated

    def test_build_samples_reanchors_ingest_state(self):
        db = fresh_db(ingest_staleness_budget=10.0)
        db.append("sessions", batch_of(2_000, seed=53))
        state = db._ingest_states["sessions"]
        assert state.staleness > 0.0
        db.build_samples(storage_budget_fraction=0.5)
        assert state.staleness == 0.0
        assert not db.catalog.statistics("sessions").estimated


class TestIngestController:
    def test_inline_controller_batches(self):
        db = fresh_db()
        controller = db.ingest_controller("sessions", batch_rows=500, background=False)
        rows = batch_of(1_200, seed=60)
        row_dicts = [
            {name: rows[name][i] for name in rows} for i in range(1_200)
        ]
        for row in row_dicts:
            controller.submit(row)
        # 2 full batches flushed inline; the remainder waits for close().
        assert db.catalog.table("sessions").num_rows == 13_000
        assert controller.pending_rows == 200
        controller.close()
        assert db.catalog.table("sessions").num_rows == 13_200
        stats = db.ingest_stats()["sessions"]
        assert stats["rows_appended"] == 1_200
        assert stats["batches"] == 3

    def test_background_controller_drains(self):
        db = fresh_db()
        with db.ingest_controller("sessions", batch_rows=256) as controller:
            rows = batch_of(1_000, seed=61)
            controller.submit(
                [{name: rows[name][i] for name in rows} for i in range(1_000)]
            )
        assert db.catalog.table("sessions").num_rows == 13_000
        assert controller.pending_rows == 0

    def test_oversized_submit_does_not_deadlock(self):
        # A single submission larger than the whole pending buffer must be
        # chunked through backpressure, not spin against a buffer it can
        # never fit into.
        db = fresh_db()
        rows = batch_of(300, seed=62)
        row_dicts = [{name: rows[name][i] for name in rows} for i in range(300)]
        with db.ingest_controller("sessions", batch_rows=64, max_pending_rows=128) as controller:
            controller.submit(row_dicts)
        assert db.catalog.table("sessions").num_rows == 12_300

    def test_submit_next_to_sub_batch_remainder_does_not_deadlock(self):
        # The flusher only drains full batches, so a remainder < batch_rows
        # can sit pending forever; a later near-buffer-sized submit must
        # still make progress next to it.
        db = fresh_db()
        rows = batch_of(11, seed=63)
        row_dicts = [{name: rows[name][i] for name in rows} for i in range(11)]
        with db.ingest_controller("sessions", batch_rows=4, max_pending_rows=8) as controller:
            controller.submit(row_dicts[:3])   # remainder: 3 rows pending
            controller.submit(row_dicts[3:])   # 8 more — must not hang
        assert db.catalog.table("sessions").num_rows == 12_011

    def test_submit_after_close_raises(self):
        db = fresh_db()
        controller = db.ingest_controller("sessions", background=False)
        controller.close()
        with pytest.raises(Exception):
            controller.submit({"bogus": 1})


class TestServiceGauges:
    def test_describe_mirrors_ingest_counters(self):
        db = fresh_db()
        service = db.serve(num_workers=1)
        try:
            db.append("sessions", batch_of(300, seed=70))
            snapshot = service.describe()
            ingest = snapshot["metrics"]["ingest"]["sessions"]
            assert ingest["rows_appended"] == 300
            assert ingest["batches"] == 1
            assert ingest["rows_per_second"] > 0
        finally:
            service.close()


class TestSimulatorResize:
    def test_datasets_track_grown_rows(self):
        db = fresh_db()
        scale = db._builder.scale_factor
        db.append("sessions", batch_of(1_000, seed=80))
        info = db.simulator.dataset("sessions")
        assert info.num_rows == int(13_000 * scale)
        uniform = db.catalog.uniform_family("sessions")
        largest = db.simulator.dataset(uniform.largest.name)
        assert largest.num_rows == int(uniform.largest.num_rows * scale)
        for resolution in uniform.resolutions[:-1]:
            nested = db.simulator.dataset(resolution.name)
            assert nested.num_rows == int(resolution.num_rows * scale)
            assert nested.parent == uniform.largest.name


def test_append_rejects_unknown_table():
    db = fresh_db()
    with pytest.raises(Exception):
        db.append("nope", [{"a": 1}])


def test_append_accepts_columnar_and_row_forms():
    db = fresh_db()
    columnar = batch_of(10, seed=90)
    db.append("sessions", columnar)
    rows = [{name: columnar[name][i] for name in columnar} for i in range(10)]
    db.append("sessions", rows)
    assert db.catalog.table("sessions").num_rows == 12_020


def test_numpy_int64_indices_do_not_break_grouping():
    # group keys must decode to plain Python values whether they come from the
    # base table or from an appended batch (np.int64 vs int must collide).
    db = fresh_db()
    frequencies_before = db.catalog.table("sessions").value_frequencies(["endedflag"])
    batch = batch_of(100, seed=91)
    db.append("sessions", batch)
    frequencies_after = db.catalog.table("sessions").value_frequencies(["endedflag"])
    assert set(frequencies_after) == set(frequencies_before)
