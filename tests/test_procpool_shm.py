"""Integration tests for the process-parallel backend.

Covers the three layers of the tentpole end to end on this machine:

* :mod:`repro.storage.shm` — exporting a table into shared memory and
  attaching it back (plain and per-block-encoded columns, dictionary
  columns, weights, zone-map metadata), with no ``/dev/shm`` leaks.
* :class:`~repro.runtime.procpool.ProcessPartitionPool` — real spawned
  workers aggregating shared partitions and shipping back partial states
  that finalize bit-identically to the serial path; epoch-fenced segment
  lifecycle; graceful decline paths (joins, stale handles).
* The facade — ``execution_backend="processes"`` produces the same answers
  as threads through ``BlinkDB``, ``close()`` is idempotent, the context
  manager tears everything down, and configuration knobs validate.

The pool is spawn-based, so worker startup costs a second or two; the
module shares one pool across tests to pay it once.
"""

import os
import warnings

import numpy as np
import pytest

from repro.common.config import BlinkDBConfig, ClusterConfig, SamplingConfig
from repro.common.rng import make_rng
from repro.engine.executor import QueryExecutor
from repro.engine.kernels import ScanSink
from repro.runtime.procpool import (
    ProcessBackend,
    ProcessPartitionPool,
    stratum_permutations_task,
)
from repro.sql.parser import parse_query
from repro.storage import shm
from repro.storage.encodings import encode_table
from repro.storage.table import Table

pytestmark = pytest.mark.skipif(
    not shm.shared_memory_available(), reason="POSIX shared memory unavailable"
)


def _shm_entries() -> set[str]:
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


def _random_table(seed: int, rows: int = 6_000, name: str = "t") -> tuple[Table, np.ndarray]:
    rng = make_rng(seed)
    table = Table.from_dict(
        name,
        {
            "g": [f"g{i}" for i in rng.integers(0, 6, rows)],
            "x": rng.lognormal(2.0, 0.7, rows).tolist(),
            "f": rng.integers(0, 10, rows).tolist(),
        },
    )
    weights = np.where(rng.random(rows) < 0.4, 1.0, rng.uniform(2.0, 30.0, rows))
    return table, weights


@pytest.fixture(scope="module")
def pool():
    pool = ProcessPartitionPool(max_workers=2)
    assert pool.warm()
    yield pool
    pool.close()


# -- shared-memory export/attach ----------------------------------------------------


class TestShmRoundTrip:
    @pytest.mark.parametrize("encoded", [False, True], ids=["plain", "encoded"])
    def test_export_attach_round_trip(self, encoded):
        table, weights = _random_table(29)
        if encoded:
            table = encode_table(table, block_rows=512)
        before = _shm_entries()
        export = shm.export_table(table, weights)
        attached = shm.attach_table(export.handle)
        try:
            assert attached.table.name == table.name
            assert attached.table.num_rows == table.num_rows
            for name in ("g", "x", "f"):
                np.testing.assert_array_equal(
                    attached.table.column(name).values(), table.column(name).values()
                )
            np.testing.assert_array_equal(attached.weights, weights)
        finally:
            attached.close()
            export.close()
        assert _shm_entries() == before

    def test_attach_close_never_unlinks(self):
        table, _ = _random_table(31, rows=500)
        export = shm.export_table(table)
        attached = shm.attach_table(export.handle)
        attached.close()
        # The parent owns the unlink: a second attach must still work.
        again = shm.attach_table(export.handle)
        assert again.table.num_rows == table.num_rows
        again.close()
        export.close()

    def test_export_close_is_idempotent(self):
        table, _ = _random_table(37, rows=200)
        before = _shm_entries()
        export = shm.export_table(table)
        export.close()
        export.close()
        assert _shm_entries() == before


# -- the worker pool ----------------------------------------------------------------

POOL_SQL = (
    "SELECT COUNT(*), SUM(x), AVG(x), VARIANCE(x), QUANTILE(x, 0.5) "
    "FROM t WHERE f < 7 GROUP BY g"
)


def _finalize(executor, query, partials, table, weights):
    merged = partials[0]
    for piece in partials[1:]:
        merged = merged.merge(piece)
    return executor.finalize(
        query,
        merged,
        None,
        rows_read=table.num_rows,
        population_read=float(np.sum(weights)),
    )


class TestProcessPartitionPool:
    @pytest.mark.parametrize("encoded", [False, True], ids=["plain", "encoded"])
    def test_worker_partials_bitwise_match_serial(self, pool, encoded):
        table, weights = _random_table(43)
        if encoded:
            table = encode_table(table, block_rows=512)
        query = parse_query(POOL_SQL)
        executor = QueryExecutor()
        partitions = table.partitions(weights=weights, num_partitions=6)
        epoch = pool.new_epoch()
        try:
            handle = pool.ensure_export(epoch, "test", table, weights)
            assert handle is not None
            shipped = pool.map_partitions(
                query, handle, partitions, sink=ScanSink(), executor=executor
            )
            assert shipped is not None and len(shipped) == len(partitions)
        finally:
            pool.release_epoch(epoch)
        serial = [executor.partial_aggregate_partition(query, p) for p in partitions]
        for g_serial, g_shipped in zip(
            _finalize(executor, query, serial, table, weights),
            _finalize(executor, query, shipped, table, weights),
        ):
            assert g_serial.key == g_shipped.key
            for fn in g_serial.aggregates:
                assert g_serial[fn].value == g_shipped[fn].value, fn
                assert (
                    g_serial[fn].interval.half_width
                    == g_shipped[fn].interval.half_width
                ), fn

    def test_counters_and_shipped_bytes_are_compact(self, pool):
        table, weights = _random_table(47)
        # Scalar states only: each partial is a handful of fixed-size moment
        # sets per group, so the wire size is O(groups × aggregates) exactly
        # (the quantile sketch adds a capped but larger term, tested above).
        query = parse_query(
            "SELECT COUNT(*), SUM(x), AVG(x), VARIANCE(x) FROM t WHERE f < 7 GROUP BY g"
        )
        partitions = table.partitions(weights=weights, num_partitions=4)
        epoch = pool.new_epoch()
        before = pool.stats()
        try:
            handle = pool.ensure_export(epoch, "compact", table, weights)
            shipped = pool.map_partitions(query, handle, partitions, sink=ScanSink())
            assert shipped is not None
        finally:
            pool.release_epoch(epoch)
        after = pool.stats()
        assert after["queries"] == before["queries"] + 1
        assert after["partials_shipped"] == before["partials_shipped"] + 4
        shipped_bytes = after["bytes_shipped_last_query"]
        # 4 partials × 6 groups × 4 aggregates, with a generous per-state
        # budget — and nowhere near the 144 KB of row data behind them.
        assert 0 < shipped_bytes < 4 * 6 * 4 * 512
        assert shipped_bytes < table.num_rows * 3 * 8 // 4

    def test_ensure_export_is_idempotent_and_epoch_fenced(self, pool):
        table, weights = _random_table(53, rows=400)
        before = _shm_entries()
        epoch = pool.new_epoch()
        h1 = pool.ensure_export(epoch, "k", table, weights)
        h2 = pool.ensure_export(epoch, "k", table, weights)
        assert h1 is not None and h1.segment == h2.segment
        assert pool.stats()["segments_active"] >= 1
        pool.release_epoch(epoch)
        pool.release_epoch(epoch)  # idempotent
        assert _shm_entries() == before

    def test_map_calls_matches_inline(self, pool):
        from repro.sampling.stratified import stratum_permutations

        table, _ = _random_table(59, rows=2_000)
        epoch = pool.new_epoch()
        try:
            handle = pool.ensure_export(epoch, "perm", table)
            results = pool.map_calls(
                stratum_permutations_task, [(handle, ("g",)), (handle, ("g", "f"))]
            )
            assert results is not None
        finally:
            pool.release_epoch(epoch)
        for columns, shipped in zip([("g",), ("g", "f")], results):
            inline = stratum_permutations(table, columns)
            assert len(inline) == len(shipped)
            for a, b in zip(inline, shipped):
                np.testing.assert_array_equal(a, b)

    def test_backend_declines_joins_and_stale_handles(self, pool):
        table, weights = _random_table(61, rows=1_000)
        query = parse_query(POOL_SQL)
        partitions = table.partitions(weights=weights, num_partitions=2)
        epoch = pool.new_epoch()
        try:
            handle = pool.ensure_export(epoch, "decline", table, weights)
            backend = ProcessBackend(pool, handle)

            class _Joined:
                joins = ({"table": "dim"},)

            assert backend.map_partitions(_Joined(), partitions) is None
            grown, grown_weights = _random_table(61, rows=1_500)
            stale = grown.partitions(weights=grown_weights, num_partitions=2)
            assert backend.map_partitions(query, stale) is None
            assert backend.map_partitions(query, partitions) is not None
        finally:
            pool.release_epoch(epoch)

    def test_closed_pool_degrades_not_raises(self):
        closed = ProcessPartitionPool(max_workers=1)
        closed.close()
        closed.close()  # idempotent
        assert not closed.available
        assert closed.fallback_reason == "pool closed"
        table, weights = _random_table(67, rows=300)
        assert closed.ensure_export(closed.new_epoch(), "x", table) is None
        assert closed.map_calls(stratum_permutations_task, [(None, ("g",))]) is None
        assert not closed.warm()


# -- configuration ------------------------------------------------------------------


class TestConfigValidation:
    def test_execution_backend_is_checked(self):
        with pytest.raises(ValueError, match="execution_backend"):
            BlinkDBConfig(execution_backend="gpu")
        for ok in ("threads", "processes"):
            assert BlinkDBConfig(execution_backend=ok).execution_backend == ok

    def test_worker_counts_are_checked(self):
        with pytest.raises(ValueError, match="partition_workers"):
            BlinkDBConfig(partition_workers=0)
        with pytest.raises(ValueError, match="procpool_workers"):
            BlinkDBConfig(procpool_workers=-1)
        with pytest.raises(ValueError, match="max_partitions"):
            BlinkDBConfig(max_partitions=0)

    def test_oversubscription_warns(self):
        cpu = os.cpu_count() or 1
        with pytest.warns(UserWarning, match="procpool_workers"):
            BlinkDBConfig(procpool_workers=cpu + 1)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            BlinkDBConfig(procpool_workers=cpu)


# -- the facade ---------------------------------------------------------------------


def _build_db(backend: str):
    from repro.core.blinkdb import BlinkDB
    from repro.workloads.conviva import conviva_query_templates, generate_sessions_table

    table = generate_sessions_table(num_rows=8_000, seed=11, num_cities=12)
    with warnings.catch_warnings():
        # procpool_workers may exceed this host's core count — deliberate here.
        warnings.simplefilter("ignore", UserWarning)
        config = BlinkDBConfig(
            sampling=SamplingConfig(
                largest_cap=300, min_cap=25, uniform_sample_fraction=0.1
            ),
            cluster=ClusterConfig(num_nodes=8),
            execution_backend=backend,
            procpool_workers=2 if backend == "processes" else 0,
        )
        db = BlinkDB(config)
    db.load_table(table, simulated_rows=100_000_000)
    db.register_workload(templates=conviva_query_templates())
    db.build_samples(storage_budget_fraction=0.5)
    return db


class TestFacadeProcessBackend:
    def test_backends_agree_and_close_cleanly(self):
        before = _shm_entries()
        sql = "SELECT COUNT(*), AVG(session_time) FROM sessions GROUP BY city"
        results = {}
        dbs = {}
        try:
            for backend in ("threads", "processes"):
                db = dbs[backend] = _build_db(backend)
                results[backend] = db.runtime.execute_partitioned(
                    sql, num_partitions=6, sim_workers=3
                )
            threads = {g.key: g for g in results["threads"]}
            processes = {g.key: g for g in results["processes"]}
            assert set(threads) == set(processes)
            for key, g in threads.items():
                for fn in g.aggregates:
                    assert g[fn].value == processes[key][fn].value, (key, fn)
                    assert (
                        g[fn].interval.half_width
                        == processes[key][fn].interval.half_width
                    ), (key, fn)
            stats = dbs["processes"]._procpool.stats()
            assert stats["queries"] >= 1
            gauges = dbs["processes"].metrics()["procpool"]
            series = {s["labels"]["name"]: s["value"] for s in gauges["series"]}
            assert series["queries"] >= 1
        finally:
            for db in dbs.values():
                db.close()
                db.close()  # idempotent
        assert _shm_entries() == before

    def test_context_manager_tears_down(self):
        before = _shm_entries()
        with _build_db("processes") as db:
            result = db.query("SELECT AVG(session_time) FROM sessions WITHIN 2 SECONDS")
            assert result is not None
        assert db._closed
        assert _shm_entries() == before
