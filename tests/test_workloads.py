"""Tests for the synthetic Conviva and TPC-H workload generators."""

import numpy as np
import pytest

from repro.sql.parser import parse_query
from repro.sql.templates import extract_template
from repro.workloads.conviva import (
    conviva_extended_templates,
    conviva_query_templates,
    conviva_query_trace,
    generate_sessions_table,
)
from repro.workloads.tpch import (
    generate_customer_table,
    tpch_query_templates,
    tpch_query_trace,
)
from repro.workloads.tracegen import generate_trace, instantiate_template


class TestConvivaGenerator:
    def test_deterministic_given_seed(self):
        a = generate_sessions_table(num_rows=2_000, seed=5)
        b = generate_sessions_table(num_rows=2_000, seed=5)
        assert a.column("city").values().tolist() == b.column("city").values().tolist()

    def test_row_count_and_columns(self, sessions_table):
        assert sessions_table.num_rows == 20_000
        for column in ("dt", "city", "customer", "country", "os", "session_time", "jointimems"):
            assert column in sessions_table.schema

    def test_dimension_columns_are_skewed(self, sessions_table):
        frequencies = np.asarray(list(sessions_table.value_frequencies(["city"]).values()))
        assert frequencies.max() > 10 * np.median(frequencies)

    def test_genre_is_near_uniform(self, sessions_table):
        frequencies = np.asarray(list(sessions_table.value_frequencies(["genre"]).values()))
        assert frequencies.max() < 3 * frequencies.min()

    def test_measures_are_positive(self, sessions_table):
        assert (sessions_table.column("session_time").numeric() > 0).all()
        assert (sessions_table.column("jointimems").numeric() > 0).all()

    def test_templates_weights_sum_to_one(self):
        templates = conviva_query_templates()
        assert sum(t.weight for t in templates) == pytest.approx(1.0)
        assert len(templates) == 5

    def test_extended_templates_superset(self):
        extended = conviva_extended_templates()
        assert len(extended) > len(conviva_query_templates())
        assert sum(t.weight for t in extended) == pytest.approx(1.0)

    def test_template_columns_exist_in_table(self, sessions_table):
        for template in conviva_query_templates():
            for column in template.columns:
                assert column in sessions_table.schema

    def test_query_trace_parses_and_matches_templates(self, sessions_table):
        trace = conviva_query_trace(sessions_table, num_queries=40, seed=3)
        assert len(trace) == 40
        template_columns = {t.columns for t in conviva_query_templates()}
        for sql in trace:
            query = parse_query(sql)
            assert extract_template(query).columns in template_columns


class TestTPCHGenerator:
    def test_lineitem_schema(self, lineitem_table):
        for column in ("orderkey", "suppkey", "quantity", "discount", "shipmode", "extendedprice"):
            assert column in lineitem_table.schema

    def test_value_domains(self, lineitem_table):
        quantity = lineitem_table.column("quantity").numeric()
        discount = lineitem_table.column("discount").numeric()
        assert quantity.min() >= 1 and quantity.max() <= 50
        assert discount.min() >= 0.0 and discount.max() <= 0.10
        modes = set(lineitem_table.column("shipmode").values().tolist())
        assert modes <= {"AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR"}

    def test_orders_and_customer_dimension_tables(self, orders_table):
        assert orders_table.column("orderkey").distinct_count() == orders_table.num_rows
        customers = generate_customer_table(num_customers=500)
        assert customers.num_rows == 500

    def test_receipt_after_ship(self, lineitem_table):
        ship = lineitem_table.column("shipdate").numeric()
        receipt = lineitem_table.column("receiptdt").numeric()
        assert (receipt > ship).all()

    def test_templates(self):
        templates = tpch_query_templates()
        assert len(templates) == 6
        assert sum(t.weight for t in templates) == pytest.approx(1.0)

    def test_trace_generation(self, lineitem_table):
        trace = tpch_query_trace(lineitem_table, num_queries=20, seed=1)
        assert len(trace) == 20
        for sql in trace:
            parse_query(sql)


class TestTraceGenerator:
    def test_instantiate_includes_bounds(self, sessions_table):
        rng = np.random.default_rng(0)
        template = conviva_query_templates()[0]
        with_error = instantiate_template(
            template, sessions_table, rng, measure_columns=("session_time",),
            error_bound_percent=10,
        )
        assert "ERROR WITHIN 10%" in with_error
        with_time = instantiate_template(
            template, sessions_table, rng, measure_columns=("session_time",),
            time_bound_seconds=5,
        )
        assert "WITHIN 5 SECONDS" in with_time

    def test_trace_respects_template_weights(self, sessions_table):
        templates = conviva_query_templates()
        trace = generate_trace(templates, sessions_table, num_queries=300, seed=9)
        counts = {t.columns: 0 for t in templates}
        for sql in trace:
            counts[extract_template(parse_query(sql)).columns] += 1
        heaviest = max(templates, key=lambda t: t.weight).columns
        assert counts[heaviest] == max(counts.values())

    def test_trace_requires_templates(self, sessions_table):
        with pytest.raises(ValueError):
            generate_trace([], sessions_table)

    def test_predicate_constants_come_from_table(self, sessions_table):
        rng = np.random.default_rng(2)
        template = conviva_query_templates()[1]  # (country, dt)
        sql = instantiate_template(template, sessions_table, rng)
        query = parse_query(sql)
        # Every WHERE constant should match at least one row.
        from repro.engine.expressions import evaluate_predicate

        if query.where is not None:
            assert evaluate_predicate(query.where, sessions_table).sum() > 0
