"""Storage-layer tests of the streaming-ingest path.

Covers :meth:`Column.append_values` (stable dictionary-code remapping),
:meth:`Table.append_batch` (immutability of the old generation, incremental
zone-map extension), the incremental statistics merge, the catalog's
generation counter, and the zone-map carry-forward of column-preserving
table copies (``with_column`` / ``project``).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.storage.table as table_module
from repro.common.errors import SchemaError
from repro.ingest.batch import columns_from_rows
from repro.storage.catalog import Catalog
from repro.storage.column import Column
from repro.storage.statistics import (
    compute_statistics,
    extend_statistics,
    merge_column_statistics,
)
from repro.storage.table import Table
from repro.storage.zonemaps import build_zone_map_index, extend_zone_map_index


def make_table(rows: int = 100, name: str = "t") -> Table:
    return Table.from_dict(
        name,
        {
            "key": [f"k{i % 7}" for i in range(rows)],
            "hits": list(range(rows)),
            "score": [0.5 * i for i in range(rows)],
        },
    )


BATCH = {
    "key": ["k1", "k_new", "k2", "k_new"],
    "hits": [1000, 1001, 1002, 1003],
    "score": [1.0, 2.0, float("nan"), 4.0],
}


class TestColumnAppend:
    def test_string_codes_stay_stable(self):
        column = Column.from_values("key", ["b", "a", "b", "c"])
        appended = column.append_values(["c", "z", "a", "z"])
        # Old codes untouched, novel labels appended after the old dictionary.
        assert list(appended.data[:4]) == list(column.data)
        assert list(appended.dictionary) == ["a", "b", "c", "z"]
        assert list(appended.values()) == ["b", "a", "b", "c", "c", "z", "a", "z"]

    def test_numeric_append_and_type_error(self):
        column = Column.from_values("hits", [1, 2, 3])
        appended = column.append_values([4, 5])
        assert list(appended.data) == [1, 2, 3, 4, 5]
        assert appended.data.dtype == np.int64

    def test_empty_append_returns_self(self):
        column = Column.from_values("hits", [1, 2, 3])
        assert column.append_values([]) is column


class TestTableAppendBatch:
    def test_appends_rows_and_leaves_old_generation_untouched(self):
        table = make_table(50)
        grown = table.append_batch(BATCH)
        assert table.num_rows == 50
        assert grown.num_rows == 54
        assert grown.column("hits").value_at(50) == 1000
        assert grown.column("key").value_at(51) == "k_new"
        # The old generation's arrays are shared, not copied or mutated.
        assert table.column("key").dictionary.shape[0] == 7
        assert grown.column("key").dictionary.shape[0] == 8

    def test_schema_mismatch_rejected(self):
        table = make_table(10)
        with pytest.raises(SchemaError):
            table.append_batch({"key": ["a"], "hits": [1]})  # missing score
        with pytest.raises(SchemaError):
            table.append_batch({**BATCH, "bogus": [1, 2, 3, 4]})
        with pytest.raises(SchemaError):
            table.append_batch({"key": ["a"], "hits": [1, 2], "score": [0.1]})

    def test_empty_batch_is_identity(self):
        table = make_table(10)
        assert table.append_batch({"key": [], "hits": [], "score": []}) is table

    @pytest.mark.parametrize("block_rows", [8, 16, 64])
    def test_zone_index_extension_matches_full_rebuild(self, block_rows):
        table = make_table(100)
        table.zone_map_index(block_rows)
        grown = table.append_batch(BATCH)
        assert grown.has_zone_map_index(block_rows)
        extended = grown.zone_map_index(block_rows)
        rebuilt = build_zone_map_index(grown, block_rows)
        assert extended.num_rows == rebuilt.num_rows
        assert len(extended.blocks) == len(rebuilt.blocks)
        for got, want in zip(extended.blocks, rebuilt.blocks):
            assert (got.row_start, got.row_end) == (want.row_start, want.row_end)
            for name in ("key", "hits", "score"):
                got_zone, want_zone = got.zones[name], want.zones[name]
                assert _zone_bounds_equal(got_zone.minimum, want_zone.minimum)
                assert _zone_bounds_equal(got_zone.maximum, want_zone.maximum)
                assert got_zone.null_count == want_zone.null_count
        for name in ("key", "hits", "score"):
            got_zone = extended.column_zones[name]
            want_zone = rebuilt.column_zones[name]
            assert _zone_bounds_equal(got_zone.minimum, want_zone.minimum)
            assert _zone_bounds_equal(got_zone.maximum, want_zone.maximum)
            assert got_zone.null_count == want_zone.null_count

    def test_extension_is_append_only(self):
        table = make_table(100)
        index = table.zone_map_index(16)
        with pytest.raises(ValueError):
            extend_zone_map_index(index, make_table(50), 16)
        with pytest.raises(ValueError):
            extend_zone_map_index(index, make_table(200), 32)


def _zone_bounds_equal(a, b) -> bool:
    if a != a and b != b:  # both NaN
        return True
    return a == b


class TestZoneCarryForward:
    """Regression: column-preserving copies must not drop the cached index."""

    def test_with_column_carries_index_without_rebuild(self, monkeypatch):
        table = make_table(100)
        table.zone_map_index(16)

        def forbid_build(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("with_column must not rebuild the zone-map index")

        monkeypatch.setattr(table_module, "build_zone_map_index", forbid_build)
        updated = table.with_column(Column.from_values("flag", [i % 2 for i in range(100)]))
        assert updated.has_zone_map_index(16)
        index = updated.zone_map_index(16)  # cached: would raise if rebuilt
        assert index.column_zones["flag"].maximum == 1
        # Untouched columns keep their exact zones.
        original = table.zone_map_index(16)
        for got, want in zip(index.blocks, original.blocks):
            assert got.zones["hits"] == want.zones["hits"]

    def test_with_column_replacement_recomputes_only_that_column(self):
        table = make_table(100)
        before = table.zone_map_index(16)
        replaced = table.with_column(Column.from_values("hits", [5] * 100))
        index = replaced.zone_map_index(16)
        assert index.column_zones["hits"].minimum == 5
        assert index.column_zones["hits"].maximum == 5
        for got, want in zip(index.blocks, before.blocks):
            assert got.zones["score"] == want.zones["score"]

    def test_project_carries_restricted_index(self, monkeypatch):
        table = make_table(100)
        table.zone_map_index(16)
        monkeypatch.setattr(
            table_module,
            "build_zone_map_index",
            lambda *a, **k: pytest.fail("project must not rebuild the zone-map index"),
        )
        projected = table.project(["key", "hits"])
        assert projected.has_zone_map_index(16)
        index = projected.zone_map_index(16)
        assert set(index.column_zones) == {"key", "hits"}

    def test_row_reordering_copies_still_drop_the_index(self):
        table = make_table(100)
        table.zone_map_index(16)
        assert not table.take(np.arange(99, -1, -1)).has_zone_map_index(16)
        assert not table.sort_by(["key"]).has_zone_map_index(16)


class TestStatisticsMerge:
    def test_incremental_merge_matches_full_rescan_exactly_where_it_can(self):
        table = make_table(80)
        grown = table.append_batch(BATCH)
        merged = extend_statistics(compute_statistics(table), grown, 80)
        full = compute_statistics(grown)
        assert merged.num_rows == full.num_rows == 84
        for name in ("hits", "score"):
            got, want = merged.columns[name], full.columns[name]
            assert _zone_bounds_equal(got.min_value, want.min_value)
            assert _zone_bounds_equal(got.max_value, want.max_value)
            assert got.null_count == want.null_count
            if want.mean == want.mean and got.mean is not None:
                assert got.mean == pytest.approx(want.mean, nan_ok=True)
        # String distinct counts recover exactness from the dictionary.
        assert merged.columns["key"].distinct_count == full.columns["key"].distinct_count == 8
        assert not merged.columns["key"].estimated or merged.columns["key"].distinct_count == 8
        # Numeric distinct counts are flagged as estimates.
        assert merged.columns["hits"].estimated

    def test_mean_std_merge_uses_chans_update(self):
        table_a = Table.from_dict("a", {"x": [1.0, 2.0, 3.0, 10.0]})
        table_b = Table.from_dict("b", {"x": [4.0, 5.0, 6.0]})
        merged = merge_column_statistics(
            compute_statistics(table_a).columns["x"],
            compute_statistics(table_b).columns["x"],
        )
        everything = np.array([1.0, 2.0, 3.0, 10.0, 4.0, 5.0, 6.0])
        assert merged.mean == pytest.approx(float(np.mean(everything)))
        assert merged.std == pytest.approx(float(np.std(everything, ddof=1)))

    def test_merge_requires_contiguous_coverage(self):
        table = make_table(80)
        grown = table.append_batch(BATCH)
        with pytest.raises(ValueError):
            extend_statistics(compute_statistics(table), grown, 79)


class TestCatalogGenerations:
    def test_replace_table_bumps_generation_and_keeps_families(self):
        catalog = Catalog()
        table = make_table(50)
        catalog.register_table(table)
        assert catalog.generation("t") == 0

        class FakeFamily:
            table_name = "t"
            resolutions = ()
            smallest = largest = None
            storage_bytes = 0

        catalog.register_uniform_family("t", FakeFamily())
        grown = table.append_batch(BATCH)
        generation = catalog.replace_table(grown)
        assert generation == 1
        assert catalog.generation("t") == 1
        assert catalog.table("t").num_rows == 54
        assert catalog.uniform_family("t") is not None  # families survive
        assert catalog.statistics("t").num_rows == 54

    def test_register_overwrite_still_drops_families_and_bumps(self):
        catalog = Catalog()
        table = make_table(50)
        catalog.register_table(table)
        catalog.register_table(make_table(60), overwrite=True)
        assert catalog.generation("t") == 1
        assert catalog.uniform_family("t") is None


class TestBatchNormalisation:
    def test_rows_and_columnar_forms_agree(self):
        table = make_table(10)
        rows = [
            {"key": "k1", "hits": 7, "score": 0.5},
            {"key": "k9", "hits": 8, "score": 1.5},
        ]
        columnar = {"key": ["k1", "k9"], "hits": [7, 8], "score": [0.5, 1.5]}
        a = columns_from_rows(rows, table.schema)
        b = columns_from_rows(columnar, table.schema)
        for name in table.schema.names:
            assert list(a[name]) == list(b[name])
        assert a["hits"].dtype == np.int64

    def test_missing_and_extra_columns_rejected(self):
        table = make_table(10)
        with pytest.raises(SchemaError):
            columns_from_rows([{"key": "a", "hits": 1}], table.schema)
        with pytest.raises(SchemaError):
            columns_from_rows([{"key": "a", "hits": 1, "score": 0.1, "x": 2}], table.schema)
        with pytest.raises(SchemaError):
            columns_from_rows({"key": ["a"], "hits": [1]}, table.schema)
