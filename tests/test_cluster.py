"""Tests for the cluster simulator: nodes, placement, cost model, simulator."""

import pytest

from repro.common.config import ClusterConfig
from repro.common.errors import CatalogError
from repro.common.units import GB, MB, TB
from repro.cluster.cost_model import CostModel, StorageTier
from repro.cluster.node import Node
from repro.cluster.placement import place_blocks
from repro.cluster.simulator import ClusterSimulator
from repro.storage.block import split_into_blocks


@pytest.fixture()
def config() -> ClusterConfig:
    return ClusterConfig(num_nodes=10)


class TestNode:
    def test_store_and_cache_accounting(self, config):
        node = Node(0, config)
        node.store("t", 10 * GB)
        cached = node.cache("t", 4 * GB)
        assert cached == 4 * GB
        assert node.stored_bytes("t") == 10 * GB
        assert node.cached_bytes_of("t") == 4 * GB

    def test_cache_admission_bounded_by_memory(self, config):
        node = Node(0, config)
        node.store("t", 200 * GB)
        cached = node.cache("t", 200 * GB)
        assert cached == config.memory_per_node_bytes

    def test_scan_time_cached_is_faster(self, config):
        fast = Node(0, config)
        slow = Node(1, config)
        fast.store("t", 10 * GB)
        fast.cache("t", 10 * GB)
        slow.store("t", 10 * GB)
        assert fast.scan_seconds("t") < slow.scan_seconds("t")

    def test_evict(self, config):
        node = Node(0, config)
        node.store("t", GB)
        node.cache("t", GB)
        assert node.evict("t") == GB
        assert node.cached_bytes_of("t") == 0

    def test_negative_rejected(self, config):
        node = Node(0, config)
        with pytest.raises(ValueError):
            node.store("t", -1)


class TestPlacement:
    def test_round_robin_balances_bytes(self, config):
        blocks = split_into_blocks("t", 10_000_000, 100, 128 * MB)
        placement = place_blocks(blocks, config.num_nodes)
        per_node = placement.bytes_per_node(blocks, config.num_nodes)
        assert max(per_node) - min(per_node) <= 128 * MB

    def test_start_node_rotation(self):
        blocks = split_into_blocks("t", 1000, 100, 10_000)
        a = place_blocks(blocks, 4, start_node=0)
        b = place_blocks(blocks, 4, start_node=1)
        assert a.node_of(blocks[0]) != b.node_of(blocks[0])

    def test_blocks_on_node(self):
        blocks = split_into_blocks("t", 1000, 100, 10_000)
        placement = place_blocks(blocks, 3)
        found = sum(len(placement.blocks_on_node(n, blocks)) for n in range(3))
        assert found == len(blocks)


class TestCostModel:
    def test_latency_monotone_in_bytes(self, config):
        model = CostModel(config)
        small = model.estimate(1 * GB).total_seconds
        large = model.estimate(100 * GB).total_seconds
        assert large > small

    def test_cached_faster_than_disk(self, config):
        model = CostModel(config)
        disk = model.estimate(1 * TB, cached_fraction=0.0).total_seconds
        memory = model.estimate(1 * TB, cached_fraction=1.0).total_seconds
        assert memory < disk / 3

    def test_full_table_scan_is_minutes_at_paper_scale(self):
        # The paper quotes tens of minutes for a 10 TB disk scan on 100 nodes.
        model = CostModel(ClusterConfig(num_nodes=100))
        latency = model.estimate(10 * TB, cached_fraction=0.0).total_seconds
        assert 300 < latency < 3600

    def test_small_scan_dominated_by_startup(self, config):
        model = CostModel(config)
        estimate = model.estimate(10 * MB)
        assert estimate.startup_seconds > estimate.scan_seconds

    def test_tier_classification(self, config):
        model = CostModel(config)
        assert model.tier_of(1.0) is StorageTier.MEMORY
        assert model.tier_of(0.0) is StorageTier.DISK
        assert model.tier_of(0.5) is StorageTier.MIXED

    def test_max_bytes_within_inverts_estimate(self, config):
        model = CostModel(config)
        budget = 5.0
        max_bytes = model.max_bytes_within(budget, cached_fraction=0.0)
        assert model.estimate(max_bytes).total_seconds <= budget
        assert model.estimate(int(max_bytes * 1.3) + GB).total_seconds > budget

    def test_max_bytes_within_zero_budget(self, config):
        model = CostModel(config)
        assert model.max_bytes_within(0.0) == 0

    def test_negative_bytes_rejected(self, config):
        with pytest.raises(ValueError):
            CostModel(config).estimate(-1)


class TestClusterSimulator:
    def test_register_and_describe(self, config):
        sim = ClusterSimulator(config)
        info = sim.register_dataset("t", num_rows=1_000_000, row_width_bytes=100, cache=False)
        assert info.size_bytes == 100_000_000
        assert sim.has_dataset("t")
        assert "t" in sim.describe()

    def test_duplicate_registration_rejected(self, config):
        sim = ClusterSimulator(config)
        sim.register_dataset("t", 100, 10)
        with pytest.raises(CatalogError):
            sim.register_dataset("t", 100, 10)

    def test_cache_request_fraction(self, config):
        sim = ClusterSimulator(config)
        info = sim.register_dataset("t", 1_000_000, 100, cache=True)
        assert info.cached_fraction == pytest.approx(1.0, abs=0.01)

    def test_cache_spills_when_exceeding_cluster_memory(self):
        sim = ClusterSimulator(ClusterConfig(num_nodes=2))
        huge_rows = int(3 * 68 * GB / 100)  # ~3x the 2-node memory
        info = sim.register_dataset("big", huge_rows, 100, cache=True)
        assert info.cached_fraction < 0.9

    def test_simulated_scan_latency_scales_with_rows(self, config):
        sim = ClusterSimulator(config)
        sim.register_dataset("t", 50_000_000, 100, cache=False)
        full = sim.simulate_scan("t")
        partial = sim.simulate_scan("t", rows_to_read=1_000_000)
        assert full.latency_seconds > partial.latency_seconds
        assert full.rows_read == 50_000_000

    def test_reuse_rows_reduces_latency(self, config):
        sim = ClusterSimulator(config)
        sim.register_dataset("t", 50_000_000, 100, cache=False)
        cold = sim.simulate_scan("t", rows_to_read=10_000_000)
        warm = sim.simulate_scan("t", rows_to_read=10_000_000, reuse_rows=8_000_000)
        assert warm.latency_seconds < cold.latency_seconds

    def test_max_rows_within_budget(self, config):
        sim = ClusterSimulator(config)
        sim.register_dataset("t", 500_000_000, 100, cache=False)
        rows = sim.max_rows_within("t", time_budget_seconds=5.0)
        assert 0 < rows < 500_000_000
        assert sim.simulate_scan("t", rows_to_read=rows).latency_seconds <= 5.0

    def test_unregister(self, config):
        sim = ClusterSimulator(config)
        sim.register_dataset("t", 100, 10)
        sim.unregister_dataset("t")
        assert not sim.has_dataset("t")
        with pytest.raises(CatalogError):
            sim.simulate_scan("t")
