"""Tests for repro.common.rng."""

import numpy as np

from repro.common.rng import derive_rng, make_rng, stable_rng


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42)
        b = make_rng(42)
        assert np.array_equal(a.integers(0, 100, 10), b.integers(0, 100, 10))

    def test_different_seeds_differ(self):
        a = make_rng(1)
        b = make_rng(2)
        assert not np.array_equal(a.integers(0, 1_000_000, 20), b.integers(0, 1_000_000, 20))

    def test_none_seed_is_deterministic(self):
        a = make_rng(None)
        b = make_rng(None)
        assert np.array_equal(a.integers(0, 100, 5), b.integers(0, 100, 5))


class TestDeriveRng:
    def test_same_labels_same_parent_state_match(self):
        parent_a = make_rng(7)
        parent_b = make_rng(7)
        child_a = derive_rng(parent_a, "samples", ("city",))
        child_b = derive_rng(parent_b, "samples", ("city",))
        assert np.array_equal(child_a.integers(0, 100, 10), child_b.integers(0, 100, 10))

    def test_different_labels_differ(self):
        parent = make_rng(7)
        child_a = derive_rng(parent, "a")
        child_b = derive_rng(parent, "b")
        assert not np.array_equal(child_a.integers(0, 10**6, 20), child_b.integers(0, 10**6, 20))


class TestStableRng:
    def test_label_keyed_and_parent_free(self):
        a = stable_rng("uniform-permutation", "sessions", 1000)
        b = stable_rng("uniform-permutation", "sessions", 1000)
        assert np.array_equal(a.permutation(50), b.permutation(50))

    def test_distinct_labels_distinct_permutations(self):
        a = stable_rng("perm", "table_a")
        b = stable_rng("perm", "table_b")
        assert not np.array_equal(a.permutation(100), b.permutation(100))
