"""Property-based tests for the parser round-trip and the MILP solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimizer.candidates import CandidateColumnSet
from repro.optimizer.milp import SampleSelectionProblem
from repro.optimizer.solver import solve_branch_and_bound, solve_greedy
from repro.sql.parser import parse_query
from repro.sql.templates import QueryTemplate

identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True)
string_literals = st.from_regex(r"[A-Za-z0-9 _.-]{1,12}", fullmatch=True)
numbers = st.integers(min_value=0, max_value=10_000)


@st.composite
def generated_queries(draw):
    """Generate syntactically valid BlinkQL strings."""
    table = draw(identifiers)
    aggregate = draw(
        st.sampled_from(["COUNT(*)", "SUM({c})", "AVG({c})", "QUANTILE({c}, 0.9)"])
    ).format(c=draw(identifiers))
    sql = f"SELECT {aggregate} FROM {table}"

    num_predicates = draw(st.integers(min_value=0, max_value=3))
    predicates = []
    for _ in range(num_predicates):
        column = draw(identifiers)
        if draw(st.booleans()):
            predicates.append(f"{column} = '{draw(string_literals)}'")
        else:
            predicates.append(f"{column} >= {draw(numbers)}")
    if predicates:
        connector = draw(st.sampled_from([" AND ", " OR "]))
        sql += " WHERE " + connector.join(predicates)

    if draw(st.booleans()):
        sql += f" GROUP BY {draw(identifiers)}"

    bound = draw(st.sampled_from(["none", "error", "time"]))
    if bound == "error":
        sql += f" ERROR WITHIN {draw(st.integers(min_value=1, max_value=50))}% AT CONFIDENCE 95%"
    elif bound == "time":
        sql += f" WITHIN {draw(st.integers(min_value=1, max_value=60))} SECONDS"
    return sql


class TestParserProperties:
    @given(generated_queries())
    @settings(max_examples=120, deadline=None)
    def test_generated_queries_parse_and_expose_template(self, sql):
        query = parse_query(sql)
        assert query.table
        assert query.aggregates
        # Template columns are exactly the WHERE ∪ GROUP BY columns.
        assert query.template_columns() == query.where_columns() | query.group_by_columns()
        # At most one bound is ever present.
        assert not (query.error_bound is not None and query.time_bound is not None)

    @given(generated_queries())
    @settings(max_examples=60, deadline=None)
    def test_parsing_is_deterministic(self, sql):
        assert parse_query(sql) == parse_query(sql)


@st.composite
def milp_problems(draw):
    """Random small sample-selection problems with consistent coefficients."""
    num_candidates = draw(st.integers(min_value=1, max_value=10))
    num_templates = draw(st.integers(min_value=1, max_value=6))
    candidates = tuple(
        CandidateColumnSet(
            columns=(f"c{i}",),
            storage_bytes=draw(st.integers(min_value=1, max_value=100)),
            delta=draw(st.integers(min_value=0, max_value=50)),
            distinct_count=draw(st.integers(min_value=1, max_value=100)),
        )
        for i in range(num_candidates)
    )
    templates = tuple(
        QueryTemplate("t", (f"t{i}",), weight=draw(st.floats(min_value=0.0, max_value=1.0)))
        for i in range(num_templates)
    )
    deltas = tuple(draw(st.integers(min_value=0, max_value=50)) for _ in range(num_templates))
    coverage = np.array(
        [
            [draw(st.floats(min_value=0.0, max_value=1.0)) for _ in range(num_candidates)]
            for _ in range(num_templates)
        ]
    )
    storage = np.array([c.storage_bytes for c in candidates], dtype=float)
    budget = draw(st.integers(min_value=0, max_value=300))
    return SampleSelectionProblem(
        candidates=candidates,
        templates=templates,
        template_deltas=deltas,
        coverage=coverage,
        storage_costs=storage,
        storage_budget_bytes=budget,
    )


class TestSolverProperties:
    @given(milp_problems())
    @settings(max_examples=40, deadline=None)
    def test_branch_and_bound_dominates_greedy_and_is_feasible(self, problem):
        greedy = solve_greedy(problem)
        exact = solve_branch_and_bound(problem, time_limit_seconds=10)
        assert problem.is_feasible(greedy.selection)
        assert problem.is_feasible(exact.selection)
        assert exact.objective >= greedy.objective - 1e-9

    @given(milp_problems())
    @settings(max_examples=25, deadline=None)
    def test_exact_solver_matches_brute_force(self, problem):
        best = 0.0
        for mask in range(2**problem.num_candidates):
            selection = np.array(
                [(mask >> j) & 1 for j in range(problem.num_candidates)], dtype=bool
            )
            if problem.is_feasible(selection):
                best = max(best, problem.objective(selection))
        result = solve_branch_and_bound(problem, time_limit_seconds=10)
        assert result.objective == pytest.approx(best, abs=1e-9)

    @given(milp_problems())
    @settings(max_examples=40, deadline=None)
    def test_objective_monotone_under_relaxed_budget(self, problem):
        from dataclasses import replace

        result = solve_branch_and_bound(problem, time_limit_seconds=10)
        relaxed = replace(problem, storage_budget_bytes=problem.storage_budget_bytes * 2 + 100)
        relaxed_result = solve_branch_and_bound(relaxed, time_limit_seconds=10)
        assert relaxed_result.objective >= result.objective - 1e-9
