"""Property-based tests (hypothesis) for the sampling layer invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import SamplingConfig
from repro.sampling.family import StratifiedSampleFamily, verify_nesting
from repro.sampling.skew import delta_skew, stratified_sample_rows, zipf_frequencies
from repro.sampling.stratified import build_stratified_resolution
from repro.sampling.uniform import build_uniform_resolution, uniform_permutation
from repro.storage.table import Table


def make_table(frequencies: list[int]) -> Table:
    """A one-dimension table whose key column has the given value frequencies."""
    keys = []
    values = []
    for index, frequency in enumerate(frequencies):
        keys.extend([f"k{index:03d}"] * frequency)
        values.extend(float(v) for v in range(frequency))
    return Table.from_dict("prop", {"key": keys, "value": values})


frequency_lists = st.lists(st.integers(min_value=1, max_value=120), min_size=1, max_size=25)


class TestStratifiedInvariants:
    @given(frequency_lists, st.integers(min_value=1, max_value=150))
    @settings(max_examples=50, deadline=None)
    def test_cap_and_coverage_invariants(self, frequencies, cap):
        table = make_table(frequencies)
        resolution = build_stratified_resolution(table, ("key",), cap)

        # 1. No stratum exceeds the cap.
        sample_frequencies = resolution.table.value_frequencies(["key"])
        assert all(count <= cap for count in sample_frequencies.values())

        # 2. Every distinct value of the original table is represented.
        assert len(sample_frequencies) == len(frequencies)

        # 3. Sample size matches the closed-form row count.
        assert resolution.num_rows == stratified_sample_rows(np.array(frequencies), cap)

        # 4. Weights reconstruct the original population size (up to fp rounding).
        assert resolution.represented_rows == pytest_approx(sum(frequencies))

        # 5. Rows from strata below the cap carry weight exactly 1.
        keys = resolution.table.column("key").values()
        for index, frequency in enumerate(frequencies):
            if frequency <= cap:
                mask = keys == f"k{index:03d}"
                assert np.allclose(resolution.weights[mask], 1.0)

    @given(frequency_lists, st.integers(min_value=2, max_value=80))
    @settings(max_examples=30, deadline=None)
    def test_family_nesting_and_storage(self, frequencies, cap):
        table = make_table(frequencies)
        config = SamplingConfig(largest_cap=cap, min_cap=1, resolution_ratio=2.0)
        family = StratifiedSampleFamily.build(table, ("key",), config)
        assert verify_nesting(family)
        assert family.storage_bytes == family.largest.size_bytes
        rows = [r.num_rows for r in family.resolutions]
        assert rows == sorted(rows)

    @given(frequency_lists, st.integers(min_value=1, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_delta_skew_bounds(self, frequencies, cap):
        delta = delta_skew(np.array(frequencies), cap)
        assert 0 <= delta <= len(frequencies)


class TestUniformInvariants:
    @given(
        st.integers(min_value=10, max_value=2_000),
        st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_uniform_sample_size_and_weights(self, num_rows, fraction):
        table = Table.from_dict(
            "u", {"v": list(range(num_rows))}
        )
        resolution = build_uniform_resolution(table, fraction)
        expected_rows = max(1, int(round(num_rows * fraction)))
        assert resolution.num_rows == expected_rows
        assert resolution.represented_rows == pytest_approx(num_rows)
        # Row indices are unique and valid.
        assert len(set(resolution.row_indices.tolist())) == resolution.num_rows
        assert resolution.row_indices.max() < num_rows

    @given(st.integers(min_value=10, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_nested_fractions_are_subsets(self, num_rows):
        table = Table.from_dict("u", {"v": list(range(num_rows))})
        permutation = uniform_permutation(table)
        small = build_uniform_resolution(table, 0.1, permutation)
        large = build_uniform_resolution(table, 0.5, permutation)
        assert set(small.row_indices.tolist()) <= set(large.row_indices.tolist())


class TestZipfFrequencies:
    @given(
        st.integers(min_value=1, max_value=500),
        st.floats(min_value=0.5, max_value=3.0),
        st.integers(min_value=0, max_value=50_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_zipf_frequencies_sum_and_monotonicity(self, num_values, s, total_rows):
        counts = zipf_frequencies(num_values, s, total_rows)
        assert counts.sum() == total_rows
        assert len(counts) == num_values
        assert all(a >= b for a, b in zip(counts, counts[1:]))


def pytest_approx(value, rel=1e-6):
    import pytest

    return pytest.approx(value, rel=rel)
