"""Tests for run-time sample-family selection (§4.1) and ELP sizing (§4.2)."""

import math

import pytest

from repro.common.config import ClusterConfig, SamplingConfig
from repro.common.errors import SampleNotFoundError
from repro.cluster.simulator import ClusterSimulator
from repro.engine.executor import QueryExecutor
from repro.runtime.selection import SampleFamilySelector
from repro.runtime.sizing import SampleSizer
from repro.sampling.builder import SampleBuilder
from repro.sql.ast import ErrorBound, TimeBound
from repro.sql.parser import parse_query
from repro.storage.catalog import Catalog
from repro.workloads.conviva import generate_sessions_table


@pytest.fixture(scope="module")
def setup():
    table = generate_sessions_table(num_rows=30_000, seed=7, num_cities=80)
    catalog = Catalog()
    simulator = ClusterSimulator(ClusterConfig(num_nodes=20))
    config = SamplingConfig(largest_cap=300, min_cap=20, uniform_sample_fraction=0.1)
    builder = SampleBuilder(catalog, config, simulator=simulator, scale_factor=1000.0)
    builder.build_from_column_sets(table, [("city", "os"), ("country",)])
    selector = SampleFamilySelector(catalog, QueryExecutor())
    sizer = SampleSizer(simulator)
    return table, catalog, simulator, selector, sizer


class TestFamilySelection:
    def test_superset_match_prefers_fewest_columns(self, setup):
        _, _, _, selector, _ = setup
        query = parse_query("SELECT COUNT(*) FROM sessions WHERE country = 'country_0001'")
        selection = selector.select(query)
        assert selection.reason == "superset-match"
        assert selection.family.key == ("country",)

    def test_superset_match_multi_column(self, setup):
        _, _, _, selector, _ = setup
        query = parse_query(
            "SELECT COUNT(*) FROM sessions WHERE city = 'city_0002' GROUP BY os"
        )
        selection = selector.select(query)
        assert selection.family.key == ("city", "os")
        assert selection.covers_query

    def test_no_filter_uses_uniform_family(self, setup):
        _, _, _, selector, _ = setup
        query = parse_query("SELECT AVG(session_time) FROM sessions")
        selection = selector.select(query)
        assert selection.reason == "no-filter-uniform"
        assert selection.family.key is None

    def test_probe_fallback_when_no_superset(self, setup):
        _, _, _, selector, _ = setup
        query = parse_query(
            "SELECT COUNT(*) FROM sessions WHERE genre = 'western' GROUP BY browser"
        )
        selection = selector.select(query)
        assert selection.reason == "probe-best-ratio"
        assert selection.probe is not None
        assert len(selection.probes) >= 2  # all families were probed

    def test_probe_statistics(self, setup):
        _, _, _, selector, _ = setup
        query = parse_query("SELECT COUNT(*) FROM sessions WHERE city = 'city_0001'")
        selection = selector.select(query)
        probe = selector.probe(query, selection.family.smallest)
        assert 0 <= probe.selectivity <= 1
        assert probe.rows_read == selection.family.smallest.num_rows
        assert probe.num_groups >= 1

    def test_missing_samples_raise(self):
        catalog = Catalog()
        table = generate_sessions_table(num_rows=100, seed=1)
        catalog.register_table(table)
        selector = SampleFamilySelector(catalog, QueryExecutor())
        with pytest.raises(SampleNotFoundError):
            selector.select(parse_query("SELECT COUNT(*) FROM sessions"))

    def test_disjunctive_branches_are_disjoint(self, setup):
        table, _, _, selector, _ = setup
        query = parse_query(
            "SELECT COUNT(*) FROM sessions WHERE city = 'city_0001' OR os = 'Linux'"
        )
        branches = selector.disjunctive_branches(query)
        assert len(branches) == 2
        from repro.engine.expressions import evaluate_predicate

        masks = [evaluate_predicate(branch, table) for branch in branches]
        assert not (masks[0] & masks[1]).any()  # disjoint by construction
        union = masks[0] | masks[1]
        original = evaluate_predicate(query.where, table)
        assert (union == original).all()

    def test_conjunctive_query_single_branch(self, setup):
        _, _, _, selector, _ = setup
        query = parse_query("SELECT COUNT(*) FROM sessions WHERE city = 'c' AND os = 'Win7'")
        assert len(selector.disjunctive_branches(query)) == 1

    def test_select_for_branch_uses_branch_columns(self, setup):
        _, _, _, selector, _ = setup
        query = parse_query(
            "SELECT COUNT(*) FROM sessions WHERE country = 'country_0001' OR genre = 'western'"
        )
        branches = selector.disjunctive_branches(query)
        first = selector.select_for_branch(query, branches[0])
        assert first.family.key == ("country",)


class TestSizing:
    def _probe(self, setup, sql):
        _, _, _, selector, _ = setup
        query = parse_query(sql)
        selection = selector.select(query)
        probe = selection.probe or selector.probe(query, selection.family.smallest)
        return query, selection, probe

    def test_profile_error_decreases_and_latency_increases(self, setup):
        *_, sizer = setup
        query, selection, probe = self._probe(
            setup, "SELECT AVG(session_time) FROM sessions WHERE city = 'city_0001' GROUP BY os"
        )
        profile = sizer.build_profile(selection.family, probe)
        errors = [e.predicted_relative_error for e in profile]
        latencies = [e.predicted_latency_seconds for e in profile]
        finite_errors = [e for e in errors if math.isfinite(e)]
        assert finite_errors == sorted(finite_errors, reverse=True)
        # Latency grows (weakly) with resolution size; small resolutions are
        # startup-dominated so allow millisecond-level noise.
        for earlier, later in zip(latencies, latencies[1:]):
            assert later >= earlier - 1e-2
        assert latencies[-1] >= latencies[0]

    def test_error_bound_picks_smallest_satisfying_resolution(self, setup):
        *_, sizer = setup
        query, selection, probe = self._probe(
            setup, "SELECT COUNT(*) FROM sessions WHERE city = 'city_0001'"
        )
        loose = ErrorBound(error=0.5, confidence=0.95)
        tight = ErrorBound(error=0.02, confidence=0.95)
        loose_resolution, _, loose_ok = sizer.resolution_for_error(selection.family, probe, loose)
        tight_resolution, _, _ = sizer.resolution_for_error(selection.family, probe, tight)
        assert loose_ok
        assert loose_resolution.num_rows <= tight_resolution.num_rows

    def test_unsatisfiable_error_bound_returns_largest(self, setup):
        *_, sizer = setup
        query, selection, probe = self._probe(
            setup, "SELECT AVG(session_time) FROM sessions WHERE city = 'city_0005' GROUP BY os"
        )
        bound = ErrorBound(error=0.0001, confidence=0.95)
        resolution, _, satisfied = sizer.resolution_for_error(selection.family, probe, bound)
        assert not satisfied
        assert resolution.name == selection.family.largest.name

    def test_time_bound_picks_largest_fitting_resolution(self, setup):
        *_, sizer = setup
        query, selection, probe = self._probe(
            setup, "SELECT COUNT(*) FROM sessions WHERE city = 'city_0001' GROUP BY os"
        )
        generous = TimeBound(seconds=120.0)
        tight = TimeBound(seconds=1.0)
        generous_resolution, _, ok = sizer.resolution_for_time(selection.family, probe, generous)
        tight_resolution, _, _ = sizer.resolution_for_time(selection.family, probe, tight)
        assert ok
        assert generous_resolution.num_rows >= tight_resolution.num_rows

    def test_default_resolution_is_largest(self, setup):
        *_, sizer = setup
        query, selection, probe = self._probe(
            setup, "SELECT COUNT(*) FROM sessions WHERE city = 'city_0001'"
        )
        assert sizer.default_resolution(selection.family, probe) is selection.family.largest

    def test_sizer_without_simulator_uses_row_proxy(self, setup):
        query, selection, probe = self._probe(
            setup, "SELECT COUNT(*) FROM sessions WHERE city = 'city_0001'"
        )
        sizer = SampleSizer(simulator=None)
        profile = sizer.build_profile(selection.family, probe)
        assert all(e.predicted_latency_seconds > 0 for e in profile)
