"""Property-based tests for the partition-parallel aggregation algebra.

Three families of invariants:

* **Merge semantics** — partial-state merge is associative and commutative
  (up to floating-point rounding), verified with hypothesis-generated
  value/weight vectors.
* **Split-vs-whole equivalence** — for every supported aggregate, executing
  a query through N partitions (any N, any merge order) produces the same
  estimates and error bars as the whole-table path, verified over randomized
  tables/weights driven by seeds.
* **Anytime error bars** — finalizing fewer merged partitions (with the
  coverage-corrected weight scale) never shrinks an error bar: uncertainty
  widens monotonically as coverage drops.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.common.rng import make_rng
from repro.engine.accumulators import make_state
from repro.engine.executor import ExecutionContext, QueryExecutor
from repro.sql.parser import parse_query
from repro.storage.table import Table

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
positive_weights = st.floats(
    min_value=1.0, max_value=1e3, allow_nan=False, allow_infinity=False
)

AGGREGATES = ["count", "sum", "avg", "variance", "stddev", "quantile"]


def chunked_data(min_chunks=2, max_chunks=5):
    """(chunk list) strategy: a few (values, weights) vectors to merge."""

    def one_chunk(n):
        return st.tuples(
            arrays(np.float64, n, elements=finite_floats),
            arrays(np.float64, n, elements=positive_weights),
        )

    return st.lists(
        st.integers(min_value=0, max_value=30).flatmap(one_chunk),
        min_size=min_chunks,
        max_size=max_chunks,
    )


def _build(name, chunks):
    state = make_state(name, 0.5)
    for values, weights in chunks:
        state.update(values, weights)
    return state


def _merge_all(name, chunk_groups, order):
    states = [_build(name, [chunk_groups[i]]) for i in order]
    merged = states[0]
    for state in states[1:]:
        merged.merge(state)
    return merged


def _comparable(a, b):
    """Estimates agree in value and variance (NaN/inf-aware)."""
    if math.isnan(a.value):
        assert math.isnan(b.value)
    else:
        assert b.value == pytest.approx(a.value, rel=1e-9, abs=1e-9)
    if not math.isfinite(a.variance):
        assert not math.isfinite(b.variance)
    else:
        assert b.variance == pytest.approx(a.variance, rel=1e-6, abs=1e-9)


class TestMergeSemantics:
    @pytest.mark.parametrize("name", AGGREGATES)
    @given(chunks=chunked_data(min_chunks=2, max_chunks=2))
    @settings(max_examples=30, deadline=None)
    def test_merge_commutes(self, name, chunks):
        rows_read = sum(len(v) for v, _ in chunks) * 2 + 1
        ab = _merge_all(name, chunks, [0, 1]).finalize(rows_read, None)
        ba = _merge_all(name, chunks, [1, 0]).finalize(rows_read, None)
        _comparable(ab, ba)

    @pytest.mark.parametrize("name", AGGREGATES)
    @given(chunks=chunked_data(min_chunks=3, max_chunks=3))
    @settings(max_examples=30, deadline=None)
    def test_merge_associates(self, name, chunks):
        rows_read = sum(len(v) for v, _ in chunks) * 2 + 1
        left = _build(name, [chunks[0]])
        left.merge(_build(name, [chunks[1]]))
        left.merge(_build(name, [chunks[2]]))
        right_tail = _build(name, [chunks[1]])
        right_tail.merge(_build(name, [chunks[2]]))
        right = _build(name, [chunks[0]])
        right.merge(right_tail)
        _comparable(left.finalize(rows_read, None), right.finalize(rows_read, None))

    @pytest.mark.parametrize("name", AGGREGATES)
    @given(chunks=chunked_data())
    @settings(max_examples=30, deadline=None)
    def test_split_equals_whole_vectors(self, name, chunks):
        values = np.concatenate([v for v, _ in chunks])
        weights = np.concatenate([w for _, w in chunks])
        rows_read = len(values) * 2 + 1
        whole = _build(name, [(values, weights)]).finalize(rows_read, None)
        order = list(range(len(chunks)))
        merged = _merge_all(name, chunks, order).finalize(rows_read, None)
        _comparable(whole, merged)


SPLIT_SQL = (
    "SELECT COUNT(*), SUM(x), AVG(x), VARIANCE(x), STDDEV(x), QUANTILE(x, 0.8) "
    "FROM t WHERE f < 6 GROUP BY g"
)


def _random_table(seed, rows=3_000):
    rng = make_rng(seed)
    table = Table.from_dict(
        "t",
        {
            "g": [f"g{i}" for i in rng.integers(0, 5, rows)],
            "x": rng.lognormal(2.0, 0.8, rows).tolist(),
            "f": rng.integers(0, 10, rows).tolist(),
        },
    )
    weights = np.where(rng.random(rows) < 0.3, 1.0, rng.uniform(2.0, 40.0, rows))
    return table, weights


class TestSplitVsWholeExecution:
    """Acceptance criterion: N partitions, any N and merge order == whole path."""

    @pytest.mark.parametrize("seed", [11, 23, 47])
    @pytest.mark.parametrize("num_partitions", [2, 5, 16])
    def test_partitioned_execute_matches_whole(self, seed, num_partitions):
        table, weights = _random_table(seed)
        executor = QueryExecutor()
        query = parse_query(SPLIT_SQL)
        context = ExecutionContext(weights=weights, rows_read=table.num_rows)
        whole = executor.execute(query, table, context)
        split = executor.execute(query, table, context, num_partitions=num_partitions)
        assert [g.key for g in whole] == [g.key for g in split]
        for g_whole, g_split in zip(whole, split):
            for name in g_whole.aggregates:
                assert g_split[name].value == pytest.approx(
                    g_whole[name].value, rel=1e-9
                ), (seed, num_partitions, name)
                assert g_split[name].error_bar == pytest.approx(
                    g_whole[name].error_bar, rel=1e-6
                ), (seed, num_partitions, name)

    @pytest.mark.parametrize("seed", [5, 89])
    def test_merge_order_does_not_matter(self, seed):
        table, weights = _random_table(seed, rows=1_500)
        executor = QueryExecutor()
        query = parse_query(SPLIT_SQL)
        partitions = table.partitions(weights=weights, num_partitions=6)

        def merged_result(order):
            partials = [
                executor.partial_aggregate_partition(query, partitions[i]) for i in order
            ]
            merged = partials[0]
            for piece in partials[1:]:
                merged = merged.merge(piece)
            return executor.finalize(
                query,
                merged,
                ExecutionContext(weights=weights),
                rows_read=table.num_rows,
                population_read=float(np.sum(weights)),
            )

        forward = merged_result(list(range(6)))
        shuffled = merged_result([3, 0, 5, 1, 4, 2])
        for g_a, g_b in zip(forward, shuffled):
            assert g_a.key == g_b.key
            for name in g_a.aggregates:
                assert g_b[name].value == pytest.approx(g_a[name].value, rel=1e-9)
                assert g_b[name].error_bar == pytest.approx(
                    g_a[name].error_bar, rel=1e-6
                )

    @pytest.mark.parametrize("seed", [7, 31])
    def test_exact_path_matches_through_partitions(self, seed):
        table, _ = _random_table(seed, rows=1_000)
        executor = QueryExecutor()
        query = parse_query("SELECT COUNT(*), SUM(x) FROM t GROUP BY g")
        whole = executor.execute(query, table)
        split = executor.execute(query, table, num_partitions=7)
        assert whole.is_exact and split.is_exact
        for g_whole, g_split in zip(whole, split):
            assert g_split["count_star"].value == g_whole["count_star"].value
            assert g_split["sum_x"].value == pytest.approx(g_whole["sum_x"].value)


class TestAnytimeWidening:
    """Error bars widen monotonically as fewer partitions are merged."""

    NUM_PARTITIONS = 8

    def _table(self):
        # Each partition holds an identical copy of one value pattern, so the
        # per-prefix sample variance is stable and the widening is driven
        # purely by the shrinking coverage.
        pattern = np.concatenate([np.linspace(10.0, 50.0, 100)] * 1)
        values = np.tile(pattern, self.NUM_PARTITIONS)
        table = Table.from_dict("t", {"x": values.tolist()})
        weights = np.full(values.shape[0], 4.0)
        return table, weights

    @pytest.mark.parametrize("aggregate", ["COUNT(*)", "SUM(x)", "AVG(x)"])
    def test_error_bar_monotone_in_coverage(self, aggregate):
        table, weights = self._table()
        executor = QueryExecutor()
        query = parse_query(f"SELECT {aggregate} FROM t")
        context = ExecutionContext(weights=weights, rows_read=table.num_rows)
        partitions = table.partitions(weights=weights, num_partitions=self.NUM_PARTITIONS)
        population = float(np.sum(weights))

        error_bars = []
        merged = None
        for k, partition in enumerate(partitions, start=1):
            piece = executor.partial_aggregate_partition(query, partition)
            merged = piece if merged is None else merged.merge(piece)
            scale = population / merged.weight_scanned if k < len(partitions) else 1.0
            result = executor.finalize(
                query,
                merged,
                context,
                rows_read=merged.rows_scanned,
                population_read=population,
                weight_scale=scale,
            )
            error_bars.append(result.scalar().error_bar)

        # error_bars[k-1] is the anytime answer after k merges: fewer merged
        # partitions must never give a tighter bar.
        for narrower, wider in zip(error_bars[1:], error_bars[:-1]):
            assert wider >= narrower * (1.0 - 1e-9)

    def test_partial_coverage_point_estimates_stay_unbiased(self):
        table, weights = self._table()
        executor = QueryExecutor()
        query = parse_query("SELECT COUNT(*), AVG(x) FROM t")
        context = ExecutionContext(weights=weights, rows_read=table.num_rows)
        partitions = table.partitions(weights=weights, num_partitions=self.NUM_PARTITIONS)
        population = float(np.sum(weights))

        merged = executor.partial_aggregate_partition(query, partitions[0])
        merged = merged.merge(executor.partial_aggregate_partition(query, partitions[1]))
        partial = executor.finalize(
            query,
            merged,
            context,
            rows_read=merged.rows_scanned,
            population_read=population,
            weight_scale=population / merged.weight_scanned,
        )
        full = executor.execute(query, table, context)
        # The pattern repeats per partition, so the scaled partial answer
        # lands exactly on the full-coverage answer.
        assert partial.groups[0]["count_star"].value == pytest.approx(
            full.groups[0]["count_star"].value
        )
        assert partial.groups[0]["avg_x"].value == pytest.approx(
            full.groups[0]["avg_x"].value
        )
