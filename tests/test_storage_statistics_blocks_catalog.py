"""Tests for statistics, blocks, and the catalog."""

import pytest

from repro.common.errors import CatalogError
from repro.storage.block import Block, BlockSet, split_into_blocks
from repro.storage.catalog import Catalog, column_set_key
from repro.storage.statistics import compute_statistics, joint_frequencies
from repro.storage.table import Table


@pytest.fixture()
def table() -> Table:
    return Table.from_dict(
        "stats",
        {
            "skewed": ["a"] * 90 + ["b"] * 8 + ["c", "d"],
            "uniform": list(range(100)),
            "value": [float(i) for i in range(100)],
        },
    )


class TestStatistics:
    def test_distinct_counts(self, table):
        stats = compute_statistics(table)
        assert stats.column("skewed").distinct_count == 4
        assert stats.column("uniform").distinct_count == 100

    def test_numeric_summary(self, table):
        stats = compute_statistics(table)
        value = stats.column("value")
        assert value.min_value == 0.0
        assert value.max_value == 99.0
        assert value.mean == pytest.approx(49.5)

    def test_skew_ratio_orders_columns(self, table):
        stats = compute_statistics(table)
        assert stats.column("skewed").skew_ratio > stats.column("uniform").skew_ratio
        assert stats.most_skewed_columns(1) == ["skewed"]

    def test_table_level_fields(self, table):
        stats = compute_statistics(table)
        assert stats.num_rows == 100
        assert stats.size_bytes == table.size_bytes

    def test_joint_frequencies_sum_to_rows(self, table):
        freqs = joint_frequencies(table, ["skewed"])
        assert freqs.sum() == 100
        assert freqs.max() == 90


class TestBlocks:
    def test_split_covers_all_rows(self):
        blocks = split_into_blocks("d", num_rows=1000, row_width_bytes=100, block_bytes=25_000)
        assert blocks.total_rows == 1000
        assert len(blocks) == 4
        assert all(b.num_rows == 250 for b in blocks)

    def test_last_block_may_be_partial(self):
        blocks = split_into_blocks("d", num_rows=1001, row_width_bytes=100, block_bytes=25_000)
        assert len(blocks) == 5
        assert blocks[4].num_rows == 1

    def test_empty_dataset(self):
        blocks = split_into_blocks("d", 0, 100, 1000)
        assert len(blocks) == 0
        assert blocks.total_bytes == 0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            split_into_blocks("d", -1, 100, 1000)
        with pytest.raises(ValueError):
            split_into_blocks("d", 10, 0, 1000)
        with pytest.raises(ValueError):
            Block("d", 0, 10, 5, 100)

    def test_prefix_covering_rows(self):
        blocks = split_into_blocks("d", 1000, 100, 25_000)
        prefix = blocks.prefix_covering_rows(300)
        assert prefix.total_rows == 500  # two 250-row blocks
        assert len(prefix) == 2

    def test_difference_models_incremental_scan(self):
        blocks = split_into_blocks("d", 1000, 100, 25_000)
        small = blocks.prefix_covering_rows(250)
        large = blocks.prefix_covering_rows(1000)
        extra = large.difference(small)
        assert len(extra) == 3
        assert extra.total_rows == 750

    def test_blockset_rejects_foreign_blocks(self):
        block = Block("other", 0, 0, 10, 100)
        with pytest.raises(ValueError):
            BlockSet("d", [block])


class TestCatalog:
    def test_register_and_lookup(self, table):
        catalog = Catalog()
        catalog.register_table(table)
        assert catalog.has_table("stats")
        assert catalog.table("stats") is table
        assert catalog.statistics("stats").num_rows == 100

    def test_duplicate_registration_rejected(self, table):
        catalog = Catalog()
        catalog.register_table(table)
        with pytest.raises(CatalogError):
            catalog.register_table(table)

    def test_overwrite_invalidates_samples(self, table):
        catalog = Catalog()
        catalog.register_table(table)
        catalog.register_uniform_family("stats", object())
        catalog.register_stratified_family("stats", ["skewed"], object())
        catalog.register_table(table, overwrite=True)
        assert catalog.uniform_family("stats") is None
        assert catalog.stratified_families("stats") == {}

    def test_unknown_table_lookup(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.table("missing")

    def test_column_set_key_is_sorted(self):
        assert column_set_key(["b", "a"]) == ("a", "b")

    def test_stratified_family_keying(self, table):
        catalog = Catalog()
        catalog.register_table(table)
        family = object()
        catalog.register_stratified_family("stats", ["uniform", "skewed"], family)
        assert catalog.stratified_family("stats", ["skewed", "uniform"]) is family

    def test_iter_families_includes_uniform_first(self, table):
        catalog = Catalog()
        catalog.register_table(table)
        uniform = object()
        stratified = object()
        catalog.register_uniform_family("stats", uniform)
        catalog.register_stratified_family("stats", ["skewed"], stratified)
        families = list(catalog.iter_families("stats"))
        assert families[0] == (None, uniform)
        assert (("skewed",), stratified) in families

    def test_drop_table_and_family(self, table):
        catalog = Catalog()
        catalog.register_table(table)
        catalog.register_stratified_family("stats", ["skewed"], object())
        catalog.drop_stratified_family("stats", ["skewed"])
        with pytest.raises(CatalogError):
            catalog.drop_stratified_family("stats", ["skewed"])
        catalog.drop_table("stats")
        assert not catalog.has_table("stats")

    def test_describe(self, table):
        catalog = Catalog()
        catalog.register_table(table)
        summary = catalog.describe()
        assert summary["stats"]["rows"] == 100
