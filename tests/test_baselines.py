"""Tests for the full-scan, sampling-strategy, and online-aggregation baselines."""

import math

import pytest

from repro.baselines.full_scan import BaselineEngine, FullScanBaseline
from repro.baselines.online_agg import OnlineAggregationBaseline
from repro.baselines.strategies import build_strategies
from repro.common.config import ClusterConfig, SamplingConfig
from repro.workloads.conviva import conviva_query_templates, generate_sessions_table


@pytest.fixture(scope="module")
def table():
    return generate_sessions_table(num_rows=25_000, seed=31, num_cities=60)


@pytest.fixture(scope="module")
def strategies(table):
    config = SamplingConfig(largest_cap=250, min_cap=20, uniform_sample_fraction=0.1)
    return build_strategies(table, conviva_query_templates(), config, storage_budget_fraction=0.5)


class TestFullScanBaseline:
    def test_hive_slower_than_shark_disk_slower_than_cached(self, table):
        baseline = FullScanBaseline(
            table, ClusterConfig(num_nodes=100), simulated_rows=5_000_000_000
        )
        sql = "SELECT AVG(session_time) FROM sessions WHERE dt = 5 GROUP BY city"
        latencies = baseline.latency_sweep(sql)
        assert (
            latencies[BaselineEngine.HIVE_ON_HADOOP]
            > latencies[BaselineEngine.SHARK_NO_CACHE]
            > latencies[BaselineEngine.SHARK_CACHED]
        )

    def test_answers_are_exact(self, table):
        baseline = FullScanBaseline(table, ClusterConfig(num_nodes=10))
        result = baseline.execute("SELECT COUNT(*) FROM sessions", BaselineEngine.SHARK_CACHED)
        assert result.result.scalar().value == table.num_rows

    def test_caching_only_helps_when_data_fits_in_memory(self, table):
        cluster = ClusterConfig(num_nodes=100)
        # 2.5 TB equivalent fits the 6.8 TB cache; 17 TB does not.
        small = FullScanBaseline(table, cluster, simulated_rows=int(2.5e12 / table.row_width_bytes))
        large = FullScanBaseline(table, cluster, simulated_rows=int(17e12 / table.row_width_bytes))
        sql = "SELECT COUNT(*) FROM sessions"
        small_cached = small.execute(sql, BaselineEngine.SHARK_CACHED)
        large_cached = large.execute(sql, BaselineEngine.SHARK_CACHED)
        assert small_cached.cached_fraction > 0.9
        assert large_cached.cached_fraction < 0.5


class TestSamplingStrategies:
    def test_all_three_strategies_built(self, strategies):
        assert set(strategies) == {"multi-dimensional", "single-column", "uniform"}

    def test_storage_budgets_comparable(self, strategies, table):
        for strategy in strategies.values():
            assert strategy.storage_bytes <= 0.75 * table.size_bytes

    def test_single_column_strategy_has_only_single_column_families(self, strategies):
        catalog = strategies["single-column"].catalog
        for columns in catalog.stratified_families("sessions"):
            assert len(columns) == 1

    def test_multi_dimensional_wins_on_rare_multi_column_group(self, strategies, table):
        sql = (
            "SELECT AVG(session_time) FROM sessions WHERE city = 'city_0010' GROUP BY os"
        )
        budget = 4_000
        errors = {
            name: strategy.answer(sql, row_budget=budget).worst_relative_error
            for name, strategy in strategies.items()
        }
        assert errors["multi-dimensional"] <= errors["uniform"] * 1.5 or math.isinf(
            errors["uniform"]
        )

    def test_answer_with_row_budget_clips_rows(self, strategies):
        answer = strategies["uniform"].answer(
            "SELECT COUNT(*) FROM sessions WHERE dt = 3", row_budget=1_000
        )
        assert answer.rows_read <= 1_000

    def test_rows_to_reach_error_monotone_in_target(self, strategies):
        sql = "SELECT COUNT(*) FROM sessions WHERE city = 'city_0001'"
        strategy = strategies["multi-dimensional"]
        loose = strategy.rows_to_reach_error(sql, 0.5)
        tight = strategy.rows_to_reach_error(sql, 0.05)
        if loose is not None and tight is not None:
            assert tight >= loose

    def test_missing_groups_vs_exact(self, strategies, table):
        from repro.engine.executor import execute_exact
        from repro.sql.parser import parse_query

        sql = "SELECT COUNT(*) FROM sessions GROUP BY customer"
        exact = execute_exact(parse_query(sql), table)
        uniform_missing = strategies["uniform"].missing_groups(sql, exact, row_budget=2_000)
        stratified_missing = strategies["multi-dimensional"].missing_groups(sql, exact)
        # A stratified sample keeps at least one row of every stratum, so it has
        # zero subset error; a row-budgeted uniform sample does not.
        assert stratified_missing == 0
        assert stratified_missing <= uniform_missing


class TestOnlineAggregation:
    def test_error_shrinks_with_more_rows(self, table):
        ola = OnlineAggregationBaseline(table, ClusterConfig(num_nodes=10))
        sql = "SELECT AVG(session_time) FROM sessions WHERE dt = 5"
        small = ola.step(sql, 500)
        large = ola.step(sql, 10_000)
        assert large.worst_relative_error <= small.worst_relative_error

    def test_rows_to_reach_error(self, table):
        ola = OnlineAggregationBaseline(table, ClusterConfig(num_nodes=10))
        rows = ola.rows_to_reach_error("SELECT COUNT(*) FROM sessions WHERE dt = 5", 0.2)
        assert rows is not None
        assert rows <= table.num_rows

    def test_latency_includes_random_io_penalty(self, table):
        cluster = ClusterConfig(num_nodes=10)
        ola = OnlineAggregationBaseline(table, cluster, simulated_rows=1_000_000_000)
        from repro.cluster.cost_model import CostModel

        sequential = CostModel(cluster).estimate(
            bytes_scanned=int(1_000_000 * (1_000_000_000 / table.num_rows) * table.row_width_bytes)
        )
        assert ola.latency_for_rows(1_000_000) > sequential.total_seconds

    def test_unreachable_error_returns_none(self, table):
        ola = OnlineAggregationBaseline(table, ClusterConfig(num_nodes=10))
        # A group-by with extremely rare groups cannot reach 0.1% error.
        assert ola.time_to_reach_error(
            "SELECT AVG(session_time) FROM sessions GROUP BY city", 0.001
        ) is None

    def test_incremental_steps_match_fresh_baseline(self, table):
        # Extending a stream must give the same answer as a fresh baseline
        # that jumps straight to the larger prefix.
        sql = "SELECT COUNT(*), AVG(session_time) FROM sessions WHERE dt = 5"
        incremental = OnlineAggregationBaseline(table, ClusterConfig(num_nodes=10))
        for rows in (1_000, 4_000, 12_000):
            incremental.step(sql, rows)
        extended = incremental.step(sql, 20_000)
        fresh = OnlineAggregationBaseline(table, ClusterConfig(num_nodes=10)).step(
            sql, 20_000
        )
        for name in ("count_star", "avg_session_time"):
            assert extended.result.scalar(name).value == pytest.approx(
                fresh.result.scalar(name).value, rel=1e-9
            )
            assert extended.result.scalar(name).error_bar == pytest.approx(
                fresh.result.scalar(name).error_bar, rel=1e-6
            )

    def test_shrinking_prefix_restarts_stream(self, table):
        sql = "SELECT COUNT(*) FROM sessions WHERE dt = 5"
        ola = OnlineAggregationBaseline(table, ClusterConfig(num_nodes=10))
        big = ola.step(sql, 10_000)
        small = ola.step(sql, 2_000)
        assert small.rows_scanned == 2_000
        assert small.worst_relative_error >= big.worst_relative_error

    def test_count_scales_to_population(self, table):
        sql = "SELECT COUNT(*) FROM sessions"
        ola = OnlineAggregationBaseline(table, ClusterConfig(num_nodes=10))
        step = ola.step(sql, 5_000)
        # All scanned rows match, so the scaled count is exactly the table size.
        assert step.result.scalar().value == pytest.approx(table.num_rows)

    def test_cached_fraction_discount_applied_once(self, table):
        # A fully cached table pays no random-I/O penalty: the latency must
        # equal the plain cost-model estimate of the same bytes, not a
        # doubly-discounted one.
        from repro.cluster.cost_model import CostModel

        cluster = ClusterConfig(num_nodes=10)
        ola = OnlineAggregationBaseline(
            table, cluster, simulated_rows=1_000_000_000, cached_fraction=1.0
        )
        scale = ola.simulated_rows / table.num_rows
        bytes_scanned = int(1_000_000 * scale * table.row_width_bytes)
        expected = CostModel(cluster).estimate(
            bytes_scanned=bytes_scanned, cached_fraction=1.0
        )
        assert ola.latency_for_rows(1_000_000) == pytest.approx(
            expected.total_seconds, rel=1e-9
        )

    def test_partially_cached_latency_between_extremes(self, table):
        cluster = ClusterConfig(num_nodes=10)
        latencies = {
            fraction: OnlineAggregationBaseline(
                table, cluster, simulated_rows=1_000_000_000, cached_fraction=fraction
            ).latency_for_rows(1_000_000)
            for fraction in (0.0, 0.5, 1.0)
        }
        assert latencies[0.0] > latencies[0.5] > latencies[1.0]
