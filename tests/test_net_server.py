"""End-to-end tests for the wire-protocol front door (server + client).

Every test here talks over a real TCP socket on localhost: the server is a
:class:`repro.net.server.NetworkServer` bound to an ephemeral port, and the
client is :class:`repro.client.Client` — the same pair an application would
deploy.  The key acceptance test asserts *bit-identity*: a query answered
over the wire reconstructs exactly the estimates, error bars, generation
stamp, and metadata that ``db.query()`` returns in-process.
"""

from __future__ import annotations

import socket

import pytest

from repro.common.config import BlinkDBConfig, ClusterConfig, SamplingConfig
from repro.common.errors import ParseError, QueryRejectedError
from repro.core.blinkdb import BlinkDB
from repro.faults import FaultPlan
from repro.faults import injector as injector_mod
from repro.net import protocol
from repro.net.client import Client, TransportError
from repro.net.loadharness import jain_index
from repro.service.tenancy import TenantQuota
from repro.workloads.conviva import conviva_query_templates

SQL = "SELECT COUNT(*) FROM sessions WHERE city = 'city_0003' GROUP BY os"
SUM_SQL = "SELECT SUM(session_time) FROM sessions WHERE city = 'city_0003' GROUP BY os"


@pytest.fixture(scope="module")
def net_db(sessions_table):
    config = BlinkDBConfig(
        sampling=SamplingConfig(largest_cap=80, min_cap=10, uniform_sample_fraction=0.1),
        cluster=ClusterConfig(num_nodes=20),
    )
    db = BlinkDB(config)
    db.load_table(sessions_table, simulated_rows=20_000_000)
    db.register_workload(templates=conviva_query_templates())
    db.build_samples(storage_budget_fraction=0.5)
    yield db
    db.close()


@pytest.fixture(scope="module")
def net_server(net_db):
    server = net_db.serve_network(num_workers=2)
    yield server
    server.close()


@pytest.fixture()
def client(net_server):
    with Client(net_server.host, net_server.port) as client:
        yield client


def assert_results_identical(wire, local):
    """Bit-for-bit equality of a wire-decoded result against the local one."""
    assert wire.group_by == local.group_by
    assert wire.rows_read == local.rows_read
    assert wire.sample_name == local.sample_name
    assert len(wire.groups) == len(local.groups)
    for wire_group, local_group in zip(wire.groups, local.groups):
        assert list(wire_group.key) == list(local_group.key)
        assert set(wire_group.aggregates) == set(local_group.aggregates)
        for name, local_agg in local_group.aggregates.items():
            wire_agg = wire_group.aggregates[name]
            assert wire_agg.confidence == local_agg.confidence
            assert wire_agg.estimate.value == local_agg.estimate.value
            assert wire_agg.estimate.variance == local_agg.estimate.variance
            assert wire_agg.estimate.sample_rows == local_agg.estimate.sample_rows
            assert wire_agg.estimate.rows_read == local_agg.estimate.rows_read
            # Error bars derive from value/variance, but assert them directly
            # so a representation change cannot silently skew intervals.
            assert wire_agg.interval.half_width == local_agg.interval.half_width
            assert wire_agg.interval.low == local_agg.interval.low
            assert wire_agg.interval.high == local_agg.interval.high


class TestWireBitIdentity:
    @pytest.mark.parametrize("sql", [SQL, SUM_SQL])
    def test_wire_answer_matches_in_process(self, net_db, client, sql):
        local = net_db.query(sql)
        wire = client.query(sql)
        assert_results_identical(wire, local)

    def test_metadata_stamps_generation_backend_and_trace(self, net_db, client):
        result = client.query(SQL)
        assert result.metadata["generation"] == net_db.query(SQL).metadata["generation"]
        assert result.metadata["backend"] == "threads"
        assert result.metadata["trace_id"]
        assert client.last_meta["request_id"] == result.metadata["trace_id"]

    def test_request_id_round_trips_to_trace(self, net_server):
        with Client(net_server.host, net_server.port) as client:
            analyzed = client.explain_analyze(SQL)
        assert analyzed["trace"] is not None
        assert analyzed["trace"]["attrs"]["request_id"] == analyzed["meta"]["request_id"]

    def test_bit_identity_against_process_backend(self, sessions_table):
        config = BlinkDBConfig(
            sampling=SamplingConfig(
                largest_cap=300, min_cap=25, uniform_sample_fraction=0.1
            ),
            cluster=ClusterConfig(num_nodes=8),
            execution_backend="processes",
            procpool_workers=2,
            procpool_retry_backoff_seconds=0.01,
        )
        db = BlinkDB(config)
        try:
            db.load_table(sessions_table, simulated_rows=20_000_000)
            db.register_workload(templates=conviva_query_templates())
            db.build_samples(storage_budget_fraction=0.5)
            server = db.serve_network(num_workers=2, cache=False)
            # Plain (serial-plan) queries are bit-identical over the wire.
            local = db.query(SQL)
            with Client(server.host, server.port) as client:
                wire = client.query(SQL)
                assert_results_identical(wire, local)
                assert wire.metadata["generation"] == local.metadata["generation"]
                # Progressive queries route through the partition pipeline,
                # which is where the process backend engages; the final
                # streamed answer must match the local partitioned run
                # bit-for-bit and carry the processes stamp.
                local_final = db.runtime.execute(SQL, progress=lambda snapshot: None)
                wire_final = None
                for kind, payload in client.stream_progressive(SQL):
                    if kind == "final":
                        wire_final = payload
                assert wire_final is not None
                assert_results_identical(wire_final, local_final)
                backend = local_final.metadata["backend_info"]["backend"]
                assert wire_final.metadata["backend"] == backend
                assert backend == "processes"
        finally:
            db.close()


class TestStreaming:
    # Not queried anywhere else in this module: a cached sync answer would
    # resolve the progressive ticket instantly, with no snapshots to stream.
    STREAM_SQL = "SELECT COUNT(*), AVG(session_time) FROM sessions GROUP BY city"

    def test_progressive_stream_is_monotone(self, client):
        snapshots = []
        final = None
        for kind, payload in client.stream_progressive(self.STREAM_SQL):
            if kind == "snapshot":
                snapshots.append(payload)
            else:
                final = payload
        assert len(snapshots) >= 2
        coverages = [snapshot.coverage_fraction for snapshot in snapshots]
        assert coverages == sorted(coverages)
        assert coverages[-1] <= 1.0
        merged = [snapshot.partitions_merged for snapshot in snapshots]
        assert merged == sorted(merged)
        assert final is not None
        assert final.metadata["generation"] is not None


class TestTicketLifecycle:
    def test_submit_poll_result(self, client):
        ticket = client.submit(SQL)
        result = ticket.result(timeout=30)
        assert result.rows_read > 0
        # Ticket results are served from the server-side store afterwards.
        assert ticket.poll()["kind"] == "result"

    def test_cancel_then_poll_reports_cancelled(self, net_server):
        # A dedicated 1-worker service we never start: queries stay queued,
        # so cancellation is deterministic.
        db = net_server.db
        service = db.serve(num_workers=1, autostart=False, cache=False, tenants=True)
        server = db.serve_network(service=service)
        try:
            with Client(server.host, server.port) as client:
                ticket = client.submit(SQL)
                assert ticket.cancel() is True
                with pytest.raises(QueryRejectedError) as excinfo:
                    ticket.result(timeout=1)
                assert excinfo.value.reason == "cancelled"
        finally:
            server.close()

    def test_poll_unknown_ticket_raises_not_found(self, client):
        with pytest.raises(protocol.WireError) as excinfo:
            client._request("/v1/poll", {"ticket": "no-such"}, idempotent=True)
        assert excinfo.value.code == protocol.ERR_NOT_FOUND


class TestErrorTaxonomy:
    def test_bad_sql_maps_to_parse_error(self, client):
        with pytest.raises(ParseError):
            client.query("SELEKT nonsense")
        assert client.stats["retries"] == 0  # bad-sql is never retried

    def test_unknown_route_is_not_found(self, client):
        with pytest.raises(protocol.WireError) as excinfo:
            client._request("/v1/definitely-not-a-route", {}, idempotent=True)
        assert excinfo.value.code == protocol.ERR_NOT_FOUND

    def test_quota_shed_maps_to_429_with_retry_after(self, net_db):
        service = net_db.serve(
            num_workers=1,
            autostart=False,
            cache=False,
            tenants=True,
        )
        service.tenants.set_quota("capped", TenantQuota(max_in_flight=1))
        server = net_db.serve_network(service=service)
        try:
            with Client(server.host, server.port, tenant="capped", retries=0) as client:
                first = client.submit(SQL)  # occupies the only slot
                with pytest.raises(QueryRejectedError) as excinfo:
                    client.query(SQL)
                assert excinfo.value.reason == protocol.ERR_SHED_QUOTA
                assert excinfo.value.retry_after_seconds is not None
                first.cancel()
        finally:
            server.close()

    def test_client_honors_retry_after_and_recovers(self, net_db):
        service = net_db.serve(num_workers=1, cache=False, tenants=True)
        service.tenants.set_quota("bursty", TenantQuota(max_in_flight=1))
        server = net_db.serve_network(service=service)
        try:
            with Client(
                server.host,
                server.port,
                tenant="bursty",
                retries=6,
                retry_backoff_seconds=0.02,
            ) as client:
                # Two sync queries in a row from a cap-1 tenant: the second
                # may collide with the first's in-flight slot and be shed;
                # the retrying client must still land both.
                assert client.query(SQL).rows_read > 0
                assert client.query(SQL).rows_read > 0
        finally:
            server.close()


class TestAppendAndMetrics:
    def test_append_over_the_wire(self, net_db, net_server):
        from repro.workloads.conviva import generate_sessions_table

        before = net_db.data_version
        batch = generate_sessions_table(
            num_rows=5, seed=99, num_cities=40, num_countries=15,
            num_customers=100, num_dmas=20, num_asns=50,
        )
        def plain(value):
            return value.item() if hasattr(value, "item") else value

        columnar = {
            name: [plain(v) for v in batch.column(name).values()]
            for name in batch.column_names
        }
        rows = [{name: columnar[name][i] for name in columnar} for i in range(5)]
        with Client(net_server.host, net_server.port) as client:
            report = client.append("sessions", rows)
        assert report["batch_rows"] == 5
        assert report["table"] == "sessions"
        assert net_db.data_version > before

    def test_metrics_endpoint_serves_prometheus_text(self, client):
        client.query(SQL)
        text = client.metrics_text()
        assert "# HELP" in text
        assert "blinkdb" in text

    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert "data_version" in health


class TestRetryAndCleanup:
    def test_transport_retry_on_dropped_request(self, net_server):
        with injector_mod.installed(FaultPlan.parse("net.request_drop:limit=2")):
            with Client(
                net_server.host,
                net_server.port,
                retries=5,
                retry_backoff_seconds=0.01,
            ) as client:
                result = client.query(SQL)
                assert result.rows_read > 0
                assert client.stats["transport_errors"] >= 1

    def test_nonidempotent_calls_do_not_retry_transport_errors(self, net_server):
        with injector_mod.installed(FaultPlan.parse("net.request_drop:limit=1")):
            with Client(net_server.host, net_server.port, retries=5) as client:
                with pytest.raises(TransportError):
                    client.append("sessions", [])

    def test_server_close_releases_port(self, net_db):
        server = net_db.serve_network()
        host, port = server.host, server.port
        server.close()
        # The listener must be gone: a fresh bind to the same port succeeds.
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            probe.bind((host, port))
        finally:
            probe.close()

    def test_facade_close_shuts_down_owned_servers(self, sessions_table):
        config = BlinkDBConfig(
            sampling=SamplingConfig(
                largest_cap=80, min_cap=10, uniform_sample_fraction=0.1
            ),
            cluster=ClusterConfig(num_nodes=20),
        )
        db = BlinkDB(config)
        db.load_table(sessions_table, simulated_rows=20_000_000)
        db.register_workload(templates=conviva_query_templates())
        db.build_samples(storage_budget_fraction=0.5)
        server = db.serve_network()
        db.close()
        with pytest.raises((TransportError, OSError)):
            with Client(server.host, server.port, retries=0) as client:
                client.healthz()


class TestJainIndex:
    def test_perfect_fairness(self):
        assert jain_index([10.0, 10.0, 10.0]) == pytest.approx(1.0)

    def test_total_unfairness(self):
        assert jain_index([30.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)

    def test_empty_is_vacuously_fair(self):
        assert jain_index([]) == 1.0
