"""Unit tests for the mergeable partial-aggregation states."""

import math

import numpy as np
import pytest

from repro.engine.accumulators import (
    GroupPartial,
    PartialAggregation,
    QuantileState,
    ValueMoments,
    WeightMoments,
    make_state,
)
from repro.engine.executor import ExecutionContext, QueryExecutor
from repro.estimation.estimators import (
    estimate_avg,
    estimate_count,
    estimate_quantile,
    estimate_stddev,
    estimate_sum,
    estimate_variance,
)
from repro.sql.parser import parse_query
from repro.storage.table import Table


@pytest.fixture()
def data(rng):
    values = rng.normal(100.0, 25.0, 500)
    weights = rng.uniform(1.0, 30.0, 500)
    return values, weights


def _state_of(name, values, weights, chunks=1, quantile=None):
    state = make_state(name, quantile)
    for v, w in zip(np.array_split(values, chunks), np.array_split(weights, chunks)):
        state.update(v, w)
    return state


class TestValueMoments:
    def test_matches_numpy_single_chunk(self, data):
        values, _ = data
        moments = ValueMoments.from_array(values)
        assert moments.mean == pytest.approx(np.mean(values))
        assert moments.sample_variance == pytest.approx(np.var(values, ddof=1))

    def test_chan_merge_matches_whole(self, data):
        values, _ = data
        merged = ValueMoments()
        for chunk in np.array_split(values, 7):
            merged.merge(ValueMoments.from_array(chunk))
        assert merged.n == len(values)
        assert merged.mean == pytest.approx(np.mean(values), rel=1e-12)
        assert merged.sample_variance == pytest.approx(np.var(values, ddof=1), rel=1e-10)

    def test_empty_merge_is_identity(self):
        moments = ValueMoments.from_array(np.array([1.0, 2.0]))
        moments.merge(ValueMoments())
        assert moments.n == 2

    def test_large_mean_small_spread_is_stable(self):
        # The Welford/Chan form must not cancel catastrophically.
        values = 1e9 + np.linspace(0.0, 1.0, 1000)
        merged = ValueMoments()
        for chunk in np.array_split(values, 10):
            merged.merge(ValueMoments.from_array(chunk))
        assert merged.sample_variance == pytest.approx(np.var(values, ddof=1), rel=1e-6)


class TestWeightMoments:
    def test_uniform_detection(self):
        assert WeightMoments.from_array(np.full(10, 4.0)).uniform()
        assert not WeightMoments.from_array(np.array([1.0, 4.0])).uniform()

    def test_scaled_ht_sum(self):
        weights = np.array([1.0, 3.0, 7.0])
        moments = WeightMoments.from_array(weights)
        c = 2.5
        expected = float(np.sum((c * weights) * (c * weights - 1.0)))
        assert moments.sum_w_w_minus_1(c) == pytest.approx(expected)


ESTIMATORS = {
    "count": lambda v, w, rows_read, **kw: estimate_count(w, rows_read, **kw),
    "sum": estimate_sum,
    "avg": lambda v, w, rows_read, **kw: estimate_avg(v, w, rows_read),
    "variance": lambda v, w, rows_read, **kw: estimate_variance(v, w, rows_read),
    "stddev": lambda v, w, rows_read, **kw: estimate_stddev(v, w, rows_read),
}


class TestStatesMatchEstimators:
    @pytest.mark.parametrize("name", ["count", "sum", "avg", "variance", "stddev"])
    @pytest.mark.parametrize("chunks", [1, 4])
    def test_state_matches_whole_array_estimator(self, data, name, chunks):
        values, weights = data
        rows_read = len(values) * 2
        state = _state_of(name, values, weights, chunks)
        got = state.finalize(rows_read, population_read=float(np.sum(weights)) * 2)
        expected = ESTIMATORS[name](
            values, weights, rows_read, population_read=float(np.sum(weights)) * 2
        )
        assert got.value == pytest.approx(expected.value, rel=1e-9)
        assert got.variance == pytest.approx(expected.variance, rel=1e-6)
        assert got.sample_rows == expected.sample_rows

    def test_quantile_state_matches_estimator(self, data):
        values, weights = data
        state = _state_of("quantile", values, weights, chunks=5, quantile=0.7)
        got = state.finalize(len(values), None)
        expected = estimate_quantile(values, weights, 0.7, len(values))
        assert got.value == pytest.approx(expected.value, rel=1e-9)
        assert got.variance == pytest.approx(expected.variance, rel=1e-6)

    def test_exact_flag_zeroes_variance(self, data):
        values, weights = data
        for name in ("count", "sum", "avg", "variance", "stddev"):
            state = _state_of(name, values, weights)
            assert state.finalize(len(values), None, exact=True).variance == 0.0

    def test_empty_states(self):
        empty_v, empty_w = np.zeros(0), np.zeros(0)
        count = _state_of("count", empty_v, empty_w)
        assert count.finalize(100, 1000.0).value == 0.0
        assert count.finalize(100, 1000.0).variance > 0
        avg = _state_of("avg", empty_v, empty_w)
        assert math.isnan(avg.finalize(100, None).value)
        assert math.isinf(_state_of("sum", empty_v, empty_w).finalize(100, None).variance)

    def test_single_row_avg_unbounded(self):
        state = _state_of("avg", np.array([5.0]), np.array([2.0]))
        assert math.isinf(state.finalize(10, None).variance)


class TestCoverageScaling:
    """The anytime weight rescale: extensive aggregates scale, intensive don't."""

    def test_count_and_sum_scale_linearly(self, data):
        values, weights = data
        c = 4.0
        count = _state_of("count", values, weights)
        assert count.finalize(len(values), None, weight_scale=c).value == pytest.approx(
            c * float(np.sum(weights))
        )
        total = _state_of("sum", values, weights)
        assert total.finalize(len(values), None, weight_scale=c).value == pytest.approx(
            c * float(np.sum(values * weights))
        )

    def test_ratio_estimators_are_scale_invariant(self, data):
        values, weights = data
        for name in ("avg", "variance", "stddev"):
            state = _state_of(name, values, weights)
            base = state.finalize(len(values), None).value
            scaled = state.finalize(len(values), None, weight_scale=3.0).value
            assert scaled == pytest.approx(base, rel=1e-9)
        q = _state_of("quantile", values, weights, quantile=0.5)
        assert q.finalize(len(values), None, weight_scale=3.0).value == pytest.approx(
            q.finalize(len(values), None).value
        )

    def test_scaled_count_matches_scaled_weight_estimator(self, data):
        # Scaling the state must equal feeding pre-scaled weights directly.
        values, weights = data
        c = 2.5
        state = _state_of("count", values, weights)
        got = state.finalize(800, 1e6, weight_scale=c)
        expected = estimate_count(weights * c, 800, 1e6)
        assert got.value == pytest.approx(expected.value, rel=1e-12)
        assert got.variance == pytest.approx(expected.variance, rel=1e-9)


class TestQuantileSketch:
    def test_compression_keeps_quantiles_close(self, rng):
        values = rng.lognormal(3.0, 1.0, 50_000)
        weights = rng.uniform(1.0, 5.0, 50_000)
        state = QuantileState(0.9, sketch_size=1024)
        for v, w in zip(np.array_split(values, 20), np.array_split(weights, 20)):
            state.update(v, w)
        assert state.compressed
        got = state.finalize(len(values), None).value
        expected = estimate_quantile(values, weights, 0.9, len(values)).value
        assert got == pytest.approx(expected, rel=0.02)

    def test_below_threshold_is_exact(self, rng):
        values = rng.normal(0, 1, 500)
        state = QuantileState(0.5)
        state.update(values, np.ones(500))
        assert not state.compressed
        assert state.finalize(500, None).value == pytest.approx(
            estimate_quantile(values, None, 0.5, 500).value
        )

    def test_compression_preserves_true_sample_count_for_variance(self, rng):
        # The error bar must reflect the real matching-row count, not the
        # centroid count the sketch was compressed to.
        n = 50_000
        values = rng.normal(100.0, 10.0, n)
        state = QuantileState(0.5, sketch_size=1024)
        for chunk in np.array_split(values, 25):
            state.update(chunk, np.ones(chunk.shape[0]))
        assert state.compressed
        got = state.finalize(n, None)
        expected = estimate_quantile(values, None, 0.5, n)
        assert got.sample_rows == n
        assert got.variance == pytest.approx(expected.variance, rel=0.25)


class TestPartialAggregation:
    def test_merge_rejects_mismatched_group_shapes(self):
        a = PartialAggregation(group_columns=("x",))
        b = PartialAggregation(group_columns=("y",))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_accumulates_scan_totals(self):
        a = PartialAggregation(group_columns=(), rows_scanned=10, weight_scanned=20.0)
        b = PartialAggregation(group_columns=(), rows_scanned=5, weight_scanned=7.0)
        a.merge(b)
        assert a.rows_scanned == 15
        assert a.weight_scanned == 27.0
        assert a.partitions == 2

    def test_group_partial_unit_weight(self):
        group = GroupPartial(key=(), states=[])
        assert not group.unit_weight()  # no rows observed
        group.observe_weights(np.ones(4))
        assert group.unit_weight()
        assert not group.unit_weight(scale=2.0)
        group.observe_weights(np.array([3.0]))
        assert not group.unit_weight()


class TestExecutorStages:
    def test_partial_then_finalize_equals_execute(self, rng):
        table = Table.from_dict(
            "t",
            {
                "g": [f"g{i % 3}" for i in range(300)],
                "x": rng.normal(10, 2, 300).tolist(),
            },
        )
        weights = rng.uniform(1, 5, 300)
        query = parse_query("SELECT SUM(x), AVG(x) FROM t GROUP BY g")
        executor = QueryExecutor()
        context = ExecutionContext(weights=weights, rows_read=300)

        whole = executor.execute(query, table, context)
        partials = [
            executor.partial_aggregate_partition(query, p)
            for p in table.partitions(weights=weights, num_partitions=4)
        ]
        merged = partials[0]
        for piece in partials[1:]:
            merged = merged.merge(piece)
        staged = executor.finalize(
            query, merged, context, rows_read=300, population_read=float(np.sum(weights))
        )
        for g_whole, g_staged in zip(whole.groups, staged.groups):
            assert g_whole.key == g_staged.key
            for name in g_whole.aggregates:
                assert g_staged[name].value == pytest.approx(g_whole[name].value, rel=1e-9)
                assert g_staged[name].error_bar == pytest.approx(
                    g_whole[name].error_bar, rel=1e-6
                )

    def test_global_group_present_with_zero_matches(self):
        table = Table.from_dict("t", {"x": [1.0, 2.0]})
        query = parse_query("SELECT COUNT(*) FROM t WHERE x > 100")
        executor = QueryExecutor()
        partial = executor.partial_aggregate(query, table)
        result = executor.finalize(query, partial)
        assert result.scalar().value == 0.0

    def test_partial_coverage_never_exact(self):
        table = Table.from_dict("t", {"x": [1.0] * 10})
        query = parse_query("SELECT COUNT(*) FROM t")
        executor = QueryExecutor()
        partial = executor.partial_aggregate(query, table)
        result = executor.finalize(
            query,
            partial,
            ExecutionContext(exact=True),
            rows_read=10,
            population_read=20.0,
            weight_scale=2.0,
        )
        assert not result.is_exact
        assert result.scalar().value == pytest.approx(20.0)
