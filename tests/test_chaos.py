"""Chaos tests: seeded fault plans against real worker processes.

Every scenario drives the *real* machinery — spawned workers that actually
``os._exit``, idle workers killed with SIGKILL, tasks that sleep past their
deadline — and asserts the PR 9 contract: answers are bit-identical to the
serial path or *explicitly* degraded (``metadata["degraded"]``, widened
bars), ``/dev/shm`` never leaks, nothing deadlocks, and the pool is healthy
again afterwards.

Fault schedules are seeded (:class:`~repro.faults.plan.FaultPlan`), so every
run of this suite replays the identical campaign.
"""

from __future__ import annotations

import os
import signal
import time
import warnings

import numpy as np
import pytest

from repro.common.clock import monotonic
from repro.common.config import BlinkDBConfig, ClusterConfig, SamplingConfig
from repro.engine.executor import QueryExecutor
from repro.engine.kernels import ScanSink
from repro.faults import FaultPlan
from repro.faults import injector as injector_mod
from repro.runtime.procpool import ProcessPartitionPool
from repro.sql.parser import parse_query
from repro.storage import shm
from repro.storage.table import Table

pytestmark = pytest.mark.skipif(
    not shm.shared_memory_available(), reason="POSIX shared memory unavailable"
)


def _shm_entries() -> set[str]:
    """Table segments (``psm_*``) currently linked in ``/dev/shm``.

    ``sem.mp-*`` entries are the executors' multiprocessing semaphores —
    after an unclean teardown they linger until the resource tracker reaps
    them at interpreter exit, so the *segment* leak contract (the parent
    owns every unlink) is checked on the segments alone.  CI's repo-wide
    ``/dev/shm`` check runs after the interpreter exits and sees both.
    """
    try:
        return {e for e in os.listdir("/dev/shm") if e.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


def _random_table(seed: int, rows: int = 6_000, name: str = "t"):
    from repro.common.rng import make_rng

    rng = make_rng(seed)
    table = Table.from_dict(
        name,
        {
            "g": [f"g{i}" for i in rng.integers(0, 6, rows)],
            "x": rng.lognormal(2.0, 0.7, rows).tolist(),
            "f": rng.integers(0, 10, rows).tolist(),
        },
    )
    weights = np.where(rng.random(rows) < 0.4, 1.0, rng.uniform(2.0, 30.0, rows))
    return table, weights


POOL_SQL = (
    "SELECT COUNT(*), SUM(x), AVG(x), VARIANCE(x) FROM t WHERE f < 7 GROUP BY g"
)


def _finalize(executor, query, partials, table, weights):
    partials = [p for p in partials if p is not None]
    merged = partials[0]
    for piece in partials[1:]:
        merged = merged.merge(piece)
    return executor.finalize(
        query,
        merged,
        None,
        rows_read=table.num_rows,
        population_read=float(np.sum(weights)),
    )


def _assert_bit_identical(left, right):
    left = {g.key: g for g in left}
    right = {g.key: g for g in right}
    assert set(left) == set(right)
    for key, g in left.items():
        for fn in g.aggregates:
            assert g[fn].value == right[key][fn].value, (key, fn)
            assert (
                g[fn].interval.half_width == right[key][fn].interval.half_width
            ), (key, fn)


def _healing_pool(**kwargs) -> ProcessPartitionPool:
    kwargs.setdefault("max_workers", 2)
    kwargs.setdefault("retry_backoff_seconds", 0.01)
    return ProcessPartitionPool(**kwargs)


# -- pool-level healing --------------------------------------------------------------


class TestPoolHealing:
    def _run(self, pool, plan_spec, seed=0, partitions=6, timeout=None):
        table, weights = _random_table(43)
        query = parse_query(POOL_SQL)
        executor = QueryExecutor()
        parts = table.partitions(weights=weights, num_partitions=partitions)
        epoch = pool.new_epoch()
        health: dict = {}
        try:
            handle = pool.ensure_export(epoch, "chaos", table, weights)
            assert handle is not None
            if plan_spec is None:
                shipped = pool.map_partitions(
                    query, handle, parts, sink=ScanSink(), executor=executor,
                    timeout=timeout, health=health,
                )
            else:
                with injector_mod.installed(FaultPlan.parse(plan_spec, seed=seed)):
                    shipped = pool.map_partitions(
                        query, handle, parts, sink=ScanSink(), executor=executor,
                        timeout=timeout, health=health,
                    )
        finally:
            pool.release_epoch(epoch)
        serial = [executor.partial_aggregate_partition(query, p) for p in parts]
        expected = _finalize(executor, query, serial, table, weights)
        return shipped, expected, health, (executor, query, table, weights)

    def test_worker_crash_is_respawned_and_retried(self):
        before = _shm_entries()
        pool = _healing_pool(retry_attempts=2, task_timeout_seconds=10.0)
        try:
            assert pool.warm()
            shipped, expected, health, ctx = self._run(
                pool, "procpool.worker_crash:once"
            )
            assert shipped is not None and all(p is not None for p in shipped)
            executor, query, table, weights = ctx
            _assert_bit_identical(
                _finalize(executor, query, shipped, table, weights), expected
            )
            assert health["respawns"] >= 1
            assert health["retries"] >= 1
            assert "fault" in health
            # The pool healed: a clean query runs with zero healing activity.
            shipped, expected, health, ctx = self._run(pool, None)
            assert shipped is not None
            assert health["retries"] == 0 and health["respawns"] == 0
        finally:
            pool.close()
        assert _shm_entries() == before

    def test_sigkilled_idle_worker_heals(self):
        pool = _healing_pool(retry_attempts=2, task_timeout_seconds=10.0)
        try:
            assert pool.warm()
            pids = pool.worker_pids()
            assert pids
            os.kill(pids[0], signal.SIGKILL)
            time.sleep(0.1)
            shipped, expected, health, ctx = self._run(pool, None)
            assert shipped is not None and all(p is not None for p in shipped)
            executor, query, table, weights = ctx
            _assert_bit_identical(
                _finalize(executor, query, shipped, table, weights), expected
            )
            assert pool.available
        finally:
            pool.close()

    def test_hung_worker_is_hedged_to_the_thread_path(self):
        pool = _healing_pool(retry_attempts=1, task_timeout_seconds=0.3)
        try:
            assert pool.warm()
            shipped, expected, health, ctx = self._run(
                pool, "procpool.worker_hang:once,latency=5.0"
            )
            assert shipped is not None and all(p is not None for p in shipped)
            executor, query, table, weights = ctx
            _assert_bit_identical(
                _finalize(executor, query, shipped, table, weights), expected
            )
            assert health["hedges"] >= 1
            assert health["thread_redispatches"] >= 1
        finally:
            pool.close()

    def test_exhausted_retries_surrender_partitions_not_answers(self):
        pool = _healing_pool(retry_attempts=0, thread_redispatch=False)
        try:
            assert pool.warm()
            shipped, expected, health, ctx = self._run(
                pool, "shm.attach_fail:nth=1"
            )
            # One chunk's partitions come back as explicit None holes; the
            # other chunk's results are still bitwise-correct partials.
            assert shipped is not None
            assert health["surrendered"] > 0
            assert 0 < sum(1 for p in shipped if p is None) < len(shipped)
            assert "fault" in health
        finally:
            pool.close()

    def test_call_timeout_bounds_a_hung_pool(self):
        pool = _healing_pool(
            retry_attempts=0, task_timeout_seconds=None, thread_redispatch=False
        )
        try:
            assert pool.warm()
            started = monotonic()
            shipped, _, health, _ = self._run(
                pool, "procpool.worker_hang:latency=30.0", timeout=0.5
            )
            elapsed = monotonic() - started
            # Every chunk hung and nothing could be computed: wholesale
            # fallback, and well before the 30s the workers are sleeping.
            assert shipped is None
            assert elapsed < 10.0
            assert pool.last_fallback_reason is not None
        finally:
            pool.close()

    def test_breaker_trips_to_threads_and_recovers_via_half_open(self):
        pool = _healing_pool(
            retry_attempts=0,
            thread_redispatch=False,
            breaker_threshold=2,
            breaker_cooldown_seconds=0.2,
        )
        try:
            assert pool.warm()
            with injector_mod.installed(FaultPlan.parse("shm.attach_fail")):
                for _ in range(2):
                    shipped, *_ = self._run(pool, None)
                    assert shipped is None  # every chunk failed
            assert pool.breaker.state == "open"
            assert not pool.admit(), "open breaker refuses process admission"
            assert pool.stats()["fallbacks.breaker_open"] >= 1
            time.sleep(0.25)
            assert pool.admit(), "cooldown elapsed: one probe query admitted"
            shipped, expected, health, ctx = self._run(pool, None)
            assert shipped is not None
            assert pool.breaker.state == "closed"
            stats = pool.stats()
            assert stats["breaker_trips"] == 1
            assert stats["breaker_half_opens"] >= 1
        finally:
            pool.close()


# -- facade-level chaos --------------------------------------------------------------


def _build_db(backend: str, **overrides):
    from repro.core.blinkdb import BlinkDB
    from repro.workloads.conviva import conviva_query_templates, generate_sessions_table

    table = generate_sessions_table(num_rows=8_000, seed=11, num_cities=12)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        config = BlinkDBConfig(
            sampling=SamplingConfig(
                largest_cap=300, min_cap=25, uniform_sample_fraction=0.1
            ),
            cluster=ClusterConfig(num_nodes=8),
            execution_backend=backend,
            procpool_workers=2 if backend == "processes" else 0,
            procpool_retry_backoff_seconds=0.01,
            **overrides,
        )
        db = BlinkDB(config)
    db.load_table(table, simulated_rows=100_000_000)
    db.register_workload(templates=conviva_query_templates())
    db.build_samples(storage_budget_fraction=0.5)
    return db


FACADE_SQL = "SELECT COUNT(*), AVG(session_time) FROM sessions GROUP BY city"


class TestFacadeChaos:
    def test_degraded_answer_is_explicit_and_has_wider_bars(self):
        with _build_db("processes", procpool_retry_attempts=0) as db:
            clean = db.runtime.execute_partitioned(
                FACADE_SQL, num_partitions=6, sim_workers=3
            )
            pool = db._partition_procpool()
            assert pool is not None
            pool.thread_redispatch = False  # force surrender, not redispatch
            with injector_mod.installed(FaultPlan.parse("shm.attach_fail:nth=1")):
                degraded = db.runtime.execute_partitioned(
                    FACADE_SQL, num_partitions=6, sim_workers=3
                )
            info = degraded.metadata["degraded"]
            assert info["surrendered_partitions"] > 0
            assert "fault" in info and info["fault"]
            assert degraded.metadata["backend_info"]["backend"] == "processes"
            # Survivor-only coverage: the merge dropped the surrendered
            # partitions and says so.
            stats = degraded.metadata["partitions"]
            assert stats.merged_partitions == (
                stats.num_partitions - info["surrendered_partitions"]
            )
            assert stats.coverage_population_fraction < 1.0
            assert clean.metadata["partitions"].coverage_population_fraction == 1.0
            # Bars widen with the lost coverage.  Per-group monotonicity is
            # not guaranteed (a survivor subset can have lower variance for
            # one group), so assert the aggregate picture: the worst-case
            # error grew and the overwhelming majority of bars widened.
            assert degraded.max_relative_error() > clean.max_relative_error()
            clean_groups = {g.key: g for g in clean.groups}
            bars = [
                (g[fn].interval.half_width, clean_groups[g.key][fn].interval.half_width)
                for g in degraded.groups
                for fn in g.aggregates
            ]
            wider = sum(1 for d, c in bars if d > c)
            assert wider > 0.75 * len(bars)

    def test_every_partition_surrendered_raises_not_lies(self):
        with _build_db("processes", procpool_retry_attempts=0) as db:
            pool = db._partition_procpool()
            pool.thread_redispatch = False
            with injector_mod.installed(FaultPlan.parse("shm.attach_fail")):
                # All chunks fail and nothing can be computed on the process
                # path; map_partitions returns None, so the pipeline falls
                # back to threads wholesale and still answers correctly.
                result = db.runtime.execute_partitioned(
                    FACADE_SQL, num_partitions=6, sim_workers=3
                )
            assert result.metadata["backend_info"]["backend"] in ("threads", "inline")
            assert "fallback_reason" in result.metadata["backend_info"]

    def test_sigkilled_workers_leak_nothing_on_close(self):
        before = _shm_entries()
        db = _build_db("processes")
        try:
            result = db.runtime.execute_partitioned(
                FACADE_SQL, num_partitions=4, sim_workers=2
            )
            assert result.metadata["backend_info"]["backend"] == "processes"
            pool = db._partition_procpool()
            pids = pool.worker_pids()
            assert pids
            for pid in pids:
                os.kill(pid, signal.SIGKILL)
            time.sleep(0.1)
        finally:
            db.close()
            db.close()  # idempotent
        assert _shm_entries() == before, "SIGKILLed workers must not leak segments"

    def test_breaker_fallback_reason_reaches_metadata_and_metrics(self):
        with _build_db(
            "processes",
            procpool_retry_attempts=0,
            procpool_breaker_threshold=2,
            procpool_breaker_cooldown_seconds=30.0,
        ) as db:
            pool = db._partition_procpool()
            pool.thread_redispatch = False
            with injector_mod.installed(FaultPlan.parse("shm.attach_fail")):
                for _ in range(2):
                    db.runtime.execute_partitioned(
                        FACADE_SQL, num_partitions=6, sim_workers=3
                    )
            assert pool.breaker.state == "open"
            # Injector gone, but the breaker remembers: the next query is
            # refused admission and runs on threads, with the reason visible.
            result = db.runtime.execute_partitioned(
                FACADE_SQL, num_partitions=6, sim_workers=3
            )
            info = result.metadata["backend_info"]
            assert info["backend"] in ("threads", "inline")
            assert info["fallback_reason"] == "breaker_open"
            gauges = db.metrics()["faults"]
            series = {s["labels"]["name"]: s["value"] for s in gauges["series"]}
            assert series["procpool.breaker_trips"] == 1
            assert series["procpool.breaker_state"] == 2  # open
            assert series["procpool.fallbacks.breaker_open"] >= 1

    def test_single_partition_declines_to_identical_thread_answer(self):
        with _build_db("processes") as db_p, _build_db("threads") as db_t:
            processes = db_p.runtime.execute_partitioned(
                FACADE_SQL, num_partitions=1, sim_workers=1
            )
            threads = db_t.runtime.execute_partitioned(
                FACADE_SQL, num_partitions=1, sim_workers=1
            )
            _assert_bit_identical(processes.groups, threads.groups)
            info = processes.metadata["backend_info"]
            assert info["backend"] in ("threads", "inline")
            assert info["fallback_reason"] == "single_partition"


# -- randomized seeded campaigns -----------------------------------------------------

CHAOS_PLAN = (
    "procpool.worker_crash:p=0.3;"
    " shm.attach_fail:p=0.2;"
    " service.slow_worker:p=0.2,latency=0.01"
)

CHAOS_QUERIES = [
    "SELECT COUNT(*), AVG(session_time) FROM sessions GROUP BY city",
    "SELECT SUM(session_time) FROM sessions WHERE city = 'city_0003' GROUP BY os",
    "SELECT COUNT(*), VARIANCE(session_time) FROM sessions GROUP BY os",
]


class TestChaosCampaigns:
    @pytest.mark.parametrize("seed", [11, 23, 47])
    def test_seeded_campaign_is_bit_identical_or_explicitly_degraded(self, seed):
        before = _shm_entries()
        with _build_db("processes") as chaos_db, _build_db("threads") as twin_db:
            expected = {
                sql: twin_db.runtime.execute_partitioned(
                    sql, num_partitions=6, sim_workers=3
                )
                for sql in CHAOS_QUERIES
            }
            with injector_mod.installed(FaultPlan.parse(CHAOS_PLAN, seed=seed)):
                for sql in CHAOS_QUERIES:
                    result = chaos_db.runtime.execute_partitioned(
                        sql, num_partitions=6, sim_workers=3
                    )
                    if "degraded" in result.metadata:
                        assert (
                            result.metadata["degraded"]["surrendered_partitions"] > 0
                        )
                        continue
                    _assert_bit_identical(result.groups, expected[sql].groups)
            # Campaign over: the pool must be healthy again (no lingering
            # faults, no deadlock) and answer bit-identically.
            after = chaos_db.runtime.execute_partitioned(
                CHAOS_QUERIES[0], num_partitions=6, sim_workers=3
            )
            _assert_bit_identical(after.groups, expected[CHAOS_QUERIES[0]].groups)
            pool = chaos_db._partition_procpool()
            assert pool is not None and pool.available
        assert _shm_entries() == before, "chaos campaign must not leak /dev/shm"


# -- wire-level chaos ----------------------------------------------------------------

WIRE_CHAOS_PLAN = (
    "net.request_drop:p=0.3;"
    " net.slow_response:p=0.3,latency=0.02;"
    " service.slow_worker:p=0.2,latency=0.01"
)


class TestWireChaos:
    @pytest.mark.parametrize("seed", [7, 31])
    def test_lossy_wire_campaign_still_answers_bit_identically(self, seed):
        """Dropped sockets and slowed responses never corrupt an answer.

        The retrying client re-submits idempotent queries through a fault
        plan that severs ~30% of requests mid-flight and delays another
        ~30%; every answer that does come back must be bit-identical to the
        clean in-process result — a transport fault may cost latency or a
        retry, never correctness.
        """
        from repro.net.client import Client, TransportError

        with _build_db("threads") as db:
            expected = {sql: db.query(sql) for sql in CHAOS_QUERIES}
            server = db.serve_network(num_workers=2)
            answered = 0
            transport_failures = 0
            with injector_mod.installed(FaultPlan.parse(WIRE_CHAOS_PLAN, seed=seed)):
                with Client(
                    server.host,
                    server.port,
                    retries=8,
                    retry_backoff_seconds=0.01,
                    retry_backoff_cap_seconds=0.05,
                ) as client:
                    for _ in range(3):
                        for sql in CHAOS_QUERIES:
                            try:
                                wire = client.query(sql, timeout=30)
                            except TransportError:
                                # Statistically possible (8 straight drops)
                                # but it must stay an *explicit* failure.
                                transport_failures += 1
                                continue
                            answered += 1
                            _assert_bit_identical(
                                wire.groups, expected[sql].groups
                            )
                    retries_seen = client.stats["retries"] + client.stats[
                        "transport_errors"
                    ]
            assert answered > 0, "campaign must land at least one answer"
            assert retries_seen > 0, (
                "a p=0.3 drop plan over 9 queries should exercise the retry path"
            )
            # Faults cleared: the wire is healthy again, no residual latency
            # injection, and the server still answers bit-identically.
            with Client(server.host, server.port, retries=0) as client:
                after = client.query(CHAOS_QUERIES[0], timeout=30)
            _assert_bit_identical(after.groups, expected[CHAOS_QUERIES[0]].groups)
