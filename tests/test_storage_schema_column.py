"""Tests for repro.storage.schema and repro.storage.column."""

import numpy as np
import pytest

from repro.common.errors import SchemaError
from repro.storage.column import Column
from repro.storage.schema import ColumnDef, ColumnType, Schema


class TestSchema:
    def test_from_mapping_preserves_order(self):
        schema = Schema({"a": ColumnType.INT, "b": ColumnType.STRING})
        assert schema.names == ["a", "b"]

    def test_type_and_width_lookup(self):
        schema = Schema({"a": ColumnType.INT, "s": ColumnType.STRING})
        assert schema.type_of("a") is ColumnType.INT
        assert schema.width_of("s") == ColumnType.STRING.default_width_bytes

    def test_row_width_is_sum_of_column_widths(self):
        schema = Schema({"a": ColumnType.INT, "b": ColumnType.FLOAT})
        assert schema.row_width_bytes == 16

    def test_unknown_column_raises(self):
        schema = Schema({"a": ColumnType.INT})
        with pytest.raises(SchemaError):
            schema.column("missing")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([ColumnDef("a", ColumnType.INT, 8), ColumnDef("a", ColumnType.INT, 8)])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema({})

    def test_project_keeps_subset_in_order(self):
        schema = Schema({"a": ColumnType.INT, "b": ColumnType.FLOAT, "c": ColumnType.STRING})
        projected = schema.project(["c", "a"])
        assert projected.names == ["c", "a"]

    def test_validate_columns_lists_missing(self):
        schema = Schema({"a": ColumnType.INT})
        with pytest.raises(SchemaError):
            schema.validate_columns(["a", "zz"])

    def test_numeric_columns(self):
        schema = Schema({"a": ColumnType.INT, "s": ColumnType.STRING, "f": ColumnType.FLOAT})
        assert schema.numeric_columns() == ["a", "f"]

    def test_equality_and_repr(self):
        a = Schema({"a": ColumnType.INT})
        b = Schema({"a": ColumnType.INT})
        assert a == b
        assert "a:int" in repr(a)


class TestColumn:
    def test_infers_int_float_string(self):
        assert Column.from_values("c", [1, 2, 3]).ctype is ColumnType.INT
        assert Column.from_values("c", [1.5, 2.0]).ctype is ColumnType.FLOAT
        assert Column.from_values("c", ["x", "y"]).ctype is ColumnType.STRING

    def test_string_columns_are_dictionary_encoded(self):
        column = Column.from_values("city", ["NY", "SF", "NY", "LA"])
        assert column.dictionary is not None
        assert sorted(column.dictionary.tolist()) == ["LA", "NY", "SF"]
        assert list(column.values()) == ["NY", "SF", "NY", "LA"]

    def test_value_at_decodes(self):
        column = Column.from_values("city", ["NY", "SF"])
        assert column.value_at(1) == "SF"

    def test_numeric_rejects_strings(self):
        column = Column.from_values("city", ["NY"])
        with pytest.raises(SchemaError):
            column.numeric()

    def test_bool_columns_numeric_cast(self):
        column = Column.from_values("flag", [True, False, True], ColumnType.BOOL)
        assert column.numeric().tolist() == [1.0, 0.0, 1.0]

    def test_take_and_filter(self):
        column = Column.from_values("v", [10, 20, 30, 40])
        assert column.take(np.array([2, 0])).values().tolist() == [30, 10]
        assert column.filter(np.array([True, False, True, False])).values().tolist() == [10, 30]

    def test_encode_lookup_string_absent_value(self):
        column = Column.from_values("city", ["NY", "SF"])
        assert column.encode_lookup("Boston") == -1

    def test_encode_lookup_numeric(self):
        column = Column.from_values("v", [1, 2, 3])
        assert column.encode_lookup("2") == 2

    def test_distinct_count(self):
        column = Column.from_values("v", [1, 1, 2, 3, 3, 3])
        assert column.distinct_count() == 3

    def test_string_requires_dictionary(self):
        with pytest.raises(SchemaError):
            Column("s", ColumnType.STRING, np.array([0, 1]))

    def test_rename(self):
        column = Column.from_values("a", [1, 2]).rename("b")
        assert column.name == "b"
