"""Tests for uniform and stratified sample construction."""

import numpy as np
import pytest

from repro.sampling.stratified import (
    build_stratified_resolution,
    stratum_cap_rows,
    stratum_permutations,
)
from repro.sampling.uniform import (
    build_uniform_resolution,
    uniform_permutation,
    uniform_resolution_fractions,
)
from repro.storage.table import Table


@pytest.fixture()
def skewed_table() -> Table:
    cities = ["NY"] * 600 + ["SF"] * 300 + ["LA"] * 80 + ["Boise"] * 15 + ["Nome"] * 5
    return Table.from_dict(
        "skewed",
        {
            "city": cities,
            "value": [float(i) for i in range(len(cities))],
        },
    )


class TestUniformSamples:
    def test_fraction_controls_size(self, skewed_table):
        resolution = build_uniform_resolution(skewed_table, 0.1)
        assert resolution.num_rows == 100
        assert resolution.fraction == pytest.approx(0.1)

    def test_weights_are_inverse_fraction(self, skewed_table):
        resolution = build_uniform_resolution(skewed_table, 0.25)
        assert np.allclose(resolution.weights, 4.0)
        assert resolution.represented_rows == pytest.approx(1000, rel=0.01)

    def test_invalid_fraction_rejected(self, skewed_table):
        with pytest.raises(ValueError):
            build_uniform_resolution(skewed_table, 0.0)
        with pytest.raises(ValueError):
            build_uniform_resolution(skewed_table, 1.5)

    def test_shared_permutation_nests_samples(self, skewed_table):
        permutation = uniform_permutation(skewed_table)
        small = build_uniform_resolution(skewed_table, 0.05, permutation)
        large = build_uniform_resolution(skewed_table, 0.20, permutation)
        assert set(small.row_indices) <= set(large.row_indices)

    def test_permutation_deterministic(self, skewed_table):
        assert np.array_equal(uniform_permutation(skewed_table), uniform_permutation(skewed_table))

    def test_fraction_ladder(self):
        fractions = uniform_resolution_fractions(0.2, 2.0, min_rows=100, total_rows=10_000)
        assert fractions == sorted(fractions)
        assert max(fractions) == pytest.approx(0.2)
        assert min(fractions) * 10_000 >= 100

    def test_fraction_ladder_validation(self):
        with pytest.raises(ValueError):
            uniform_resolution_fractions(0.0, 2.0, 10, 100)
        with pytest.raises(ValueError):
            uniform_resolution_fractions(0.5, 1.0, 10, 100)


class TestStratifiedSamples:
    def test_cap_limits_frequent_strata(self, skewed_table):
        resolution = build_stratified_resolution(skewed_table, ("city",), cap=50)
        frequencies = resolution.table.value_frequencies(["city"])
        assert frequencies[("NY",)] == 50
        assert frequencies[("SF",)] == 50
        assert frequencies[("Boise",)] == 15  # below the cap: kept in full
        assert frequencies[("Nome",)] == 5

    def test_rare_strata_have_unit_weight(self, skewed_table):
        resolution = build_stratified_resolution(skewed_table, ("city",), cap=50)
        cities = resolution.table.column("city").values()
        weights = resolution.weights
        assert np.allclose(weights[cities == "Nome"], 1.0)
        assert np.allclose(weights[cities == "NY"], 600 / 50)

    def test_every_stratum_represented(self, skewed_table):
        resolution = build_stratified_resolution(skewed_table, ("city",), cap=2)
        assert resolution.table.distinct_count(["city"]) == 5

    def test_weights_reconstruct_population(self, skewed_table):
        resolution = build_stratified_resolution(skewed_table, ("city",), cap=50)
        assert resolution.represented_rows == pytest.approx(1000, rel=1e-9)

    def test_rows_stored_matches_formula(self, skewed_table):
        frequencies = np.array([600, 300, 80, 15, 5])
        assert stratum_cap_rows(frequencies, 50) == 50 + 50 + 50 + 15 + 5
        resolution = build_stratified_resolution(skewed_table, ("city",), cap=50)
        assert resolution.num_rows == 170

    def test_multi_column_stratification(self, skewed_table):
        table = skewed_table.with_column(
            skewed_table.column("value").rename("bucketed")
        )
        resolution = build_stratified_resolution(skewed_table, ("city",), cap=10)
        assert resolution.columns == ("city",)
        del table

    def test_invalid_arguments(self, skewed_table):
        with pytest.raises(ValueError):
            build_stratified_resolution(skewed_table, ("city",), cap=0)
        with pytest.raises(ValueError):
            build_stratified_resolution(skewed_table, (), cap=10)

    def test_nested_across_caps_with_shared_permutation(self, skewed_table):
        shared = stratum_permutations(skewed_table, ("city",))
        small = build_stratified_resolution(skewed_table, ("city",), 20, precomputed=shared)
        large = build_stratified_resolution(skewed_table, ("city",), 100, precomputed=shared)
        assert set(small.row_indices) <= set(large.row_indices)

    def test_deterministic_given_table_and_columns(self, skewed_table):
        a = build_stratified_resolution(skewed_table, ("city",), 25)
        b = build_stratified_resolution(skewed_table, ("city",), 25)
        assert np.array_equal(a.row_indices, b.row_indices)

    def test_sample_retains_all_columns(self, skewed_table):
        # §3.1 footnote: stratification is on φ but the sample keeps every column.
        resolution = build_stratified_resolution(skewed_table, ("city",), 10)
        assert resolution.table.column_names == skewed_table.column_names
