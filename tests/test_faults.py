"""Unit tests for the fault-injection harness (no shared memory required).

Covers the :mod:`repro.faults` package itself — plan parsing, deterministic
seeded decisions, the installation plumbing, and the circuit breaker state
machine — plus the injection points that don't need a process pool: the
ingest write path (with the controller's retry/re-queue policy) and the
service layer's retry loop and slow-worker point.
"""

from __future__ import annotations

import pytest

from repro.common.config import BlinkDBConfig
from repro.common.errors import ExecutionError, QueryRejectedError
from repro.core.blinkdb import BlinkDB
from repro.faults import (
    KNOWN_POINTS,
    CircuitBreaker,
    FaultInjectedError,
    FaultInjector,
    FaultPlan,
    FaultRule,
)
from repro.faults import injector as injector_mod
from repro.ingest.controller import IngestController
from repro.service.server import QueryService
from repro.storage.table import Table


# -- plan parsing -------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_full_syntax(self):
        plan = FaultPlan.parse(
            "procpool.worker_crash:nth=2; shm.attach_fail:p=0.3;"
            " service.slow_worker:latency=0.05,once; ingest.batch_fail:limit=4",
            seed=7,
        )
        assert plan.seed == 7
        crash, attach, slow, batch = plan.rules
        assert crash == FaultRule("procpool.worker_crash", nth=2)
        assert attach == FaultRule("shm.attach_fail", probability=0.3)
        assert slow == FaultRule("service.slow_worker", latency_seconds=0.05, limit=1)
        assert batch == FaultRule("ingest.batch_fail", limit=4)
        assert plan.points == {
            "procpool.worker_crash",
            "shm.attach_fail",
            "service.slow_worker",
            "ingest.batch_fail",
        }
        assert plan.rules_for("shm.attach_fail") == ((1, attach),)

    def test_empty_clauses_are_skipped(self):
        assert FaultPlan.parse("; ;shm.alloc_fail; ").rules == (
            FaultRule("shm.alloc_fail"),
        )

    def test_typoed_point_fails_at_parse_time(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultPlan.parse("procpool.worker_crsh:nth=1")

    def test_bad_options_are_rejected(self):
        with pytest.raises(ValueError, match="unknown fault option"):
            FaultPlan.parse("shm.attach_fail:frequency=2")
        with pytest.raises(ValueError, match="bad fault option"):
            FaultPlan.parse("shm.attach_fail:always")

    def test_rule_validation(self):
        with pytest.raises(ValueError, match="not both"):
            FaultRule("shm.attach_fail", nth=2, probability=0.5)
        with pytest.raises(ValueError, match="probability"):
            FaultRule("shm.attach_fail", probability=1.5)
        with pytest.raises(ValueError, match="limit"):
            FaultRule("shm.attach_fail", limit=0)
        with pytest.raises(ValueError, match="latency"):
            FaultRule("shm.attach_fail", latency_seconds=-1.0)
        with pytest.raises(ValueError, match="nth"):
            FaultRule("shm.attach_fail", nth=-1)

    def test_known_points_cover_every_layer(self):
        assert KNOWN_POINTS == {
            "procpool.worker_crash",
            "procpool.worker_hang",
            "shm.attach_fail",
            "shm.alloc_fail",
            "ingest.batch_fail",
            "service.slow_worker",
            "net.request_drop",
            "net.slow_response",
        }


# -- injector decisions -------------------------------------------------------------


class TestFaultInjector:
    def test_nth_fires_on_exactly_the_nth_arrival(self):
        injector = FaultInjector(FaultPlan.parse("ingest.batch_fail:nth=3"))
        fired = [injector.check("ingest.batch_fail") is not None for _ in range(6)]
        assert fired == [False, False, True, False, False, False]

    def test_once_is_one_shot(self):
        injector = FaultInjector(FaultPlan.parse("ingest.batch_fail:once"))
        fired = [injector.check("ingest.batch_fail") is not None for _ in range(4)]
        assert fired == [True, False, False, False]

    def test_limit_bounds_total_fires(self):
        injector = FaultInjector(FaultPlan.parse("ingest.batch_fail:limit=2"))
        fired = [injector.check("ingest.batch_fail") is not None for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_probability_is_deterministic_per_seed(self):
        spec = "ingest.batch_fail:p=0.5"

        def pattern(seed: int) -> list[bool]:
            injector = FaultInjector(FaultPlan.parse(spec, seed=seed))
            return [
                injector.check("ingest.batch_fail") is not None for _ in range(200)
            ]

        first, again = pattern(11), pattern(11)
        assert first == again, "same seed must replay the same fault schedule"
        assert 50 < sum(first) < 150, "p=0.5 should fire roughly half the time"
        assert pattern(12) != first, "a different seed draws a different schedule"

    def test_unconditional_rule_fires_every_arrival(self):
        injector = FaultInjector(FaultPlan.parse("shm.alloc_fail"))
        assert all(injector.check("shm.alloc_fail") is not None for _ in range(5))
        assert injector.check("shm.attach_fail") is None

    def test_first_matching_rule_wins_and_latency_rides_the_decision(self):
        plan = FaultPlan.parse(
            "service.slow_worker:nth=1,latency=0.25; service.slow_worker:latency=9.0"
        )
        injector = FaultInjector(plan)
        first = injector.check("service.slow_worker")
        second = injector.check("service.slow_worker")
        assert first is not None and first.rule_index == 0
        assert first.latency_seconds == 0.25
        assert second is not None and second.rule_index == 1
        assert second.latency_seconds == 9.0

    def test_decision_error_is_a_picklable_execution_error(self):
        import pickle

        injector = FaultInjector(FaultPlan.parse("shm.alloc_fail:once"))
        decision = injector.check("shm.alloc_fail")
        error = decision.error("exporting 't'")
        assert isinstance(error, FaultInjectedError)
        assert isinstance(error, ExecutionError)
        assert "shm.alloc_fail" in str(error) and "exporting 't'" in str(error)
        revived = pickle.loads(pickle.dumps(error))
        assert str(revived) == str(error)

    def test_stats_expose_arrivals_and_fires(self):
        injector = FaultInjector(FaultPlan.parse("ingest.batch_fail:nth=2"))
        for _ in range(3):
            injector.check("ingest.batch_fail")
        assert injector.stats() == {
            "ingest.batch_fail.arrivals": 3,
            "ingest.batch_fail.fires": 1,
        }


class TestInstallation:
    def test_install_active_uninstall(self):
        assert injector_mod.active() is None
        injector = injector_mod.install(FaultPlan.parse("shm.alloc_fail"))
        try:
            assert injector_mod.active() is injector
        finally:
            injector_mod.uninstall()
        assert injector_mod.active() is None

    def test_installed_restores_the_previous_injector(self):
        outer = injector_mod.install(FaultPlan.parse("shm.alloc_fail"))
        try:
            with injector_mod.installed(FaultPlan.parse("ingest.batch_fail")) as inner:
                assert injector_mod.active() is inner
            assert injector_mod.active() is outer
        finally:
            injector_mod.uninstall()

    def test_config_installs_a_plan_at_construction(self):
        try:
            db = BlinkDB(
                BlinkDBConfig(fault_plan="ingest.batch_fail:nth=99", fault_seed=5)
            )
            injector = injector_mod.active()
            assert injector is not None
            assert injector.plan.seed == 5
            assert injector.plan.points == {"ingest.batch_fail"}
            db.close()
        finally:
            injector_mod.uninstall()


# -- circuit breaker ----------------------------------------------------------------


class _ManualClock:
    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures_only(self):
        clock = _ManualClock()
        breaker = CircuitBreaker(failure_threshold=3, cooldown_seconds=10.0, clock=clock)
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # resets the consecutive count
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 1
        assert not breaker.allow()

    def test_half_open_probe_success_closes(self):
        clock = _ManualClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=5.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.state == "half-open"
        assert breaker.allow(), "cooldown elapsed: exactly one probe is admitted"
        assert not breaker.allow(), "the probe slot is taken"
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()
        assert breaker.half_opens == 1

    def test_half_open_probe_failure_reopens_and_restarts_cooldown(self):
        clock = _ManualClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        clock.advance(4.9)
        assert not breaker.allow(), "the failed probe restarted the cooldown"
        clock.advance(0.1)
        assert breaker.allow()

    def test_stale_probe_is_reclaimed_after_a_full_cooldown(self):
        # An admitted probe query can decline the backend before exercising
        # it (stale handle, single partition) and never report back; the
        # breaker must not stay wedged open forever.
        clock = _ManualClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()  # probe taken, never reported
        clock.advance(5.0)
        assert breaker.allow(), "stale probe slot is reclaimed"
        assert breaker.half_opens == 2

    def test_state_property_does_not_consume_the_probe(self):
        clock = _ManualClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        for _ in range(3):
            assert breaker.state == "half-open"
        assert breaker.half_opens == 0

    def test_stats_are_flat_and_numeric(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        stats = breaker.stats()
        assert stats == {
            "breaker_state": 0,
            "breaker_trips": 0,
            "breaker_half_opens": 0,
            "breaker_consecutive_failures": 1,
        }
        assert all(isinstance(v, int) for v in stats.values())

    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker(cooldown_seconds=-1.0)


# -- configuration ------------------------------------------------------------------


class TestFaultConfigValidation:
    @pytest.mark.parametrize(
        ("field", "bad"),
        [
            ("procpool_task_timeout_seconds", 0.0),
            ("procpool_retry_attempts", -1),
            ("procpool_retry_backoff_seconds", -0.1),
            ("procpool_breaker_threshold", 0),
            ("procpool_breaker_cooldown_seconds", -1.0),
            ("service_retries", -1),
            ("service_retry_backoff_seconds", -0.1),
            ("ingest_flush_retries", -1),
        ],
    )
    def test_robustness_knobs_are_checked(self, field, bad):
        with pytest.raises(ValueError, match=field):
            BlinkDBConfig(**{field: bad})
        BlinkDBConfig()  # defaults are valid

    def test_task_timeout_none_disables_detection(self):
        config = BlinkDBConfig(procpool_task_timeout_seconds=None)
        assert config.procpool_task_timeout_seconds is None

    def test_bad_fault_plan_fails_at_construction(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            BlinkDB(BlinkDBConfig(fault_plan="nonsense.point"))


# -- the ingest write path ----------------------------------------------------------


def _tiny_db(**config_kwargs) -> BlinkDB:
    db = BlinkDB(BlinkDBConfig(**config_kwargs))
    table = Table.from_dict(
        "t",
        {
            "g": ["a", "b", "a", "b", "a", "b", "a", "b"],
            "x": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
        },
    )
    db.load_table(table)
    return db


_ROWS = [{"g": "a", "x": 9.0}, {"g": "b", "x": 10.0}]


class TestIngestFaults:
    def test_batch_fail_publishes_nothing_and_is_retry_safe(self):
        db = _tiny_db()
        try:
            generation = db.catalog.generation("t")
            rows_before = db.catalog.table("t").num_rows
            with injector_mod.installed(FaultPlan.parse("ingest.batch_fail:once")):
                with pytest.raises(FaultInjectedError, match="ingest.batch_fail"):
                    db.append("t", _ROWS)
                assert db.catalog.generation("t") == generation
                assert db.catalog.table("t").num_rows == rows_before
                # The fault was one-shot: the identical batch lands cleanly.
                report = db.append("t", _ROWS)
            assert report.batch_rows == 2
            assert db.catalog.table("t").num_rows == rows_before + 2
            assert db.catalog.generation("t") > generation
        finally:
            db.close()

    def test_controller_flush_retry_heals_a_transient_failure(self):
        db = _tiny_db(ingest_flush_retries=2)
        try:
            controller = db.ingest_controller("t", batch_rows=2, background=False)
            with injector_mod.installed(FaultPlan.parse("ingest.batch_fail:nth=1")):
                controller.submit(_ROWS)
                controller.flush()
            assert controller.retries_total == 1
            assert controller.pending_rows == 0
            assert db.catalog.table("t").num_rows == 10
            controller.close()
        finally:
            db.close()

    def test_controller_requeues_rows_when_every_retry_fails(self):
        db = _tiny_db()
        try:
            # batch_rows above the submission size: submit() never flushes
            # inline, so the failure surfaces from the explicit flush().
            controller = IngestController(
                db, "t", batch_rows=4, background=False,
                flush_retries=1, retry_backoff_seconds=0.0,
            )
            with injector_mod.installed(FaultPlan.parse("ingest.batch_fail")):
                controller.submit(_ROWS)
                with pytest.raises(FaultInjectedError):
                    controller.flush()
            # Nothing lost: the drained rows are back at the front.
            assert controller.pending_rows == 2
            assert db.catalog.table("t").num_rows == 8
            controller.flush()  # injector gone: the same rows land
            assert db.catalog.table("t").num_rows == 10
        finally:
            db.close()


# -- the service layer --------------------------------------------------------------


def _service(db: BlinkDB, **kwargs) -> QueryService:
    kwargs.setdefault("num_workers", 1)
    kwargs.setdefault("cache", False)
    kwargs.setdefault("retry_backoff_seconds", 0.0)
    return QueryService(db, **kwargs)


_SQL = "SELECT AVG(x) FROM t"


class TestServiceFaults:
    def test_slow_worker_injects_latency_but_not_failure(self, monkeypatch):
        db = _tiny_db()
        try:
            # The tiny db has no samples; serve the query from the exact
            # path (the slow_worker point fires in the worker loop, before
            # execution, so the injection is exercised either way).
            monkeypatch.setattr(
                db.runtime,
                "execute",
                lambda query, **kwargs: db.runtime.execute_exact(query),
            )
            with injector_mod.installed(
                FaultPlan.parse("service.slow_worker:latency=0.05,once")
            ) as injector:
                with _service(db) as service:
                    result = service.execute(_SQL, timeout=30.0)
                assert result.groups
                assert injector.stats()["service.slow_worker.fires"] == 1
        finally:
            db.close()

    def test_transient_execution_failure_is_retried(self, monkeypatch):
        db = _tiny_db()
        try:
            calls = {"n": 0}

            def flaky(query, **kwargs):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise RuntimeError("transient worker fault")
                return db.runtime.execute_exact(query)

            monkeypatch.setattr(db.runtime, "execute", flaky)
            with _service(db, retries=1) as service:
                result = service.execute(_SQL, timeout=30.0)
                assert result.groups
                assert service.metrics.retries.value == 1
                assert service.metrics.failed.value == 0
        finally:
            db.close()

    def test_exhausted_retries_fail_the_ticket(self, monkeypatch):
        db = _tiny_db()
        try:
            def always_broken(query, **kwargs):
                raise RuntimeError("persistent fault")

            monkeypatch.setattr(db.runtime, "execute", always_broken)
            with _service(db, retries=2) as service:
                ticket = service.submit(_SQL)
                with pytest.raises(RuntimeError, match="persistent fault"):
                    ticket.result(timeout=30.0)
                assert ticket.status == "failed"
                assert service.metrics.retries.value == 2
                assert service.metrics.failed.value == 1
        finally:
            db.close()

    def test_admission_rejections_are_never_retried(self, monkeypatch):
        db = _tiny_db()
        try:
            def rejected(query, **kwargs):
                raise QueryRejectedError("no resolution fits", reason="deadline")

            monkeypatch.setattr(db.runtime, "execute", rejected)
            with _service(db, retries=5) as service:
                ticket = service.submit(_SQL)
                with pytest.raises(QueryRejectedError):
                    ticket.result(timeout=30.0)
                assert ticket.status == "shed"
                assert service.metrics.retries.value == 0
        finally:
            db.close()

    def test_service_retries_default_from_config(self):
        db = _tiny_db(service_retries=3, service_retry_backoff_seconds=0.0)
        try:
            with _service(db) as service:
                assert service.retries == 3
                assert service.retry_backoff_seconds == 0.0
        finally:
            db.close()


# -- metrics surface ----------------------------------------------------------------


class TestFaultMetrics:
    def test_injector_counters_land_in_db_metrics(self):
        db = _tiny_db()
        try:
            with injector_mod.installed(FaultPlan.parse("ingest.batch_fail:once")):
                with pytest.raises(FaultInjectedError):
                    db.append("t", _ROWS)
                gauges = db.metrics()["faults"]
                series = {s["labels"]["name"]: s["value"] for s in gauges["series"]}
            assert series["ingest.batch_fail.arrivals"] == 1
            assert series["ingest.batch_fail.fires"] == 1
        finally:
            db.close()

    def test_service_retries_land_in_db_metrics(self, monkeypatch):
        db = _tiny_db()
        try:
            calls = {"n": 0}

            def flaky(query, **kwargs):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise RuntimeError("transient")
                return db.runtime.execute_exact(query)

            monkeypatch.setattr(db.runtime, "execute", flaky)
            with _service(db, retries=1, name="svc") as service:
                service.execute(_SQL, timeout=30.0)
                gauges = db.metrics()["faults"]
                series = {s["labels"]["name"]: s["value"] for s in gauges["series"]}
                assert series["service.svc.retries"] == 1
        finally:
            db.close()
