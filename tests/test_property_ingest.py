"""Property-based tests (hypothesis) of the streaming-ingest subsystem.

Three classes of invariant:

* **Split-vs-whole equivalence** — because sample membership is a pure
  function of (table, family, global row index), appending the same rows in
  one batch or any partition into sub-batches yields *bit-identical* samples.
* **Statistical validity** — appended rows join uniform resolutions with
  probability equal to the resolution's fraction, and stratified resolutions
  keep the per-stratum cap/coverage/weight invariants of ``S(φ, K)`` across
  any append sequence.
* **End-to-end accuracy** (the PR's acceptance criterion) — after any
  sequence of appends, approximate answers from the maintained samples stay
  within their reported error bars of the exact answers on the grown table.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import BlinkDBConfig, ClusterConfig, SamplingConfig
from repro.common.rng import index_uniforms, make_rng
from repro.core.blinkdb import BlinkDB
from repro.ingest.maintainers import StratifiedFamilyMaintainer, UniformFamilyMaintainer
from repro.sampling.family import StratifiedSampleFamily, UniformSampleFamily, verify_nesting
from repro.storage.table import Table


def make_table(frequencies: list[int], name: str = "prop") -> Table:
    keys = []
    values = []
    for index, frequency in enumerate(frequencies):
        keys.extend([f"k{index:03d}"] * frequency)
        values.extend(float(v) for v in range(frequency))
    return Table.from_dict(name, {"key": keys, "value": values})


def make_batch(rng: np.random.Generator, rows: int, num_keys: int) -> dict[str, np.ndarray]:
    return {
        "key": np.asarray(
            [f"k{int(k):03d}" for k in rng.integers(0, num_keys, size=rows)], dtype=object
        ),
        "value": rng.normal(50.0, 10.0, size=rows),
    }


def split_batch(batch: dict[str, np.ndarray], cuts: list[int]) -> list[dict[str, np.ndarray]]:
    rows = len(batch["key"])
    edges = sorted({0, rows, *[c % (rows + 1) for c in cuts]})
    return [
        {name: values[a:b] for name, values in batch.items()}
        for a, b in zip(edges[:-1], edges[1:])
        if b > a
    ]


frequency_lists = st.lists(st.integers(min_value=1, max_value=60), min_size=2, max_size=12)


class TestSplitVsWholeEquivalence:
    @given(
        frequency_lists,
        st.integers(min_value=1, max_value=200),
        st.lists(st.integers(min_value=0, max_value=500), max_size=4),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_uniform_family_is_batch_order_independent(self, frequencies, rows, cuts, seed):
        table = make_table(frequencies)
        family = UniformSampleFamily.build(
            table, SamplingConfig(uniform_sample_fraction=0.5), min_rows=1
        )
        batch = make_batch(make_rng(seed), rows, len(frequencies))

        whole = UniformFamilyMaintainer("prop", family)
        whole_family, _ = whole.apply(table.append_batch(batch), batch, table.num_rows)

        split = UniformFamilyMaintainer("prop", family)
        current = table
        split_family = family
        for piece in split_batch(batch, cuts):
            start = current.num_rows
            current = current.append_batch(piece)
            split_family, _ = split.apply(current, piece, start)

        for a, b in zip(whole_family.resolutions, split_family.resolutions):
            np.testing.assert_array_equal(a.row_indices, b.row_indices)
            np.testing.assert_allclose(a.weights, b.weights)
        assert verify_nesting(split_family)

    @given(
        frequency_lists,
        st.integers(min_value=1, max_value=200),
        st.lists(st.integers(min_value=0, max_value=500), max_size=4),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_stratified_family_is_batch_order_independent(
        self, frequencies, rows, cuts, cap, seed
    ):
        table = make_table(frequencies)
        config = SamplingConfig(largest_cap=cap, min_cap=1, resolution_ratio=2.0)
        family = StratifiedSampleFamily.build(table, ("key",), config)
        batch = make_batch(make_rng(seed), rows, len(frequencies) + 2)

        whole = StratifiedFamilyMaintainer("prop", family, table)
        whole_family, _ = whole.apply(table.append_batch(batch), batch, table.num_rows)

        split = StratifiedFamilyMaintainer("prop", family, table)
        current = table
        split_family = family
        for piece in split_batch(batch, cuts):
            start = current.num_rows
            current = current.append_batch(piece)
            split_family, _ = split.apply(current, piece, start)

        for a, b in zip(whole_family.resolutions, split_family.resolutions):
            assert a.cap == b.cap
            np.testing.assert_array_equal(a.row_indices, b.row_indices)
            np.testing.assert_allclose(a.weights, b.weights)
        assert verify_nesting(split_family)


class TestStatisticalValidity:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_uniform_inclusion_probability_matches_fraction(self, seed):
        # Tags are uniform in [0,1): over many rows the inclusion frequency
        # of `tag < p` concentrates around p (binomial, 6-sigma bound).
        rows = 20_000
        indices = np.arange(rows, dtype=np.int64)
        tags = index_uniforms(indices, f"table-{seed}", "uniform-ingest")
        for p in (0.05, 0.2, 0.5):
            included = int(np.count_nonzero(tags < p))
            sigma = float(np.sqrt(rows * p * (1 - p)))
            assert abs(included - rows * p) < 6 * sigma

    @given(
        frequency_lists,
        st.lists(st.integers(min_value=1, max_value=120), min_size=1, max_size=4),
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_stratified_cap_invariants_across_appends(
        self, frequencies, batch_sizes, cap, seed
    ):
        table = make_table(frequencies)
        config = SamplingConfig(largest_cap=cap, min_cap=1, resolution_ratio=2.0)
        family = StratifiedSampleFamily.build(table, ("key",), config)
        maintainer = StratifiedFamilyMaintainer("prop", family, table)
        rng = make_rng(seed)
        current = table
        for batch_rows in batch_sizes:
            batch = make_batch(rng, batch_rows, len(frequencies) + 3)
            start = current.num_rows
            current = current.append_batch(batch)
            family, _ = maintainer.apply(current, batch, start)

        true_frequencies = current.value_frequencies(["key"])
        for resolution in family.resolutions:
            sample_frequencies = resolution.table.value_frequencies(["key"])
            # Cap respected, every stratum covered, sub-cap strata in full.
            assert all(c <= resolution.cap for c in sample_frequencies.values())
            assert set(sample_frequencies) == set(true_frequencies)
            for key, frequency in true_frequencies.items():
                assert sample_frequencies[key] == min(frequency, resolution.cap)
            # Weights reconstruct the grown population exactly.
            assert resolution.represented_rows == pytest.approx(current.num_rows)


class TestAnswersStayWithinErrorBars:
    """Acceptance: approximate answers vs exact answers on the grown table."""

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.lists(st.integers(min_value=50, max_value=400), min_size=1, max_size=3),
    )
    @settings(max_examples=8, deadline=None, derandomize=True)
    def test_maintained_samples_answer_within_reported_bars(self, seed, batch_sizes):
        config = BlinkDBConfig(
            sampling=SamplingConfig(largest_cap=150, min_cap=20, uniform_sample_fraction=0.2),
            cluster=ClusterConfig(num_nodes=10),
        )
        db = BlinkDB(config)
        rng = make_rng(seed)
        base = Table.from_dict(
            "events",
            {
                "region": [f"r{int(k):02d}" for k in rng.integers(0, 8, size=6_000)],
                "load_ms": rng.lognormal(3.0, 0.4, size=6_000),
            },
        )
        db.load_table(base)
        db.register_workload(
            ["SELECT AVG(load_ms) FROM events WHERE region = 'r01' GROUP BY region"]
        )
        db.build_samples(storage_budget_fraction=0.8)
        for i, rows in enumerate(batch_sizes):
            db.append(
                "events",
                {
                    "region": [f"r{int(k):02d}" for k in rng.integers(0, 10, size=rows)],
                    "load_ms": rng.lognormal(3.1, 0.4, size=rows),
                },
            )
        for sql in (
            "SELECT COUNT(*) FROM events WHERE region = 'r01'",
            "SELECT SUM(load_ms) FROM events WHERE region = 'r03'",
            "SELECT AVG(load_ms) FROM events WHERE region = 'r05'",
        ):
            approx = db.query(sql).scalar()
            exact = db.query_exact(sql).scalar().estimate.value
            bar = approx.error_bar
            if not np.isfinite(bar):
                continue
            assert abs(approx.estimate.value - exact) <= bar + 1e-9, (
                sql, approx.estimate.value, exact, bar,
            )
