"""Tests for repro.common.units."""

import pytest

from repro.common.units import GB, KB, MB, TB, format_bytes, format_duration, parse_size


class TestParseSize:
    def test_plain_integer_passthrough(self):
        assert parse_size(1024) == 1024

    def test_float_truncates_to_int(self):
        assert parse_size(10.7) == 10

    def test_kb_mb_gb_tb_suffixes(self):
        assert parse_size("1KB") == KB
        assert parse_size("2MB") == 2 * MB
        assert parse_size("3GB") == 3 * GB
        assert parse_size("1TB") == TB

    def test_fractional_sizes(self):
        assert parse_size("1.5GB") == int(1.5 * GB)

    def test_case_insensitive_and_whitespace(self):
        assert parse_size("  10 mb ") == 10 * MB

    def test_short_unit_forms(self):
        assert parse_size("4k") == 4 * KB
        assert parse_size("4g") == 4 * GB

    def test_rejects_negative_numbers(self):
        with pytest.raises(ValueError):
            parse_size(-5)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_size("lots of bytes")


class TestFormatBytes:
    def test_small_values_in_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_megabyte_range(self):
        assert format_bytes(5 * MB) == "5.00 MB"

    def test_terabyte_range(self):
        assert format_bytes(17 * TB).endswith("TB")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            format_bytes(-1)


class TestFormatDuration:
    def test_microseconds(self):
        assert format_duration(5e-7).endswith("us")

    def test_milliseconds(self):
        assert format_duration(0.25) == "250.0 ms"

    def test_seconds(self):
        assert format_duration(2.5) == "2.50 s"

    def test_minutes(self):
        assert format_duration(600).endswith("min")

    def test_hours(self):
        assert format_duration(10_000).endswith("h")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            format_duration(-0.1)
