"""Tests for the sample-selection optimizer: candidates, MILP, solvers, planner."""

import numpy as np
import pytest

from repro.common.config import SamplingConfig
from repro.optimizer.candidates import (
    CandidateColumnSet,
    candidate_column_subsets,
    generate_candidates,
)
from repro.optimizer.milp import SampleSelectionProblem
from repro.optimizer.planner import SampleSelectionPlanner
from repro.optimizer.solver import solve, solve_branch_and_bound, solve_greedy
from repro.sql.templates import QueryTemplate
from repro.workloads.conviva import generate_sessions_table


@pytest.fixture(scope="module")
def table():
    return generate_sessions_table(num_rows=10_000, seed=21, num_cities=60, num_customers=80)


@pytest.fixture(scope="module")
def config():
    return SamplingConfig(largest_cap=60, min_cap=10, uniform_sample_fraction=0.05)


@pytest.fixture(scope="module")
def templates():
    return [
        QueryTemplate("sessions", ("city", "os"), 0.4),
        QueryTemplate("sessions", ("country", "dt"), 0.3),
        QueryTemplate("sessions", ("customer",), 0.2),
        QueryTemplate("sessions", ("genre",), 0.1),
    ]


class TestCandidates:
    def test_subsets_bounded_by_max_columns(self, templates):
        subsets = candidate_column_subsets(templates, max_columns=1)
        assert all(len(s) == 1 for s in subsets)
        subsets2 = candidate_column_subsets(templates, max_columns=2)
        assert ("city", "os") in subsets2

    def test_subsets_only_from_templates(self, templates):
        subsets = candidate_column_subsets(templates, max_columns=3)
        assert ("city", "country") not in subsets  # never co-occur in a template

    def test_generate_candidates_fields(self, table, templates, config):
        candidates = generate_candidates(table, templates, config)
        assert candidates
        for candidate in candidates:
            assert candidate.storage_bytes > 0
            assert candidate.distinct_count > 0
            assert candidate.delta >= 0

    def test_multi_column_candidates_cost_more(self, table, templates, config):
        candidates = {c.columns: c for c in generate_candidates(table, templates, config)}
        assert candidates[("city", "os")].storage_bytes >= candidates[("city",)].storage_bytes

    def test_unknown_columns_skipped(self, table, config):
        templates = [QueryTemplate("sessions", ("not_a_column",), 1.0)]
        assert generate_candidates(table, templates, config) == []

    def test_candidate_validation(self):
        with pytest.raises(ValueError):
            CandidateColumnSet(columns=(), storage_bytes=1, delta=0, distinct_count=1)
        with pytest.raises(ValueError):
            CandidateColumnSet(columns=("b", "a"), storage_bytes=1, delta=0, distinct_count=1)


class TestProblem:
    @pytest.fixture()
    def problem(self, table, templates, config):
        candidates = generate_candidates(table, templates, config)
        return SampleSelectionProblem.build(
            table=table,
            templates=templates,
            candidates=candidates,
            storage_budget_bytes=int(0.4 * table.size_bytes),
            largest_cap=config.effective_cap(table.num_rows),
        )

    def test_coverage_matrix_shape_and_range(self, problem):
        assert problem.coverage.shape == (problem.num_templates, problem.num_candidates)
        assert np.all(problem.coverage >= 0)
        assert np.all(problem.coverage <= 1)

    def test_exact_template_candidate_has_full_coverage(self, problem):
        for i, template in enumerate(problem.templates):
            for j, candidate in enumerate(problem.candidates):
                if candidate.columns == tuple(sorted(template.columns)):
                    assert problem.coverage[i, j] == pytest.approx(1.0)

    def test_objective_monotone_in_selection(self, problem):
        empty = np.zeros(problem.num_candidates, dtype=bool)
        everything = np.ones(problem.num_candidates, dtype=bool)
        assert problem.objective(empty) == 0.0
        assert problem.objective(everything) >= problem.objective(empty)

    def test_feasibility_checks_budget(self, problem):
        everything = np.ones(problem.num_candidates, dtype=bool)
        if problem.storage_used(everything) > problem.storage_budget_bytes:
            assert not problem.is_feasible(everything)
        assert problem.is_feasible(np.zeros(problem.num_candidates, dtype=bool))

    def test_churn_constraint_accounting(self, table, templates, config):
        candidates = generate_candidates(table, templates, config)
        existing = [candidates[0].columns]
        problem = SampleSelectionProblem.build(
            table=table,
            templates=templates,
            candidates=candidates,
            storage_budget_bytes=int(0.4 * table.size_bytes),
            largest_cap=60,
            existing_column_sets=existing,
            churn_fraction=0.0,
        )
        keep_existing = problem.existing.copy()
        assert problem.churn_used(keep_existing) == 0.0
        drop_existing = np.zeros(problem.num_candidates, dtype=bool)
        assert problem.churn_used(drop_existing) > 0
        assert not problem.is_feasible(drop_existing)


class TestSolvers:
    @pytest.fixture()
    def problem(self, table, templates, config):
        candidates = generate_candidates(table, templates, config)
        return SampleSelectionProblem.build(
            table=table,
            templates=templates,
            candidates=candidates,
            storage_budget_bytes=int(0.35 * table.size_bytes),
            largest_cap=config.effective_cap(table.num_rows),
        )

    def test_greedy_is_feasible(self, problem):
        result = solve_greedy(problem)
        assert problem.is_feasible(result.selection)
        assert result.objective >= 0

    def test_branch_and_bound_at_least_as_good_as_greedy(self, problem):
        greedy = solve_greedy(problem)
        exact = solve_branch_and_bound(problem, time_limit_seconds=20)
        assert exact.objective >= greedy.objective - 1e-9
        assert exact.optimal
        assert problem.is_feasible(exact.selection)

    def test_branch_and_bound_matches_brute_force_on_small_problem(self, table, config):
        templates = [
            QueryTemplate("sessions", ("city",), 0.5),
            QueryTemplate("sessions", ("country", "dt"), 0.5),
        ]
        candidates = generate_candidates(table, templates, config)
        problem = SampleSelectionProblem.build(
            table=table,
            templates=templates,
            candidates=candidates,
            storage_budget_bytes=int(0.3 * table.size_bytes),
            largest_cap=60,
        )
        # Brute force over all 2^alpha selections.
        best = 0.0
        for mask in range(2**problem.num_candidates):
            selection = np.array(
                [(mask >> j) & 1 for j in range(problem.num_candidates)], dtype=bool
            )
            if problem.is_feasible(selection):
                best = max(best, problem.objective(selection))
        result = solve_branch_and_bound(problem)
        assert result.objective == pytest.approx(best, rel=1e-9)

    def test_solve_dispatch_empty_problem(self, table, config):
        problem = SampleSelectionProblem.build(
            table=table,
            templates=[],
            candidates=[],
            storage_budget_bytes=100,
            largest_cap=60,
        )
        result = solve(problem)
        assert result.optimal
        assert result.selection.shape == (0,)

    def test_selected_column_sets(self, problem):
        result = solve(problem)
        column_sets = result.selected_column_sets(problem)
        assert all(isinstance(columns, tuple) for columns in column_sets)


class TestPlanner:
    def test_plan_respects_budget(self, table, templates, config):
        planner = SampleSelectionPlanner(table, config)
        plan = planner.plan(templates, storage_budget_fraction=0.5)
        assert plan.total_storage_bytes <= 0.5 * table.size_bytes * 1.01
        assert plan.storage_fraction_of(table.size_bytes) <= 0.51

    def test_larger_budget_never_selects_fewer_families(self, table, templates, config):
        planner = SampleSelectionPlanner(table, config)
        small = planner.plan(templates, storage_budget_fraction=0.3)
        large = planner.plan(templates, storage_budget_fraction=2.0)
        assert len(large.families) >= len(small.families)
        assert large.objective >= small.objective

    def test_plan_prefers_skewed_frequent_templates(self, table, config):
        planner = SampleSelectionPlanner(table, config)
        templates = [
            QueryTemplate("sessions", ("city",), 0.9),
            QueryTemplate("sessions", ("genre",), 0.1),
        ]
        plan = planner.plan(templates, storage_budget_fraction=0.35)
        chosen = {f.columns for f in plan.families}
        assert ("city",) in chosen

    def test_describe_rows(self, table, templates, config):
        planner = SampleSelectionPlanner(table, config)
        plan = planner.plan(templates, storage_budget_fraction=0.5)
        rows = plan.describe()
        assert rows[0]["columns"] == "uniform"
        assert len(rows) == 1 + len(plan.families)

    def test_zero_budget_only_uniform(self, table, templates, config):
        planner = SampleSelectionPlanner(table, config)
        plan = planner.plan(templates, storage_budget_fraction=0.01)
        assert plan.families == ()
