"""Service-layer correctness under streaming ingestion.

Two contracts from the ingest subsystem's visibility design:

* **Per-table cache fencing** — a cached answer is never served across an
  append to its base table, while answers for *other* tables keep their
  entries (and in-flight inserts computed against the pre-append generation
  are refused).
* **Single-generation answers** — a query racing an append returns an answer
  computed entirely against one (table, samples) generation: the stamped
  generation's row count matches the answer bit-for-bit, never a mix of old
  and new blocks.
"""

from __future__ import annotations

import threading

import pytest

from repro.common.config import BlinkDBConfig, ClusterConfig, SamplingConfig
from repro.core.blinkdb import BlinkDB
from repro.workloads.conviva import conviva_query_templates, generate_sessions_table
from repro.workloads.tpch import generate_lineitem_table, tpch_query_templates


@pytest.fixture()
def dual_table_db() -> BlinkDB:
    config = BlinkDBConfig(
        sampling=SamplingConfig(largest_cap=80, min_cap=10, uniform_sample_fraction=0.1),
        cluster=ClusterConfig(num_nodes=10),
    )
    db = BlinkDB(config)
    sessions = generate_sessions_table(num_rows=8_000, seed=7, num_cities=30)
    lineitem = generate_lineitem_table(num_rows=8_000, seed=13)
    db.load_table(sessions, simulated_rows=800_000)
    db.load_table(lineitem, simulated_rows=800_000)
    db.register_workload(templates=conviva_query_templates())
    db.register_workload(templates=tpch_query_templates())
    db.build_samples(table_name="sessions", storage_budget_fraction=0.5)
    db.build_samples(table_name="lineitem", storage_budget_fraction=0.5)
    return db


def batch_for(db: BlinkDB, table: str, rows: int, seed: int) -> dict[str, list]:
    if table == "sessions":
        src = generate_sessions_table(num_rows=rows, seed=seed, num_cities=30)
    else:
        src = generate_lineitem_table(num_rows=rows, seed=seed)
    return {name: list(src.column(name).values()) for name in src.column_names}


SESSIONS_SQL = "SELECT COUNT(*) FROM sessions WHERE city = 'city_0001'"
LINEITEM_SQL = "SELECT COUNT(*) FROM lineitem WHERE returnflag = 'R'"


class TestPerTableCacheFencing:
    def test_append_invalidates_only_its_table(self, dual_table_db):
        db = dual_table_db
        service = db.serve(num_workers=2)
        try:
            first_sessions = service.execute(SESSIONS_SQL)
            first_lineitem = service.execute(LINEITEM_SQL)
            assert service.execute(SESSIONS_SQL) is first_sessions  # cache hit
            assert service.execute(LINEITEM_SQL) is first_lineitem

            db.append("sessions", batch_for(db, "sessions", 400, seed=21))

            # The appended table recomputes on the new generation...
            after = service.execute(SESSIONS_SQL)
            assert after is not first_sessions
            assert after.metadata["generation"] == 1
            # ...while the untouched table keeps serving from cache.
            assert service.execute(LINEITEM_SQL) is first_lineitem
            stats = service.cache.describe()
            assert stats["by_reason"].get("table-append") == 1
        finally:
            service.close()

    def test_stale_insert_refused_after_append(self, dual_table_db):
        db = dual_table_db
        service = db.serve(num_workers=2)
        try:
            from repro.service.cache import cache_key
            from repro.sql.parser import parse_query

            key = cache_key(parse_query(SESSIONS_SQL))
            generation = service.cache.generation_for("sessions")
            result = service.execute(SESSIONS_SQL)
            db.append("sessions", batch_for(db, "sessions", 100, seed=5))
            # An insert computed against the pre-append generation is refused.
            assert not service.cache.put(key, result, table="sessions", generation=generation)
            assert service.cache.get(key) is None
        finally:
            service.close()

    def test_every_append_fences_even_without_service_queries(self, dual_table_db):
        db = dual_table_db
        service = db.serve(num_workers=1)
        try:
            before = service.cache.generation_for("sessions")
            db.append("sessions", batch_for(db, "sessions", 50, seed=6))
            db.append("sessions", batch_for(db, "sessions", 50, seed=7))
            assert service.cache.generation_for("sessions") == before + 2
            assert service.cache.generation_for("lineitem") == 0
        finally:
            service.close()


class TestSingleGenerationAnswers:
    def test_concurrent_queries_see_exactly_one_generation(self, dual_table_db):
        """COUNT(*) under concurrent appends maps 1:1 to a generation's row count.

        Batches have pairwise-distinct sizes, so every (generation -> exact
        row count) pair is unambiguous; a mixed-generation scan would produce
        a count matching no generation.
        """
        db = dual_table_db
        base_rows = db.catalog.table("sessions").num_rows
        batch_sizes = [101, 203, 307, 409]
        expected = {0: base_rows}
        running = base_rows
        for generation, size in enumerate(batch_sizes, start=1):
            running += size
            expected[generation] = running

        errors: list[str] = []
        observed: list[tuple[int, int]] = []
        stop = threading.Event()

        def reader() -> None:
            while not stop.is_set():
                result = db.query_exact("SELECT COUNT(*) FROM sessions")
                count = int(result.scalar().estimate.value)
                generation = result.metadata["generation"]
                observed.append((generation, count))
                if expected.get(generation) != count:
                    errors.append(f"generation {generation} returned {count}")

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for size, seed in zip(batch_sizes, (31, 32, 33, 34)):
                db.append("sessions", batch_for(db, "sessions", size, seed=seed))
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not errors, errors[:5]
        assert observed  # the readers actually raced the appends

    def test_approximate_answers_are_single_generation_too(self, dual_table_db):
        db = dual_table_db
        stop = threading.Event()
        errors: list[str] = []

        def reader() -> None:
            while not stop.is_set():
                result = db.query("SELECT COUNT(*) FROM sessions WHERE city = 'city_0001'")
                generation = result.metadata["generation"]
                # Sum of weights of the chosen sample must reconstruct the
                # generation's population, not a mix.
                if generation not in expected_population:
                    errors.append(f"unknown generation {generation}")

        expected_population = {0: 8_000}
        total = 8_000
        threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        try:
            for generation, (size, seed) in enumerate([(111, 41), (222, 42)], start=1):
                total += size
                expected_population[generation] = total
                db.append("sessions", batch_for(db, "sessions", size, seed=seed))
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not errors, errors[:5]
