"""Tests for repro.storage.table."""

import numpy as np
import pytest

from repro.common.errors import SchemaError
from repro.storage.column import Column
from repro.storage.table import Table


@pytest.fixture()
def table() -> Table:
    return Table.from_dict(
        "t",
        {
            "city": ["NY", "NY", "SF", "LA", "SF", "NY"],
            "os": ["Win", "Mac", "Win", "Win", "Mac", "Win"],
            "time": [10.0, 20.0, 30.0, 40.0, 50.0, 60.0],
        },
    )


class TestConstruction:
    def test_from_dict_row_count(self, table):
        assert table.num_rows == 6
        assert len(table) == 6

    def test_mismatched_column_lengths_rejected(self):
        with pytest.raises(SchemaError):
            Table("bad", [Column.from_values("a", [1, 2]), Column.from_values("b", [1])])

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(SchemaError):
            Table("bad", [Column.from_values("a", [1]), Column.from_values("a", [2])])

    def test_requires_at_least_one_column(self):
        with pytest.raises(SchemaError):
            Table("bad", [])

    def test_size_estimates(self, table):
        assert table.row_width_bytes == 24 + 24 + 8
        assert table.size_bytes == table.row_width_bytes * 6


class TestRowOperations:
    def test_take_preserves_order(self, table):
        subset = table.take(np.array([3, 0]))
        assert subset.column("city").values().tolist() == ["LA", "NY"]

    def test_filter_mask(self, table):
        mask = np.array([True, False, False, False, False, True])
        subset = table.filter(mask)
        assert subset.num_rows == 2
        assert subset.column("time").values().tolist() == [10.0, 60.0]

    def test_filter_wrong_length_rejected(self, table):
        with pytest.raises(SchemaError):
            table.filter(np.array([True, False]))

    def test_head(self, table):
        assert table.head(2).num_rows == 2
        assert table.head(100).num_rows == 6

    def test_project(self, table):
        projected = table.project(["time"])
        assert projected.column_names == ["time"]

    def test_project_unknown_column(self, table):
        with pytest.raises(SchemaError):
            table.project(["nope"])

    def test_with_column_appends_and_replaces(self, table):
        extra = Column.from_values("extra", [1, 2, 3, 4, 5, 6])
        widened = table.with_column(extra)
        assert "extra" in widened.schema
        replaced = widened.with_column(Column.from_values("extra", [0, 0, 0, 0, 0, 0]))
        assert replaced.column("extra").values().tolist() == [0] * 6

    def test_sort_by_groups_rows_contiguously(self, table):
        ordered = table.sort_by(["city", "os"])
        cities = ordered.column("city").values().tolist()
        assert cities == sorted(cities)


class TestGrouping:
    def test_group_codes_cover_all_rows(self, table):
        codes, keys = table.group_codes(["city"])
        assert codes.shape[0] == table.num_rows
        assert set(codes.tolist()) == set(range(len(keys)))

    def test_group_keys_are_decoded_tuples(self, table):
        _, keys = table.group_codes(["city", "os"])
        assert ("NY", "Win") in keys

    def test_value_frequencies(self, table):
        freq = table.value_frequencies(["city"])
        assert freq[("NY",)] == 3
        assert freq[("SF",)] == 2
        assert freq[("LA",)] == 1

    def test_distinct_count(self, table):
        assert table.distinct_count(["city"]) == 3
        assert table.distinct_count(["city", "os"]) == 5
        assert table.distinct_count([]) == 0

    def test_group_codes_requires_columns(self, table):
        with pytest.raises(SchemaError):
            table.group_codes([])


class TestConversion:
    def test_to_dict_round_trip(self, table):
        data = table.to_dict()
        rebuilt = Table.from_dict("t2", data)
        assert rebuilt.num_rows == table.num_rows
        assert rebuilt.column("city").values().tolist() == table.column("city").values().tolist()

    def test_iter_rows(self, table):
        rows = list(table.iter_rows())
        assert len(rows) == 6
        assert rows[0]["city"] == "NY"
