"""Concurrency tests: parallel queries match serial answers; rebuilds fence caches."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.common.config import BlinkDBConfig, ClusterConfig, SamplingConfig
from repro.core.blinkdb import BlinkDB
from repro.service.loadgen import mixed_bound_trace, run_closed_loop
from repro.workloads.conviva import conviva_query_templates
from repro.workloads.tracegen import generate_trace


@pytest.fixture(scope="module")
def concurrent_db(sessions_table):
    config = BlinkDBConfig(
        sampling=SamplingConfig(largest_cap=80, min_cap=10, uniform_sample_fraction=0.1),
        cluster=ClusterConfig(num_nodes=20),
    )
    db = BlinkDB(config)
    db.load_table(sessions_table, simulated_rows=20_000_000)
    db.register_workload(templates=conviva_query_templates())
    db.build_samples(storage_budget_fraction=0.5)
    return db


@pytest.fixture(scope="module")
def trace(sessions_table):
    return generate_trace(
        conviva_query_templates(),
        sessions_table,
        num_queries=16,
        seed=29,
        measure_columns=("session_time", "jointimems"),
    )


def _answers(result):
    """Flatten a QueryResult into comparable (key, name, value, error) rows."""
    return [
        (group.key, name, aggregate.value, aggregate.error_bar)
        for group in result.groups
        for name, aggregate in sorted(group.aggregates.items())
    ]


class TestConcurrentQueries:
    def test_threaded_query_matches_serial(self, concurrent_db, trace):
        serial = [_answers(concurrent_db.query(sql)) for sql in trace]
        with ThreadPoolExecutor(max_workers=8) as pool:
            threaded = list(pool.map(lambda sql: _answers(concurrent_db.query(sql)), trace))
        assert threaded == serial

    def test_service_answers_match_direct_queries(self, concurrent_db, trace):
        direct = [_answers(concurrent_db.query(sql)) for sql in trace]
        with concurrent_db.serve(num_workers=4, cache=False) as service:
            tickets = [service.submit(sql) for sql in trace]
            served = [_answers(ticket.result(timeout=60)) for ticket in tickets]
        assert served == direct

    def test_runtime_stats_count_concurrent_executions(self, concurrent_db, trace):
        runtime = concurrent_db.runtime
        before = runtime.stats["queries_executed"]
        with ThreadPoolExecutor(max_workers=6) as pool:
            list(pool.map(concurrent_db.query, trace))
        assert runtime.stats["queries_executed"] == before + len(trace)

    def test_closed_loop_load_completes_everything(self, concurrent_db, sessions_table):
        queries = mixed_bound_trace(
            conviva_query_templates(),
            sessions_table,
            num_queries=24,
            seed=5,
            time_bounds=(20.0, 40.0),
        )
        with concurrent_db.serve(num_workers=4, max_queue_depth=None) as service:
            report = run_closed_loop(service, queries, num_clients=6, timeout=120)
        assert report.submitted == 24
        assert report.completed + report.shed + report.failed == 24
        assert report.failed == 0
        assert report.completed > 0
        assert report.throughput_qps > 0

    def test_rebuild_between_queries_is_not_served_stale(self, concurrent_db):
        sql = "SELECT AVG(session_time) FROM sessions WHERE country = 'country_0003' GROUP BY dt"
        with concurrent_db.serve(num_workers=2) as service:
            session = service.connect()
            session.execute(sql)
            session.execute(sql)
            assert service.metrics.cache_hits.value == 1
            generation_before = service.cache.generation
            concurrent_db.build_samples(storage_budget_fraction=0.5)
            assert service.cache.generation > generation_before
            assert len(service.cache) == 0
            fresh = session.execute(sql)
            # The post-rebuild answer was recomputed (a miss), and it matches
            # a direct query against the rebuilt samples.
            assert service.metrics.cache_misses.value == 2
            assert _answers(fresh) == _answers(concurrent_db.query(sql))

    def test_concurrent_queries_during_rebuild_stay_consistent(self, concurrent_db, trace):
        """Queries racing a sample rebuild neither crash nor deadlock."""
        errors: list[BaseException] = []

        def worker(sql: str) -> None:
            try:
                concurrent_db.query(sql)
            except BaseException as error:  # noqa: BLE001 - recorded for the assert
                errors.append(error)

        with ThreadPoolExecutor(max_workers=8) as pool:
            for sql in trace:
                pool.submit(worker, sql)
            concurrent_db.build_samples(storage_budget_fraction=0.5)
        assert not errors
