"""Tests for compiled predicate kernels (zone-map triage + selection vectors)."""

import numpy as np
import pytest

from repro.engine.expressions import evaluate_predicate
from repro.engine.kernels import ScanCounters, compile_predicate
from repro.planner.logical import LogicalPlan
from repro.storage.table import Table
from repro.storage.zonemaps import ZoneDecision

ROWS = 120


@pytest.fixture()
def table() -> Table:
    # `a` is sorted (clustered), `b` cycles, `city` clusters in thirds.
    return Table.from_dict(
        "t",
        {
            "a": list(range(ROWS)),
            "b": [i % 7 for i in range(ROWS)],
            "x": [float(i) / 3.0 for i in range(ROWS)],
            "city": [["Austin", "Boston", "Chicago"][i // (ROWS // 3)] for i in range(ROWS)],
        },
    )


def where(fragment: str):
    return LogicalPlan.of(f"SELECT COUNT(*) FROM t WHERE {fragment}").where


def kernel_for(table: Table, fragment: str, block_rows: int = 16):
    return compile_predicate(where(fragment), table, table.zone_map_index(block_rows))


PREDICATES = [
    "a < 10",
    "a >= 110",
    "a BETWEEN 30 AND 45",
    "b = 3",
    "b != 3",
    "b IN (1, 5, 6)",
    "x > 20.5",
    "city = 'Boston'",
    "city != 'Boston'",
    "city IN ('Austin', 'Chicago')",
    "city < 'Boston'",
    "city >= 'Boston'",
    "city BETWEEN 'Austin' AND 'Boston'",
    "city = 'Zagreb'",
    "city != 'Zagreb'",
    "NOT a < 10",
    "a < 50 AND b = 3",
    "a < 10 OR a >= 110",
    "(city = 'Austin' OR city = 'Chicago') AND a BETWEEN 10 AND 90",
    "NOT (a < 50 AND b = 3)",
    "a < 0",
    "a >= 0",
]


class TestSelectionEquivalence:
    @pytest.mark.parametrize("fragment", PREDICATES)
    @pytest.mark.parametrize("block_rows", [7, 16, 1000])
    def test_selection_matches_mask(self, table, fragment, block_rows):
        kernel = kernel_for(table, fragment, block_rows)
        selection = kernel.select_range(table, 0, ROWS)
        expected = np.flatnonzero(evaluate_predicate(where(fragment), table))
        assert selection.tolist() == expected.tolist()

    @pytest.mark.parametrize("fragment", PREDICATES)
    def test_partition_views_select_local_indices(self, table, fragment):
        kernel = kernel_for(table, fragment, 16)
        full = np.flatnonzero(evaluate_predicate(where(fragment), table))
        for start, end in [(0, 40), (40, 80), (25, 103), (119, 120)]:
            view = table.slice_rows(start, end)
            local = kernel.select_range(view, start, end)
            expected = full[(full >= start) & (full < end)] - start
            assert local.tolist() == expected.tolist()

    def test_selection_is_sorted_unique(self, table):
        kernel = kernel_for(table, "a < 60 OR b = 3 OR city = 'Austin'", 16)
        selection = kernel.select_range(table, 0, ROWS)
        assert np.all(np.diff(selection) > 0)

    def test_nan_rows_never_match(self):
        t = Table.from_dict("t", {"x": [1.0, float("nan"), 3.0, float("nan"), 5.0]})
        plan = LogicalPlan.of("SELECT COUNT(*) FROM t WHERE x > 0")
        kernel = compile_predicate(plan.where, t, t.zone_map_index(2))
        expected = np.flatnonzero(evaluate_predicate(plan.where, t))
        assert kernel.select_range(t, 0, 5).tolist() == expected.tolist()


class TestZoneClassification:
    def classify(self, table, fragment, block_rows=16):
        kernel = kernel_for(table, fragment, block_rows)
        index = table.zone_map_index(block_rows)
        return [kernel.classify_block(b.zones) for b in index.blocks]

    def test_sorted_column_skips_and_takes_whole_blocks(self, table):
        decisions = self.classify(table, "a < 32")
        # Blocks [0,16) and [16,32) are fully below 32; the rest fully above.
        assert decisions[0] is ZoneDecision.TAKE_ALL
        assert decisions[1] is ZoneDecision.TAKE_ALL
        assert all(d is ZoneDecision.SKIP for d in decisions[2:])

    def test_absent_string_skips_everything(self, table):
        assert all(
            d is ZoneDecision.SKIP for d in self.classify(table, "city = 'Zagreb'")
        )

    def test_absent_string_negation_takes_everything(self, table):
        assert all(
            d is ZoneDecision.TAKE_ALL for d in self.classify(table, "city != 'Zagreb'")
        )

    def test_unclustered_column_evaluates(self, table):
        # b cycles 0..6 in every block: no block is decidable.
        assert all(d is ZoneDecision.EVALUATE for d in self.classify(table, "b = 3"))

    def test_dense_integer_in_takes_all(self, table):
        # Block zones of b are [0, 6]; IN covering 0..6 proves take-all.
        decisions = self.classify(table, "b IN (0, 1, 2, 3, 4, 5, 6)")
        assert all(d is ZoneDecision.TAKE_ALL for d in decisions)

    def test_and_or_combinations(self, table):
        decisions = self.classify(table, "a < 32 AND b = 3")
        assert decisions[0] is ZoneDecision.EVALUATE  # take-all AND evaluate
        assert all(d is ZoneDecision.SKIP for d in decisions[2:])  # skip AND *
        decisions = self.classify(table, "a < 32 OR b = 3")
        assert decisions[0] is ZoneDecision.TAKE_ALL  # take-all OR *
        assert all(d is ZoneDecision.EVALUATE for d in decisions[2:])

    def test_nan_zones_fall_to_evaluate(self):
        t = Table.from_dict("t", {"x": [float("nan")] * 4})
        plan = LogicalPlan.of("SELECT COUNT(*) FROM t WHERE x > 0")
        kernel = compile_predicate(plan.where, t, t.zone_map_index(2))
        index = t.zone_map_index(2)
        assert all(
            kernel.classify_block(b.zones) is ZoneDecision.EVALUATE
            for b in index.blocks
        )

    def test_soundness_over_all_blocks(self, table):
        for fragment in PREDICATES:
            kernel = kernel_for(table, fragment, 16)
            mask = evaluate_predicate(where(fragment), table)
            for block in table.zone_map_index(16).blocks:
                decision = kernel.classify_block(block.zones)
                window = mask[block.row_start:block.row_end]
                if decision is ZoneDecision.SKIP:
                    assert not window.any(), fragment
                elif decision is ZoneDecision.TAKE_ALL:
                    assert window.all(), fragment


class TestTriageAndCounters:
    def test_triage_range_counts_skipped_rows(self, table):
        kernel = kernel_for(table, "a < 32", 16)
        verdict = kernel.triage_range(0, ROWS)
        assert verdict.rows == ROWS
        assert verdict.rows_skipped == ROWS - 32
        assert not verdict.all_skipped
        assert kernel.triage_range(64, 96).all_skipped

    def test_counters_account_every_block(self, table):
        kernel = kernel_for(table, "a < 32", 16)
        counters = ScanCounters()
        kernel.select_range(table, 0, ROWS, counters=counters, row_width=8)
        assert counters.blocks_total == ROWS // 16 + (1 if ROWS % 16 else 0)
        assert counters.blocks_take_all == 2
        assert counters.blocks_skipped == counters.blocks_total - 2
        assert counters.rows_skipped == ROWS - 32
        assert counters.bytes_scanned == 32 * 8
        assert counters.bytes_total == ROWS * 8
        assert counters.skip_fraction == pytest.approx((ROWS - 32) / ROWS)

    def test_scan_classification_never_reads_rows(self, table):
        kernel = kernel_for(table, "a < 32", 16)
        counters = kernel.scan_classification(row_width=4)
        assert counters.rows_total == ROWS
        assert counters.rows_skipped == ROWS - 32

    def test_estimated_selectivity_in_unit_interval(self, table):
        for fragment in PREDICATES:
            estimate = kernel_for(table, fragment).estimated_selectivity
            assert 0.0 <= estimate <= 1.0

    def test_and_orders_most_selective_first(self, table):
        kernel = kernel_for(table, "a >= 0 AND b = 3", 16)
        children = kernel.root.children
        assert children[0].est <= children[1].est
        assert children[0].column == "b"  # EQ on b is the selective conjunct


class TestUnsortedDictionaries:
    """Regression: `Column.from_codes` dictionaries are in arbitrary label
    order (tpch shipmode, conviva os/browser), so string range predicates
    must not assume code order equals lexicographic order."""

    @pytest.fixture()
    def coded_table(self) -> Table:
        from repro.storage.column import Column

        labels = np.array(["TRUCK", "AIR", "SHIP", "RAIL", "MAIL"], dtype=object)
        rng = np.random.default_rng(5)
        codes = rng.integers(0, len(labels), 200)
        return Table("t", [Column.from_codes("mode", codes, labels)])

    @pytest.mark.parametrize(
        "fragment",
        [
            "mode < 'RAIL'",
            "mode <= 'RAIL'",
            "mode > 'MAIL'",
            "mode >= 'SHIP'",
            "mode BETWEEN 'AIR' AND 'RAIL'",
            "mode = 'SHIP'",
            "mode != 'AIR'",
            "mode IN ('AIR', 'TRUCK')",
        ],
    )
    @pytest.mark.parametrize("block_rows", [16, 1000])
    def test_selection_matches_mask(self, coded_table, fragment, block_rows):
        plan = LogicalPlan.of(f"SELECT COUNT(*) FROM t WHERE {fragment}")
        kernel = compile_predicate(
            plan.where, coded_table, coded_table.zone_map_index(block_rows)
        )
        expected = np.flatnonzero(evaluate_predicate(plan.where, coded_table))
        selection = kernel.select_range(coded_table, 0, coded_table.num_rows)
        assert selection.tolist() == expected.tolist()

    def test_classification_is_sound(self, coded_table):
        plan = LogicalPlan.of("SELECT COUNT(*) FROM t WHERE mode < 'RAIL'")
        index = coded_table.zone_map_index(16)
        kernel = compile_predicate(plan.where, coded_table, index)
        mask = evaluate_predicate(plan.where, coded_table)
        for block in index.blocks:
            decision = kernel.classify_block(block.zones)
            window = mask[block.row_start:block.row_end]
            if decision is ZoneDecision.SKIP:
                assert not window.any()
            elif decision is ZoneDecision.TAKE_ALL:
                assert window.all()

    def test_sorted_coded_column_still_skips(self):
        from repro.storage.column import Column

        labels = np.array(["TRUCK", "AIR", "SHIP"], dtype=object)
        codes = np.repeat([0, 1, 2], 32)  # clustered by code
        t = Table("t", [Column.from_codes("mode", codes, labels)])
        plan = LogicalPlan.of("SELECT COUNT(*) FROM t WHERE mode >= 'SHIP'")
        index = t.zone_map_index(32)
        kernel = compile_predicate(plan.where, t, index)
        decisions = [kernel.classify_block(b.zones) for b in index.blocks]
        # Code 0 = TRUCK (matches), 1 = AIR (no), 2 = SHIP (matches).
        assert decisions == [
            ZoneDecision.TAKE_ALL,
            ZoneDecision.SKIP,
            ZoneDecision.TAKE_ALL,
        ]


class TestNaNSoundness:
    def test_float_in_with_nan_poisoned_zones_does_not_skip(self):
        # Regression: NaN zone bounds made every candidate comparison False,
        # which the IN classifier misread as a provable SKIP.
        t = Table.from_dict("t", {"x": [1.0, float("nan"), 1.0, 2.0] * 4})
        plan = LogicalPlan.of("SELECT COUNT(*) FROM t WHERE x IN (1.0, 7.0)")
        kernel = compile_predicate(plan.where, t, t.zone_map_index(4))
        for block in t.zone_map_index(4).blocks:
            assert kernel.classify_block(block.zones) is ZoneDecision.EVALUATE
        expected = np.flatnonzero(evaluate_predicate(plan.where, t))
        assert kernel.select_range(t, 0, t.num_rows).tolist() == expected.tolist()


class TestKernelCacheLifetime:
    def test_kernel_holds_no_reference_to_its_table(self):
        # The executor caches kernels in a weak-keyed map; a kernel that
        # referenced its table would pin the key alive forever.
        import gc
        import weakref

        from repro.engine.executor import QueryExecutor

        executor = QueryExecutor(scan_acceleration=True, zone_block_rows=8)
        plan = LogicalPlan.of("SELECT COUNT(*) FROM t WHERE a < 3")
        table = Table.from_dict("t", {"a": list(range(32))})
        ref = weakref.ref(table)
        executor.predicate_kernel(plan.where, table)
        del table
        gc.collect()
        assert ref() is None

    def test_per_table_kernel_cache_is_bounded(self, table):
        from repro.engine.executor import _KERNEL_CACHE_ENTRIES, QueryExecutor

        executor = QueryExecutor(scan_acceleration=True, zone_block_rows=16)
        for v in range(_KERNEL_CACHE_ENTRIES + 20):
            plan = LogicalPlan.of(f"SELECT COUNT(*) FROM t WHERE a < {v}")
            executor.predicate_kernel(plan.where, table)
        per_table = executor._kernels[table]
        assert len(per_table) == _KERNEL_CACHE_ENTRIES


class TestPartitionTriage:
    def test_zone_annotated_blocks_drive_whole_partition_skips(self, table):
        from repro.engine.executor import QueryExecutor

        executor = QueryExecutor(scan_acceleration=True, zone_block_rows=16)
        plan = LogicalPlan.of("SELECT COUNT(*) FROM t WHERE a < 30")
        blocks = table.block_set(num_partitions=4, zone_maps=True)
        partitions = table.partitions(block_set=blocks)
        triage = executor.partition_triage(plan, partitions)
        assert triage is not None
        # Rows [0,30) match: partition 0 is partially matching, the last
        # partitions are provably match-free and fully skipped.
        assert not triage[0].all_skipped
        assert triage[-1].all_skipped
        # Bare blocks fall back to the table's zone index, whose fixed-size
        # blocks straddle partition boundaries — so the annotated verdict is
        # at least as sharp: everything the index proves skippable, the
        # partition-aligned zones prove too.
        bare = executor.partition_triage(plan, table.partitions(num_partitions=4))
        for bare_verdict, annotated_verdict in zip(bare, triage):
            if bare_verdict.all_skipped:
                assert annotated_verdict.all_skipped


class TestKernelWithoutZoneIndex:
    def test_no_index_still_selects_correctly(self, table):
        plan = LogicalPlan.of("SELECT COUNT(*) FROM t WHERE a < 32 AND b = 3")
        kernel = compile_predicate(plan.where, table, zone_index=None)
        expected = np.flatnonzero(evaluate_predicate(plan.where, table))
        assert kernel.select_range(table, 0, ROWS).tolist() == expected.tolist()

    def test_empty_table(self):
        t = Table.from_dict("t", {"a": []})
        plan = LogicalPlan.of("SELECT COUNT(*) FROM t WHERE a < 3")
        kernel = compile_predicate(plan.where, t, zone_index=None)
        assert kernel.select_range(t, 0, 0).size == 0
