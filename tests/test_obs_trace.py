"""Span tracer unit tests plus hypothesis properties of span trees.

The tracer's contract is structural: every sampled query produces exactly
one root span, every child's interval nests inside its parent's, and spans
opened by partition worker threads join the same tree as the dispatching
thread (explicit parenting — thread-local context would misparent spans
when pool threads interleave queries).  The property tests drive randomized
tree shapes and fan-outs through a ManualClock so the invariants are exact,
not wall-clock-flaky.
"""

from __future__ import annotations

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.clock import ManualClock
from repro.obs.trace import NULL_SPAN, NULL_TRACE, QueryTrace, SpanTracer


def make_trace(clock=None) -> QueryTrace:
    return QueryTrace(clock=clock or ManualClock())


class TestSpanBasics:
    def test_trace_has_single_root_named_query(self):
        trace = make_trace()
        assert trace.root.name == "query"
        assert [s for s in trace.spans() if s is trace.root] == [trace.root]

    def test_span_context_manager_records_interval(self):
        clock = ManualClock()
        trace = make_trace(clock)
        with trace.span("plan") as span:
            clock.advance(0.5)
        assert span.finished
        assert span.duration_s == 0.5
        assert span in trace.root.children

    def test_nested_spans_attach_to_explicit_parent(self):
        trace = make_trace()
        with trace.span("dispatch") as dispatch:
            with dispatch.span("estimate") as estimate:
                pass
        assert estimate in dispatch.children
        assert estimate not in trace.root.children

    def test_record_span_backdates_an_interval(self):
        clock = ManualClock()
        clock.advance(10.0)
        trace = make_trace(clock)
        span = trace.root.record_span("admission-wait", 4.0, 9.0, admission="admitted")
        assert span.start_s == 4.0 and span.end_s == 9.0
        assert span.attrs["admission"] == "admitted"

    def test_record_span_clamps_inverted_interval(self):
        trace = make_trace()
        span = trace.root.record_span("weird", 5.0, 3.0)
        assert span.end_s == span.start_s

    def test_finish_closes_leftover_spans_bottom_up(self):
        clock = ManualClock()
        trace = make_trace(clock)
        outer = trace.span("dispatch")
        inner = outer.span("partition")
        clock.advance(1.0)
        trace.finish()
        assert inner.finished and outer.finished and trace.root.finished
        assert inner.end_s <= outer.end_s <= trace.root.end_s

    def test_annotate_merges_attrs(self):
        trace = make_trace()
        trace.annotate(table="sessions")
        with trace.span("plan") as span:
            span.annotate(family="stratified")
        assert trace.root.attrs["table"] == "sessions"
        assert span.attrs["family"] == "stratified"

    def test_to_dict_and_render_round_trip_names(self):
        trace = make_trace()
        with trace.span("plan"):
            pass
        trace.finish()
        tree = trace.to_dict()
        assert tree["name"] == "query"
        assert [c["name"] for c in tree["children"]] == ["plan"]
        assert "plan" in trace.render()

    def test_find_walks_depth_first(self):
        trace = make_trace()
        with trace.span("dispatch") as dispatch:
            with dispatch.span("estimate"):
                pass
        assert trace.find("estimate") is not None
        assert trace.find("missing") is None
        assert len(trace.find_all("estimate")) == 1


class TestNullObjects:
    def test_null_trace_is_inert_and_reusable(self):
        assert not NULL_TRACE.sampled
        with NULL_TRACE.span("plan") as span:
            assert span is NULL_SPAN
        NULL_TRACE.finish()
        assert NULL_TRACE.find("plan") is None
        assert NULL_TRACE.render() == "<trace not sampled>"

    def test_null_span_children_are_null(self):
        with NULL_SPAN.span("inner") as inner:
            assert inner is NULL_SPAN
        NULL_SPAN.annotate(anything="goes")
        assert NULL_SPAN.record_span("x", 0.0, 1.0) is NULL_SPAN


class TestSpanTracer:
    def test_disabled_tracer_returns_null_trace(self):
        tracer = SpanTracer(enabled=False, sample_rate=1.0, clock=ManualClock())
        assert tracer.begin() is NULL_TRACE

    def test_force_overrides_sampling(self):
        tracer = SpanTracer(enabled=True, sample_rate=0.0, clock=ManualClock())
        assert tracer.begin() is NULL_TRACE
        assert tracer.begin(force=True).sampled

    def test_credit_accumulator_is_deterministic(self):
        tracer = SpanTracer(enabled=True, sample_rate=0.25, clock=ManualClock())
        sampled = [tracer.begin().sampled for _ in range(100)]
        # Exactly one in four, evenly spaced — not a coin flip.
        assert sum(sampled) == 25
        assert sampled[:8] == [False, False, False, True] * 2

    def test_stats_count_started_and_sampled(self):
        tracer = SpanTracer(enabled=True, sample_rate=0.5, clock=ManualClock())
        for _ in range(10):
            tracer.begin()
        stats = tracer.stats
        assert stats["traces_started"] == 10
        assert stats["traces_sampled"] == 5


# -- property tests -----------------------------------------------------------------

tree_shapes = st.recursive(
    st.just([]),
    lambda children: st.lists(children, min_size=1, max_size=3),
    max_leaves=12,
)


def build_tree(trace_or_span, shape, clock):
    for child_shape in shape:
        with trace_or_span.span("node") as child:
            clock.advance(0.125)
            build_tree(child, child_shape, clock)
        clock.advance(0.125)


@settings(max_examples=60, deadline=None)
@given(shape=tree_shapes)
def test_property_single_root_and_span_count(shape):
    clock = ManualClock()
    trace = make_trace(clock)
    build_tree(trace, shape, clock)
    trace.finish()
    spans = trace.spans()
    roots = [s for s in spans if s.name == "query"]
    assert roots == [trace.root]

    def count(sub):
        return 1 + sum(count(child) for child in sub)

    assert len(spans) == count(shape)  # root + one per shape node


@settings(max_examples=60, deadline=None)
@given(shape=tree_shapes)
def test_property_children_nest_within_parent_intervals(shape):
    clock = ManualClock()
    trace = make_trace(clock)
    build_tree(trace, shape, clock)
    trace.finish()
    for parent in trace.spans():
        assert parent.finished
        for child in parent.children:
            assert parent.start_s <= child.start_s
            assert child.end_s <= parent.end_s


@settings(max_examples=20, deadline=None)
@given(fanout=st.integers(min_value=1, max_value=8))
def test_property_fanout_spans_join_across_threads(fanout):
    trace = QueryTrace()  # real clock: threads advance it concurrently
    with trace.span("partition-dispatch") as dispatch:
        barrier = threading.Barrier(fanout)

        def worker(index: int) -> None:
            barrier.wait()
            with dispatch.span("partition", index=index):
                pass

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(fanout)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    trace.finish()
    partitions = trace.find_all("partition")
    assert len(partitions) == fanout
    assert {span.attrs["index"] for span in partitions} == set(range(fanout))
    # All joined under the dispatching span, none misparented to the root.
    assert all(span in dispatch.children for span in partitions)
    assert {span.thread for span in partitions} != {dispatch.thread} or fanout == 0


@settings(max_examples=30, deadline=None)
@given(
    rate=st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
    n=st.integers(min_value=1, max_value=200),
)
def test_property_sampling_credit_accumulator_hits_ceil(rate, n):
    import math

    tracer = SpanTracer(enabled=True, sample_rate=rate, clock=ManualClock())
    sampled = sum(tracer.begin().sampled for _ in range(n))
    assert sampled == math.ceil(round(rate * n, 9)) or sampled == math.floor(rate * n)
