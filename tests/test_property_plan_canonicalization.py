"""Property tests: semantically equivalent query texts plan identically.

Rewrites that must not change a query's meaning — predicate reordering and
re-association, whitespace and keyword-case changes, GROUP BY column order,
contextual keywords used as identifiers — must yield the *same* logical-plan
fingerprint (so they share one cache entry and one probe) and the *same*
answer through both the serial executor and the partitioned merge path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.executor import ExecutionContext, QueryExecutor
from repro.planner import LogicalPlan
from repro.runtime.partitioned import PartitionPipeline
from repro.sql.parser import parse_query
from repro.storage.table import Table

ROWS = 600


@pytest.fixture(scope="module")
def table():
    rng = np.random.default_rng(23)
    return Table.from_dict(
        "t",
        {
            "a": rng.integers(0, 5, ROWS).tolist(),
            "b": rng.integers(0, 10, ROWS).tolist(),
            # A contextual keyword as a column name: the lexer tokenizes it
            # as a keyword, the parser accepts it wherever the grammar
            # requires an identifier.
            "confidence": rng.integers(0, 3, ROWS).tolist(),
            "g": [f"g{i}" for i in rng.integers(0, 4, ROWS)],
            "x": rng.normal(50.0, 9.0, ROWS).tolist(),
        },
    )


# -- random equivalent query pairs ---------------------------------------------------

_ATOMS = [
    "a = {}".format,
    "a != {}".format,
    "b < {}".format,
    "b >= {}".format,
    "confidence = {}".format,
    "a IN (1, {})".format,
    "b BETWEEN 2 AND {}".format,
]

atom_strategy = st.tuples(
    st.sampled_from(range(len(_ATOMS))), st.integers(min_value=0, max_value=9)
)


def _render_atom(atom: tuple[int, int]) -> str:
    index, value = atom
    return _ATOMS[index](value)


@st.composite
def equivalent_query_pair(draw) -> tuple[str, str]:
    """Two textual renderings of one query, differing only by rewrites."""
    atoms = draw(st.lists(atom_strategy, min_size=1, max_size=3, unique=True))
    connector = draw(st.sampled_from([" AND ", " OR "]))
    group_columns = draw(
        st.sampled_from([(), ("g",), ("g", "a"), ("g", "confidence")])
    )
    aggregate = draw(st.sampled_from(["COUNT(*)", "AVG(x)", "SUM(x)", "COUNT(*), SUM(x)"]))

    def render(atom_order: list[int], group_order: list[int], lower: bool, pad: bool) -> str:
        predicate = connector.join(_render_atom(atoms[i]) for i in atom_order)
        sql = f"SELECT {aggregate} FROM t WHERE {predicate}"
        if group_columns:
            sql += " GROUP BY " + ", ".join(group_columns[i] for i in group_order)
        if lower:
            sql = sql.lower()
        if pad:
            sql = sql.replace(" ", "  ")
        return sql

    order_a = list(range(len(atoms)))
    order_b = draw(st.permutations(order_a))
    group_a = list(range(len(group_columns)))
    group_b = draw(st.permutations(group_a))
    first = render(order_a, group_a, lower=False, pad=False)
    second = render(
        list(order_b), list(group_b), lower=draw(st.booleans()), pad=draw(st.booleans())
    )
    return first, second


def _values(result):
    return {
        group.key: {
            name: (agg.value, agg.error_bar) for name, agg in group.aggregates.items()
        }
        for group in result
    }


def _assert_same_values(a, b, rel=0.0):
    assert a.keys() == b.keys()
    for key, aggregates in a.items():
        for name, (value, error_bar) in aggregates.items():
            other_value, other_error = b[key][name]
            assert other_value == pytest.approx(value, rel=rel, abs=rel, nan_ok=True)
            assert other_error == pytest.approx(
                error_bar, rel=max(rel, 1e-6), abs=max(rel, 1e-9), nan_ok=True
            )


@settings(max_examples=60, deadline=None)
@given(pair=equivalent_query_pair())
def test_equivalent_texts_share_fingerprint(pair):
    first, second = pair
    assert LogicalPlan.of(first).fingerprint() == LogicalPlan.of(second).fingerprint()


@settings(max_examples=40, deadline=None)
@given(pair=equivalent_query_pair())
def test_equivalent_texts_execute_identically_serial(pair, table):
    first, second = pair
    executor = QueryExecutor()
    result_a = executor.execute(parse_query(first), table)
    result_b = executor.execute(parse_query(second), table)
    # Canonical plans are identical, so execution is bit-for-bit identical.
    assert result_a.group_by == result_b.group_by
    _assert_same_values(_values(result_a), _values(result_b))


@settings(max_examples=25, deadline=None)
@given(pair=equivalent_query_pair())
def test_equivalent_texts_execute_identically_partitioned(pair, table):
    # A weighted (sampled) context, so error bars are non-trivial and must
    # match between the serial and the partitioned merge path too.
    first, second = pair
    executor = QueryExecutor()
    pipeline = PartitionPipeline(executor)
    weights = np.random.default_rng(5).uniform(1.0, 8.0, table.num_rows)
    context = ExecutionContext(weights=weights, rows_read=table.num_rows)
    serial = executor.execute(parse_query(first), table, context)
    piped = pipeline.run(
        parse_query(second),
        table,
        context,
        num_partitions=4,
        sim_workers=2,
        scan_latency_seconds=1.0,
    )
    assert piped.metadata["partitions"].complete
    assert serial.group_by == piped.group_by
    _assert_same_values(_values(serial), _values(piped), rel=1e-9)
