"""Tests for the Table-2 closed forms and confidence-interval helpers."""

import math

import numpy as np
import pytest

from repro.estimation.closed_form import (
    avg_variance,
    count_variance,
    quantile_variance,
    stddev_variance,
    sum_variance,
    variance_of_sample_variance,
)
from repro.estimation.confidence import (
    confidence_interval,
    error_at_sample_size,
    relative_error,
    required_sample_size_for_error,
    z_score,
)


class TestClosedForms:
    def test_avg_variance_is_s2_over_n(self):
        assert avg_variance(4.0, 100) == pytest.approx(0.04)

    def test_avg_variance_infinite_for_empty_sample(self):
        assert math.isinf(avg_variance(4.0, 0))

    def test_count_variance_formula(self):
        # (N^2 / n) * c(1-c)
        assert count_variance(1000, 100, 0.5) == pytest.approx(1000**2 / 100 * 0.25)

    def test_count_variance_zero_at_extreme_selectivity(self):
        assert count_variance(1000, 100, 0.0) == 0.0
        assert count_variance(1000, 100, 1.0) == 0.0

    def test_sum_variance_reduces_to_table2_for_small_mean(self):
        table2 = 1000**2 * (4.0 / 100) * 0.5
        assert sum_variance(1000, 100, 4.0, 0.5, mean_value=0.0) == pytest.approx(table2 * 0.5 / 0.5 * 0.5, rel=1.0)
        # The exact Table-2 expression is recovered when the mean term vanishes.
        assert sum_variance(1000, 100, 4.0, 0.5, mean_value=0.0) == pytest.approx(
            (1000**2 / 100) * 0.5 * 4.0
        )

    def test_sum_variance_grows_with_mean(self):
        low = sum_variance(1000, 100, 4.0, 0.5, mean_value=0.0)
        high = sum_variance(1000, 100, 4.0, 0.5, mean_value=10.0)
        assert high > low

    def test_quantile_variance_formula(self):
        assert quantile_variance(100, 0.5, 2.0) == pytest.approx(0.25 / (100 * 4.0))

    def test_quantile_variance_invalid_p(self):
        with pytest.raises(ValueError):
            quantile_variance(100, 1.5, 1.0)

    def test_all_variances_shrink_as_one_over_n(self):
        for formula in (
            lambda n: avg_variance(4.0, n),
            lambda n: count_variance(1000, n, 0.3),
            lambda n: sum_variance(1000, n, 4.0, 0.3, 2.0),
            lambda n: quantile_variance(n, 0.5, 1.0),
        ):
            assert formula(400) == pytest.approx(formula(100) / 4)

    def test_extension_formulas(self):
        assert stddev_variance(4.0, 101) == pytest.approx(4.0 / 200)
        assert variance_of_sample_variance(4.0, 101) == pytest.approx(2 * 16 / 100)
        assert math.isinf(stddev_variance(4.0, 1))


class TestConfidence:
    def test_z_score_standard_values(self):
        assert z_score(0.95) == pytest.approx(1.96, abs=0.01)
        assert z_score(0.99) == pytest.approx(2.576, abs=0.01)

    def test_z_score_invalid(self):
        with pytest.raises(ValueError):
            z_score(1.0)

    def test_confidence_interval_width(self):
        ci = confidence_interval(100.0, 25.0, 0.95)
        assert ci.half_width == pytest.approx(1.96 * 5, abs=0.05)
        assert ci.low < 100 < ci.high
        assert ci.contains(100)
        assert ci.relative_half_width == pytest.approx(ci.half_width / 100)

    def test_zero_estimate_relative_error(self):
        ci = confidence_interval(0.0, 1.0)
        assert math.isinf(ci.relative_half_width)

    def test_relative_error_helper(self):
        assert relative_error(100.0, 25.0, 0.95) == pytest.approx(1.96 * 5 / 100, abs=1e-3)

    def test_required_sample_size_quarters_error_needs_16x(self):
        n = required_sample_size_for_error(
            current_n=100, current_variance=25.0, estimate=100.0,
            target_error=relative_error(100.0, 25.0) / 4,
        )
        assert n == pytest.approx(1600, rel=0.02)

    def test_required_sample_size_already_met(self):
        n = required_sample_size_for_error(100, 0.0001, 100.0, 0.5)
        assert n == 100

    def test_required_sample_size_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            required_sample_size_for_error(0, 1.0, 10.0, 0.1)
        with pytest.raises(ValueError):
            required_sample_size_for_error(10, 1.0, 10.0, -0.1)
        with pytest.raises(ValueError):
            required_sample_size_for_error(10, math.inf, 10.0, 0.1)

    def test_error_at_sample_size_sqrt_scaling(self):
        error_100 = error_at_sample_size(100, 25.0, 100.0, 100)
        error_400 = error_at_sample_size(100, 25.0, 100.0, 400)
        assert error_400 == pytest.approx(error_100 / 2)


class TestFormulaAgainstMonteCarlo:
    """The closed forms should match the empirical spread of repeated sampling."""

    def test_avg_variance_matches_simulation(self):
        rng = np.random.default_rng(0)
        population = rng.exponential(10.0, size=50_000)
        n = 500
        means = [rng.choice(population, n, replace=False).mean() for _ in range(300)]
        predicted = avg_variance(population.var(ddof=1), n)
        assert np.var(means) == pytest.approx(predicted, rel=0.35)

    def test_count_variance_matches_simulation(self):
        rng = np.random.default_rng(1)
        population = rng.random(20_000) < 0.2  # 20% selectivity
        n, N = 1000, population.size
        counts = [
            (N / n) * rng.choice(population, n, replace=False).sum() for _ in range(300)
        ]
        predicted = count_variance(N, n, 0.2)
        assert np.var(counts) == pytest.approx(predicted, rel=0.35)
