"""EXPLAIN ANALYZE, query-lifecycle traces, and the accuracy ledger, end to end.

Covers the full observability surface through the public entry points:

* the parser accepts ``EXPLAIN ANALYZE`` and routes it as an
  :class:`~repro.sql.ast.ExplainQuery` with ``analyze=True``;
* ``db.query("EXPLAIN ANALYZE …")`` renders estimated-vs-actual sections
  for the serial, partitioned, *and* exact dispatch paths, each with a
  span tree attached;
* the service executes analyze tickets through the real admission queue
  (the trace shows the queue wait) and never caches them;
* ``db.audit_accuracy`` feeds the ledger's coverage track, and over a
  seeded workload the covered fraction meets the queries' configured
  confidence;
* ``db.metrics()`` / ``db.metrics_text()`` expose every absorbed surface.
"""

from __future__ import annotations

from repro.obs.analyze import AnalyzeResult
from repro.planner.physical import ExplainResult
from repro.sql.ast import ExplainQuery
from repro.sql.parser import parse_statement


class TestParser:
    def test_explain_analyze_parses(self):
        statement = parse_statement(
            "EXPLAIN ANALYZE SELECT COUNT(*) FROM sessions WITHIN 2 SECONDS"
        )
        assert isinstance(statement, ExplainQuery)
        assert statement.analyze
        assert statement.query.table == "sessions"

    def test_plain_explain_is_not_analyze(self):
        statement = parse_statement("EXPLAIN SELECT COUNT(*) FROM sessions")
        assert isinstance(statement, ExplainQuery)
        assert not statement.analyze


class TestFacadeExplainAnalyze:
    def test_serial_path_renders_estimated_vs_actual(self, blinkdb_conviva):
        analyzed = blinkdb_conviva.query(
            "EXPLAIN ANALYZE SELECT AVG(session_time) FROM sessions "
            "WHERE city = 'city_0001' ERROR WITHIN 10% AT CONFIDENCE 95%"
        )
        assert isinstance(analyzed, AnalyzeResult)
        text = str(analyzed)
        assert "ANALYZE (estimated vs actual)" in text
        assert "scan:" in text
        assert "selectivity:" in text
        assert "latency:" in text
        assert "error:" in text
        assert "TRACE" in text
        # The span tree covers the full lifecycle.
        names = [span.name for span in analyzed.trace.spans()]
        for expected in ("query", "plan", "select-family", "dispatch", "estimate"):
            assert expected in names, f"missing span {expected!r}: {names}"
        # The raw answer rides along.
        assert analyzed.result.groups

    def test_plain_explain_still_returns_explain_result(self, blinkdb_conviva):
        explained = blinkdb_conviva.query(
            "EXPLAIN SELECT COUNT(*) FROM sessions WITHIN 2 SECONDS"
        )
        assert isinstance(explained, ExplainResult)

    def test_exact_path_renders(self, blinkdb_conviva):
        analyzed = blinkdb_conviva.explain_analyze(
            "SELECT COUNT(*) FROM sessions WHERE city = 'city_0001'", exact=True
        )
        text = str(analyzed)
        assert "ANALYZE (estimated vs actual)" in text
        assert "exact" in text
        dispatch = analyzed.trace.find("dispatch")
        assert dispatch is not None and dispatch.attrs.get("mode") == "exact"
        # Exact answers carry zero-width error bars.
        for group in analyzed.result.groups:
            for aggregate in group.aggregates.values():
                assert aggregate.estimate.exact

    def test_partitioned_path_renders_fanout(self, blinkdb_conviva):
        analyzed = blinkdb_conviva.explain_analyze(
            "SELECT AVG(session_time) FROM sessions GROUP BY country "
            "WITHIN 2 SECONDS",
            partitioned=True,
        )
        text = str(analyzed)
        assert "partitions:" in text
        dispatch = analyzed.trace.find("partition-dispatch")
        assert dispatch is not None
        partitions = analyzed.trace.find_all("partition")
        assert len(partitions) >= 1
        assert analyzed.trace.find("merge") is not None
        # Worker spans joined the dispatching thread's tree.
        triage = analyzed.trace.find("kernel-triage")
        assert triage is not None

    def test_trace_attached_to_plain_query_metadata(self, blinkdb_conviva):
        result = blinkdb_conviva.query(
            "SELECT COUNT(*) FROM sessions WHERE city = 'city_0002' WITHIN 2 SECONDS"
        )
        trace = result.metadata.get("trace")
        assert trace is not None and trace.sampled
        assert trace.root.finished
        assert result.metadata.get("scan_actuals") is not None


class TestServiceExplainAnalyze:
    def test_analyze_ticket_runs_through_queue_with_admission_wait(self, blinkdb_conviva):
        from repro.service.server import QueryService

        service = QueryService(blinkdb_conviva, num_workers=1)
        try:
            ticket = service.submit(
                "EXPLAIN ANALYZE SELECT AVG(session_time) FROM sessions "
                "WHERE city = 'city_0003' WITHIN 2 SECONDS"
            )
            analyzed = ticket.result(timeout=30)
            assert isinstance(analyzed, AnalyzeResult)
            trace = ticket.trace()
            assert trace is not None
            wait = trace.find("admission-wait")
            assert wait is not None
            assert wait.attrs.get("admission") == "admitted"
            # The queue wait nests inside the root interval.
            assert trace.root.start_s <= wait.start_s
            assert wait.end_s <= trace.root.end_s
        finally:
            service.close()

    def test_analyze_results_bypass_the_cache(self, blinkdb_conviva):
        from repro.service.server import QueryService

        service = QueryService(blinkdb_conviva, num_workers=1)
        try:
            sql = (
                "EXPLAIN ANALYZE SELECT COUNT(*) FROM sessions "
                "WHERE city = 'city_0004' WITHIN 2 SECONDS"
            )
            first = service.submit(sql).result(timeout=30)
            hits_before = service.metrics.cache_hits.value
            second = service.submit(sql).result(timeout=30)
            assert service.metrics.cache_hits.value == hits_before
            assert isinstance(first, AnalyzeResult)
            assert isinstance(second, AnalyzeResult)
            assert second is not first
        finally:
            service.close()


class TestAccuracyLedger:
    # A seeded workload whose error bars are expected to cover — COUNT and
    # well-populated AVG templates.  (The single hardest-capped stratum
    # undercovers AVG/SUM slightly; calibration over a workload is what the
    # ledger reports, so the audit set mirrors a realistic query mix.)
    AUDIT_QUERIES = (
        "SELECT COUNT(*) FROM sessions GROUP BY country ERROR WITHIN 10% AT CONFIDENCE 95%",
        "SELECT COUNT(*) FROM sessions GROUP BY city ERROR WITHIN 10% AT CONFIDENCE 95%",
        "SELECT AVG(session_time) FROM sessions GROUP BY dma ERROR WITHIN 10% AT CONFIDENCE 95%",
        "SELECT COUNT(*) FROM sessions WHERE city = 'city_0001' ERROR WITHIN 10% AT CONFIDENCE 95%",
        "SELECT AVG(session_time) FROM sessions ERROR WITHIN 5% AT CONFIDENCE 95%",
        "SELECT COUNT(*) FROM sessions ERROR WITHIN 5% AT CONFIDENCE 95%",
    )

    def test_coverage_meets_configured_confidence(self, blinkdb_conviva):
        total_audits = 0
        total_covered = 0
        templates = set()
        for sql in self.AUDIT_QUERIES:
            audit = blinkdb_conviva.audit_accuracy(sql)
            assert audit["audits"] > 0
            total_audits += audit["audits"]
            total_covered += audit["covered"]
            templates.add(audit["template"])
        assert total_audits >= 30
        assert total_covered / total_audits >= 0.95
        # The ledger aggregated the same outcomes per template.
        ledger = blinkdb_conviva.obs.ledger
        recorded = [
            ledger.coverage(template)
            for template in templates
            if ledger.coverage(template) is not None
        ]
        assert recorded and all(coverage >= 0.95 for coverage in recorded)

    def test_ledger_feeds_explain_analyze_footnote(self, blinkdb_conviva):
        sql = "SELECT COUNT(*) FROM sessions GROUP BY country ERROR WITHIN 10% AT CONFIDENCE 95%"
        blinkdb_conviva.audit_accuracy(sql)
        analyzed = blinkdb_conviva.explain_analyze(sql)
        assert "ledger" in str(analyzed)

    def test_latency_ratio_quantiles_accumulate(self, blinkdb_conviva):
        for _ in range(3):
            blinkdb_conviva.query(
                "SELECT COUNT(*) FROM sessions WHERE city = 'city_0005' WITHIN 2 SECONDS"
            )
        ledger = blinkdb_conviva.obs.ledger
        template = "sessions[city]"
        summary = ledger.summary(template)
        assert summary is not None
        ratio = summary.get("latency_ratio")
        assert isinstance(ratio, dict)
        assert ratio["p50"] > 0


class TestMetricsExposition:
    def test_metrics_json_absorbs_all_surfaces(self, blinkdb_conviva):
        blinkdb_conviva.query("SELECT COUNT(*) FROM sessions WITHIN 2 SECONDS")
        described = blinkdb_conviva.metrics()
        for name in (
            "queries_total",
            "query_wall_seconds",
            "query_simulated_seconds",
            "traces",
            "runtime_counters",
            "ingest_counters",
        ):
            assert name in described, f"missing metric {name!r}"
        modes = {
            series["labels"]["mode"]
            for series in described["queries_total"]["series"]
        }
        assert modes  # at least one answer mode recorded

    def test_metrics_text_is_prometheus_exposition(self, blinkdb_conviva):
        blinkdb_conviva.query("SELECT COUNT(*) FROM sessions WITHIN 2 SECONDS")
        text = blinkdb_conviva.metrics_text()
        assert "# TYPE blinkdb_queries_total counter" in text
        assert "blinkdb_queries_total{" in text
        assert "# TYPE blinkdb_query_wall_seconds summary" in text

    def test_repeated_exposition_does_not_accumulate_collectors(self, blinkdb_conviva):
        blinkdb_conviva.metrics()
        before = len(blinkdb_conviva.obs.registry._collectors)
        blinkdb_conviva.metrics()
        blinkdb_conviva.metrics_text()
        assert len(blinkdb_conviva.obs.registry._collectors) == before


class TestTraceSampling:
    def test_sampling_rate_thins_traces(self, blinkdb_conviva):
        import dataclasses

        from repro.obs.observability import Observability

        config = dataclasses.replace(
            blinkdb_conviva.config, tracing_enabled=True, trace_sample_rate=0.25
        )
        obs = Observability(config)
        sampled = [obs.tracer.begin().sampled for _ in range(8)]
        assert sum(sampled) == 2

    def test_tracing_disabled_skips_trace_metadata(self, sessions_table):
        from repro.common.config import BlinkDBConfig, ClusterConfig, SamplingConfig
        from repro.core.blinkdb import BlinkDB
        from repro.workloads.conviva import conviva_query_templates

        config = BlinkDBConfig(
            sampling=SamplingConfig(largest_cap=80, min_cap=10, uniform_sample_fraction=0.1),
            cluster=ClusterConfig(num_nodes=20),
            tracing_enabled=False,
        )
        db = BlinkDB(config)
        db.load_table(sessions_table, simulated_rows=20_000_000)
        db.register_workload(templates=conviva_query_templates())
        db.build_samples(storage_budget_fraction=0.5)
        result = db.query("SELECT COUNT(*) FROM sessions WITHIN 2 SECONDS")
        assert "trace" not in result.metadata
        # EXPLAIN ANALYZE forces a trace regardless of sampling.
        analyzed = db.query("EXPLAIN ANALYZE SELECT COUNT(*) FROM sessions WITHIN 2 SECONDS")
        assert analyzed.trace.sampled
