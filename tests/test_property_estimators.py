"""Property-based tests (hypothesis) for the statistical estimators."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.estimation.estimators import (
    estimate_avg,
    estimate_count,
    estimate_quantile,
    estimate_sum,
)
from repro.estimation.propagation import combine_sum, scale

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
positive_weights = st.floats(min_value=1.0, max_value=1e4, allow_nan=False, allow_infinity=False)


def values_and_weights(min_size=1, max_size=60):
    return st.integers(min_value=min_size, max_value=max_size).flatmap(
        lambda n: st.tuples(
            arrays(np.float64, n, elements=finite_floats),
            arrays(np.float64, n, elements=positive_weights),
        )
    )


class TestCountProperties:
    @given(values_and_weights())
    @settings(max_examples=60, deadline=None)
    def test_count_equals_weight_sum_and_variance_nonnegative(self, data):
        _, weights = data
        estimate = estimate_count(weights, rows_read=len(weights) * 3)
        assert estimate.value == float(np.sum(weights))
        assert estimate.variance >= 0 or math.isinf(estimate.variance)

    @given(values_and_weights())
    @settings(max_examples=40, deadline=None)
    def test_exact_flag_always_zero_width(self, data):
        _, weights = data
        estimate = estimate_count(weights, rows_read=len(weights), exact=True)
        assert estimate.interval(0.99).half_width == 0.0


class TestAvgSumProperties:
    @given(values_and_weights(min_size=2))
    @settings(max_examples=60, deadline=None)
    def test_avg_within_value_range(self, data):
        values, weights = data
        estimate = estimate_avg(values, weights, rows_read=len(values) * 2)
        assert values.min() - 1e-9 <= estimate.value <= values.max() + 1e-9

    @given(values_and_weights(min_size=2))
    @settings(max_examples=60, deadline=None)
    def test_sum_matches_weighted_dot_product(self, data):
        values, weights = data
        estimate = estimate_sum(values, weights, rows_read=len(values) * 2)
        assert estimate.value == float(np.sum(values * weights))

    @given(values_and_weights(min_size=2), st.floats(min_value=0.5, max_value=0.99))
    @settings(max_examples=40, deadline=None)
    def test_interval_widens_with_confidence(self, data, confidence):
        values, weights = data
        estimate = estimate_avg(values, weights, rows_read=len(values) * 2)
        narrow = estimate.interval(confidence * 0.9)
        wide = estimate.interval(confidence)
        if math.isfinite(narrow.half_width) and math.isfinite(wide.half_width):
            assert wide.half_width >= narrow.half_width - 1e-12

    @given(values_and_weights(min_size=2))
    @settings(max_examples=40, deadline=None)
    def test_uniform_weight_scaling_does_not_change_avg(self, data):
        values, _ = data
        a = estimate_avg(values, np.full(len(values), 2.0), rows_read=len(values) * 2)
        b = estimate_avg(values, np.full(len(values), 20.0), rows_read=len(values) * 2)
        assert math.isclose(a.value, b.value, rel_tol=1e-9, abs_tol=1e-9)


class TestQuantileProperties:
    @given(values_and_weights(min_size=4), st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=60, deadline=None)
    def test_quantile_within_range_and_monotone_in_p(self, data, p):
        values, weights = data
        low = estimate_quantile(values, weights, max(0.01, p - 0.04), rows_read=len(values))
        high = estimate_quantile(values, weights, min(0.99, p + 0.04), rows_read=len(values))
        assert values.min() - 1e-9 <= low.value <= values.max() + 1e-9
        assert high.value >= low.value - 1e-9


class TestPropagationProperties:
    @given(st.lists(values_and_weights(min_size=1, max_size=20), min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_combine_sum_is_associative_in_value(self, datasets):
        estimates = [
            estimate_count(weights, rows_read=len(weights) * 2) for _, weights in datasets
        ]
        combined = combine_sum(estimates)
        assert combined.value == sum(e.value for e in estimates)
        assert combined.sample_rows == sum(e.sample_rows for e in estimates)

    @given(values_and_weights(), st.floats(min_value=0.1, max_value=100))
    @settings(max_examples=40, deadline=None)
    def test_scale_is_linear(self, data, factor):
        _, weights = data
        estimate = estimate_count(weights, rows_read=len(weights) * 2)
        scaled = scale(estimate, factor)
        assert scaled.value == estimate.value * factor
        if math.isfinite(estimate.variance):
            assert scaled.variance == estimate.variance * factor**2
