"""Tests for the query planning layer: LogicalPlan, PhysicalPlan, EXPLAIN."""

import pytest

from repro.common.config import BlinkDBConfig, ClusterConfig, SamplingConfig
from repro.common.errors import ParseError
from repro.core.blinkdb import BlinkDB
from repro.planner import (
    ExplainResult,
    LogicalPlan,
    PlanMode,
    canonicalize_predicate,
    predicate_key,
)
from repro.planner.physical import PhysicalPlan
from repro.service.cache import cache_key
from repro.sql.ast import (
    BinaryPredicate,
    CompoundPredicate,
    ExplainQuery,
    InPredicate,
    LogicalOp,
    NotPredicate,
)
from repro.sql.parser import parse_query, parse_statement
from repro.workloads.conviva import conviva_query_templates, generate_sessions_table


@pytest.fixture(scope="module")
def planner_db():
    table = generate_sessions_table(num_rows=20_000, seed=7, num_cities=20)
    config = BlinkDBConfig(
        sampling=SamplingConfig(largest_cap=300, min_cap=25, uniform_sample_fraction=0.08),
        cluster=ClusterConfig(num_nodes=10),
    )
    db = BlinkDB(config)
    db.load_table(table, simulated_rows=1_000_000_000)
    db.register_workload(templates=conviva_query_templates())
    db.build_samples(storage_budget_fraction=0.5)
    return db


# -- logical plan canonicalization ----------------------------------------------------


class TestCanonicalPredicates:
    def test_and_operands_sorted_and_flattened(self):
        a = parse_query("SELECT COUNT(*) FROM t WHERE (a = 1 AND b = 2) AND c = 3").where
        b = parse_query("SELECT COUNT(*) FROM t WHERE c = 3 AND (b = 2 AND a = 1)").where
        assert canonicalize_predicate(a) == canonicalize_predicate(b)

    def test_or_operands_sorted(self):
        a = parse_query("SELECT COUNT(*) FROM t WHERE a = 1 OR b = 2").where
        b = parse_query("SELECT COUNT(*) FROM t WHERE b = 2 OR a = 1").where
        assert canonicalize_predicate(a) == canonicalize_predicate(b)

    def test_duplicate_operands_removed(self):
        a = parse_query("SELECT COUNT(*) FROM t WHERE a = 1 AND a = 1").where
        canonical = canonicalize_predicate(a)
        assert isinstance(canonical, BinaryPredicate)

    def test_double_negation_collapses(self):
        inner = parse_query("SELECT COUNT(*) FROM t WHERE a = 1").where
        double = NotPredicate(inner=NotPredicate(inner=inner))
        assert canonicalize_predicate(double) == inner

    def test_in_list_sorted_and_deduplicated(self):
        a = parse_query("SELECT COUNT(*) FROM t WHERE a IN (3, 1, 2, 1)").where
        b = parse_query("SELECT COUNT(*) FROM t WHERE a IN (1, 2, 3)").where
        canonical = canonicalize_predicate(a)
        assert canonical == canonicalize_predicate(b)
        assert isinstance(canonical, InPredicate)
        assert canonical.values == (1, 2, 3)

    def test_single_element_in_becomes_equality(self):
        a = parse_query("SELECT COUNT(*) FROM t WHERE a IN (7)").where
        b = parse_query("SELECT COUNT(*) FROM t WHERE a = 7").where
        assert canonicalize_predicate(a) == b

    def test_predicate_key_distinguishes_types(self):
        int_pred = parse_query("SELECT COUNT(*) FROM t WHERE a = 1").where
        str_pred = parse_query("SELECT COUNT(*) FROM t WHERE a = '1'").where
        assert predicate_key(int_pred) != predicate_key(str_pred)


class TestLogicalPlan:
    def test_group_by_canonicalized_sorted(self):
        plan = LogicalPlan.of("SELECT COUNT(*) FROM t GROUP BY z, a, m")
        assert plan.group_by == ("a", "m", "z")

    def test_fingerprint_ignores_group_by_order(self):
        a = LogicalPlan.of("SELECT COUNT(*) FROM t GROUP BY a, b")
        b = LogicalPlan.of("SELECT COUNT(*) FROM t GROUP BY b, a")
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_ignores_whitespace_and_predicate_order(self):
        a = LogicalPlan.of("SELECT COUNT(*) FROM t WHERE a = 1 AND b = 2")
        b = LogicalPlan.of("select   count(*)  from t  where b = 2 and a = 1")
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_distinguishes_constants_and_bounds(self):
        base = LogicalPlan.of("SELECT COUNT(*) FROM t WHERE a = 1")
        other = LogicalPlan.of("SELECT COUNT(*) FROM t WHERE a = 2")
        bounded = LogicalPlan.of(
            "SELECT COUNT(*) FROM t WHERE a = 1 ERROR WITHIN 10% AT CONFIDENCE 95%"
        )
        timed = LogicalPlan.of("SELECT COUNT(*) FROM t WHERE a = 1 WITHIN 5 SECONDS")
        assert len({base.fingerprint(), other.fingerprint(),
                    bounded.fingerprint(), timed.fingerprint()}) == 4

    def test_fingerprint_keeps_select_list_order(self):
        # Execution preserves select-list order, so the fingerprint must too:
        # a cached answer may not be served to a permuted select list.
        a = LogicalPlan.of("SELECT COUNT(*), SUM(x) FROM t WHERE a = 1")
        b = LogicalPlan.of("SELECT SUM(x), COUNT(*) FROM t WHERE a = 1")
        assert a.fingerprint() != b.fingerprint()

    def test_probe_fingerprint_ignores_bounds(self):
        plain = LogicalPlan.of("SELECT COUNT(*) FROM t WHERE a = 1")
        timed = LogicalPlan.of("SELECT COUNT(*) FROM t WHERE a = 1 WITHIN 5 SECONDS")
        bounded = LogicalPlan.of(
            "SELECT COUNT(*) FROM t WHERE a = 1 ERROR WITHIN 5% AT CONFIDENCE 95%"
        )
        low_conf = LogicalPlan.of(
            "SELECT COUNT(*) FROM t WHERE a = 1 ERROR WITHIN 5% AT CONFIDENCE 90%"
        )
        assert plain.probe_fingerprint() == timed.probe_fingerprint()
        assert plain.probe_fingerprint() == bounded.probe_fingerprint()
        # A different reporting confidence changes the probe's error bars.
        assert plain.probe_fingerprint() != low_conf.probe_fingerprint()

    def test_branches_are_disjoint(self):
        plan = LogicalPlan.of("SELECT COUNT(*) FROM t WHERE a = 1 OR b = 2")
        assert len(plan.branches) == 2
        first, second = plan.branches
        assert isinstance(second, CompoundPredicate)
        assert second.op is LogicalOp.AND
        assert any(isinstance(op, NotPredicate) for op in second.operands)
        assert first is not None

    def test_referenced_columns_cover_all_clauses(self):
        plan = LogicalPlan.of(
            "SELECT AVG(x) FROM t JOIN d ON k = dk WHERE a = 1 GROUP BY g"
        )
        assert plan.referenced_columns == {"x", "k", "dk", "a", "g"}

    def test_of_is_idempotent(self):
        plan = LogicalPlan.of("SELECT COUNT(*) FROM t")
        assert LogicalPlan.of(plan) is plan


# -- cache-key regressions ------------------------------------------------------------


class TestCacheKeyGroupByOrder:
    def test_group_by_order_shares_cache_key(self):
        # Regression: cache_key used to join group_by in text order, so
        # `GROUP BY a, b` and `GROUP BY b, a` missed each other's entries.
        a = parse_query("SELECT COUNT(*) FROM t WHERE x = 1 GROUP BY a, b")
        b = parse_query("SELECT COUNT(*) FROM t WHERE x = 1 GROUP BY b, a")
        assert cache_key(a) == cache_key(b)

    def test_group_by_set_still_distinguishes(self):
        a = parse_query("SELECT COUNT(*) FROM t GROUP BY a")
        b = parse_query("SELECT COUNT(*) FROM t GROUP BY a, b")
        assert cache_key(a) != cache_key(b)

    def test_service_cache_hit_across_group_by_orders(self, planner_db):
        service = planner_db.serve(num_workers=1)
        try:
            first = service.execute(
                "SELECT COUNT(*) FROM sessions WHERE dt = 5 GROUP BY city, genre"
            )
            hits_before = service.metrics.cache_hits.value
            second = service.execute(
                "SELECT COUNT(*) FROM sessions WHERE dt = 5 GROUP BY genre, city"
            )
            assert service.metrics.cache_hits.value == hits_before + 1
            assert first is second  # the very same cached object
        finally:
            service.close()


# -- physical plans and EXPLAIN --------------------------------------------------------


class TestPhysicalPlan:
    def test_plan_attached_to_results(self, planner_db):
        result = planner_db.query("SELECT COUNT(*) FROM sessions WHERE dt = 5")
        plan = result.metadata["plan"]
        assert isinstance(plan, PhysicalPlan)
        assert plan.mode is PlanMode.APPROXIMATE
        assert plan.resolution is not None
        assert plan.resolution.name == result.sample_name
        assert result.metadata["decision"].plan is plan

    def test_pruned_columns_subset_of_schema(self, planner_db):
        plan = planner_db.runtime.explain(
            "SELECT AVG(session_time) FROM sessions WHERE dt = 5 GROUP BY city"
        )
        assert set(plan.pruned_columns) == {"session_time", "dt", "city"}

    def test_count_star_keeps_carrier_column(self, planner_db):
        plan = planner_db.runtime.explain("SELECT COUNT(*) FROM sessions")
        assert len(plan.pruned_columns) == 1

    def test_exact_plan_mode(self, planner_db):
        result = planner_db.query_exact("SELECT COUNT(*) FROM sessions")
        plan = result.metadata["plan"]
        assert plan.mode is PlanMode.EXACT
        assert plan.resolution is None

    def test_disjunctive_plan_has_branch_plans(self, planner_db):
        plan = planner_db.runtime.explain(
            "SELECT COUNT(*) FROM sessions WHERE genre = 'g3' OR dt = 5"
        )
        assert plan.mode is PlanMode.DISJUNCTIVE
        assert len(plan.branch_plans) == 2
        for branch in plan.branch_plans:
            assert branch.resolution is not None
        rendered = plan.render()
        assert "disjoint union" in rendered

    def test_render_contains_elp_and_rationale(self, planner_db):
        plan = planner_db.runtime.explain(
            "SELECT COUNT(*) FROM sessions WHERE dt = 5 WITHIN 5 SECONDS"
        )
        rendered = plan.render()
        assert "PhysicalPlan [approximate]" in rendered
        assert "fingerprint:" in rendered
        assert "resolution:" in rendered
        assert "latency~" in rendered  # the ELP table
        assert "stages:" in rendered
        assert plan.rationale  # at least selection + sizing rationale

    def test_anytime_plan_carries_partition_spec(self, planner_db):
        plan = planner_db.runtime.explain(
            "SELECT COUNT(*) FROM sessions WHERE dt = 5 WITHIN 0.05 SECONDS"
        )
        assert plan.anytime
        assert not plan.bound_satisfied
        assert plan.partitioning is not None
        assert plan.partitioning.deadline_seconds == pytest.approx(0.05)
        assert plan.partitioning.num_partitions > 1


class TestExplainStatement:
    def test_parse_statement_wraps_query(self):
        statement = parse_statement("EXPLAIN SELECT COUNT(*) FROM t WHERE a = 1")
        assert isinstance(statement, ExplainQuery)
        assert statement.query.table == "t"

    def test_parse_statement_plain_query_passthrough(self):
        statement = parse_statement("SELECT COUNT(*) FROM t")
        assert not isinstance(statement, ExplainQuery)

    def test_parse_query_rejects_explain(self):
        with pytest.raises(ParseError, match="parse_statement"):
            parse_query("EXPLAIN SELECT COUNT(*) FROM t")

    def test_explain_keyword_still_contextual_identifier(self):
        query = parse_query("SELECT COUNT(explain) FROM explain GROUP BY explain")
        assert query.table == "explain"

    def test_facade_explain_returns_rendered_plan_without_executing(self, planner_db):
        executed_before = planner_db.runtime.stats["queries_executed"]
        result = planner_db.query("EXPLAIN SELECT COUNT(*) FROM sessions WHERE dt = 5")
        assert isinstance(result, ExplainResult)
        assert "PhysicalPlan" in result.text
        assert str(result) == result.text
        assert planner_db.runtime.stats["queries_executed"] == executed_before

    def test_service_explain_ticket(self, planner_db):
        service = planner_db.serve(num_workers=1)
        try:
            ticket = service.submit("EXPLAIN SELECT COUNT(*) FROM sessions WHERE dt = 5")
            assert ticket.metrics.admission == "explain"
            result = ticket.result(timeout=5)
            assert isinstance(result, ExplainResult)
            assert result.plan.mode is PlanMode.APPROXIMATE
            assert service.metrics.explained.value == 1
        finally:
            service.close()


# -- probe memoization ----------------------------------------------------------------


class TestProbeMemoization:
    def test_repeated_unbounded_queries_hit_probe_cache(self, planner_db):
        sql = "SELECT COUNT(*) FROM sessions WHERE dt = 7"
        stats_before = planner_db.runtime.stats
        planner_db.query(sql)
        after_first = planner_db.runtime.stats
        new_misses = (
            after_first["probe_cache_misses"] - stats_before["probe_cache_misses"]
        )
        assert new_misses >= 1  # first run really probed
        planner_db.query(sql)
        after_second = planner_db.runtime.stats
        assert after_second["probe_cache_misses"] == after_first["probe_cache_misses"]
        assert after_second["probe_cache_hits"] > after_first["probe_cache_hits"]

    def test_different_constants_do_not_share_probes(self, planner_db):
        planner_db.query("SELECT COUNT(*) FROM sessions WHERE dt = 11")
        misses = planner_db.runtime.stats["probe_cache_misses"]
        planner_db.query("SELECT COUNT(*) FROM sessions WHERE dt = 12")
        assert planner_db.runtime.stats["probe_cache_misses"] > misses

    def test_rebuild_discards_probe_memo(self, planner_db):
        planner_db.query("SELECT COUNT(*) FROM sessions WHERE dt = 9")
        assert planner_db.runtime.stats["probe_cache_entries"] > 0
        planner_db.build_samples("sessions", storage_budget_fraction=0.5)
        # The runtime (and with it the memo) was replaced wholesale.
        assert planner_db.runtime.stats["probe_cache_entries"] == 0

    def test_service_metrics_mirror_probe_counters(self, planner_db):
        service = planner_db.serve(num_workers=1)
        try:
            service.execute("SELECT COUNT(*) FROM sessions WHERE dt = 3")
            service.execute("SELECT COUNT(*) FROM sessions WHERE dt = 3 WITHIN 30 SECONDS")
            description = service.describe()
            probe = description["metrics"]["probe_cache"]
            runtime_stats = planner_db.runtime.stats
            assert probe["hits"] == runtime_stats["probe_cache_hits"]
            assert probe["misses"] == runtime_stats["probe_cache_misses"]
            assert probe["hits"] >= 1  # the second query reused the probe
        finally:
            service.close()
