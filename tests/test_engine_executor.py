"""Tests for the query executor and result types."""

import math

import numpy as np
import pytest

from repro.engine.executor import ExecutionContext, QueryExecutor, execute_exact
from repro.sql.parser import parse_query
from repro.storage.table import Table


@pytest.fixture()
def table() -> Table:
    return Table.from_dict(
        "t",
        {
            "city": ["NY"] * 50 + ["SF"] * 30 + ["LA"] * 20,
            "os": (["Win", "Mac"] * 50),
            "time": [float(i % 17 + 1) for i in range(100)],
        },
    )


class TestExactExecution:
    def test_count_star(self, table):
        result = execute_exact(parse_query("SELECT COUNT(*) FROM t"), table)
        assert result.scalar().value == 100
        assert result.is_exact

    def test_count_with_filter(self, table):
        result = execute_exact(parse_query("SELECT COUNT(*) FROM t WHERE city = 'NY'"), table)
        assert result.scalar().value == 50

    def test_group_by_counts(self, table):
        result = execute_exact(parse_query("SELECT COUNT(*) FROM t GROUP BY city"), table)
        counts = {g.key[0]: g["count_star"].value for g in result}
        assert counts == {"NY": 50, "SF": 30, "LA": 20}

    def test_avg_sum_match_numpy(self, table):
        result = execute_exact(parse_query("SELECT AVG(time), SUM(time) FROM t"), table)
        values = np.asarray(table.column("time").values())
        assert result.groups[0]["avg_time"].value == pytest.approx(values.mean())
        assert result.groups[0]["sum_time"].value == pytest.approx(values.sum())

    def test_quantile_matches_numpy(self, table):
        result = execute_exact(parse_query("SELECT QUANTILE(time, 0.5) FROM t"), table)
        values = np.asarray(table.column("time").values())
        assert result.scalar().value == pytest.approx(np.median(values), rel=0.1)

    def test_stddev_variance(self, table):
        result = execute_exact(parse_query("SELECT STDDEV(time), VARIANCE(time) FROM t"), table)
        values = np.asarray(table.column("time").values())
        assert result.groups[0]["stddev_time"].value == pytest.approx(values.std(ddof=1), rel=0.05)
        assert result.groups[0]["variance_time"].value == pytest.approx(values.var(ddof=1), rel=0.05)

    def test_exact_results_have_zero_error_bars(self, table):
        result = execute_exact(parse_query("SELECT AVG(time) FROM t GROUP BY city"), table)
        assert all(g["avg_time"].error_bar == 0.0 for g in result)

    def test_multi_column_group_by(self, table):
        result = execute_exact(parse_query("SELECT COUNT(*) FROM t GROUP BY city, os"), table)
        assert len(result) == 6
        total = sum(g["count_star"].value for g in result)
        assert total == 100

    def test_limit_truncates_groups(self, table):
        result = execute_exact(parse_query("SELECT COUNT(*) FROM t GROUP BY city LIMIT 2"), table)
        assert len(result) == 2

    def test_empty_filter_result(self, table):
        result = execute_exact(parse_query("SELECT COUNT(*) FROM t WHERE city = 'Boston'"), table)
        assert result.scalar().value == 0


class TestWeightedExecution:
    def test_uniform_weights_scale_counts(self, table):
        executor = QueryExecutor()
        half = table.take(np.arange(0, 100, 2))
        context = ExecutionContext(weights=np.full(50, 2.0), rows_read=50, population_read=100.0)
        result = executor.execute(
            parse_query("SELECT COUNT(*) FROM t WHERE city = 'NY'"), half, context
        )
        assert result.scalar().value == pytest.approx(50, rel=0.3)
        assert result.scalar().error_bar > 0

    def test_fully_selective_count_has_no_count_noise(self, table):
        # When every scanned row matches, Table 2's c(1-c) term vanishes.
        executor = QueryExecutor()
        half = table.take(np.arange(0, 100, 2))
        context = ExecutionContext(weights=np.full(50, 2.0), rows_read=50, population_read=100.0)
        result = executor.execute(parse_query("SELECT COUNT(*) FROM t"), half, context)
        assert result.scalar().value == pytest.approx(100)
        assert result.scalar().error_bar == pytest.approx(0.0)

    def test_weighted_avg_is_unbiased_for_stratified_example(self):
        # Paper §4.3 example: stratified on Browser with K=1, New York sum.
        sample = Table.from_dict(
            "s",
            {
                "city": ["New York", "New York", "Cambridge"],
                "browser": ["Firefox", "Safari", "IE"],
                "time": [20.0, 82.0, 22.0],
            },
        )
        weights = np.array([1.0 / 0.33, 1.0, 1.0])
        executor = QueryExecutor()
        context = ExecutionContext(weights=weights, rows_read=3, population_read=5.0)
        result = executor.execute(
            parse_query("SELECT SUM(time) FROM s GROUP BY city"), sample, context
        )
        ny = result.group(("New York",))["sum_time"].value
        assert ny == pytest.approx((1 / 0.33) * 20 + 82, rel=1e-6)

    def test_unit_weight_groups_marked_exact(self, table):
        executor = QueryExecutor()
        context = ExecutionContext(
            weights=np.ones(table.num_rows), unit_weight_exact=True, rows_read=table.num_rows
        )
        result = executor.execute(parse_query("SELECT COUNT(*) FROM t GROUP BY city"), table, context)
        assert result.is_exact

    def test_weight_length_mismatch_rejected(self, table):
        executor = QueryExecutor()
        context = ExecutionContext(weights=np.ones(3))
        with pytest.raises(Exception):
            executor.execute(parse_query("SELECT COUNT(*) FROM t"), table, context)

    def test_confidence_override_changes_error_bar(self, table):
        executor = QueryExecutor()
        half = table.take(np.arange(0, 100, 2))
        context = ExecutionContext(weights=np.full(50, 2.0), rows_read=50)
        narrow = executor.execute(parse_query("SELECT AVG(time) FROM t"), half, context, confidence=0.68)
        wide = executor.execute(parse_query("SELECT AVG(time) FROM t"), half, context, confidence=0.99)
        assert wide.scalar().error_bar > narrow.scalar().error_bar


class TestJoins:
    def test_join_with_dimension_table(self):
        fact = Table.from_dict("fact", {"k": [1, 2, 2, 3], "v": [10.0, 20.0, 30.0, 40.0]})
        dim = Table.from_dict("dim", {"k": [1, 2, 3], "region": ["east", "west", "east"]})
        executor = QueryExecutor({"dim": dim})
        query = parse_query("SELECT SUM(v) FROM fact JOIN dim ON k = k GROUP BY region")
        result = executor.execute(query, fact)
        assert result.group(("east",))["sum_v"].value == pytest.approx(50.0)
        assert result.group(("west",))["sum_v"].value == pytest.approx(50.0)

    def test_join_unknown_dimension_rejected(self):
        fact = Table.from_dict("fact", {"k": [1]})
        executor = QueryExecutor()
        query = parse_query("SELECT COUNT(*) FROM fact JOIN missing ON k = k")
        with pytest.raises(Exception):
            executor.execute(query, fact)


class TestResultAccessors:
    def test_scalar_requires_single_group(self, table):
        grouped = execute_exact(parse_query("SELECT COUNT(*) FROM t GROUP BY city"), table)
        with pytest.raises(ValueError):
            grouped.scalar()

    def test_group_lookup_and_missing_key(self, table):
        result = execute_exact(parse_query("SELECT COUNT(*) FROM t GROUP BY city"), table)
        assert result.group("NY")["count_star"].value == 50
        assert result.has_group("SF")
        with pytest.raises(KeyError):
            result.group("Boston")

    def test_to_rows_flattening(self, table):
        result = execute_exact(parse_query("SELECT AVG(time) FROM t GROUP BY city"), table)
        rows = result.to_rows()
        assert len(rows) == 3
        assert {"city", "avg_time"} <= set(rows[0])

    def test_max_relative_error_zero_for_exact(self, table):
        result = execute_exact(parse_query("SELECT AVG(time) FROM t GROUP BY city"), table)
        assert result.max_relative_error() == 0.0

    def test_empty_group_avg_is_nan(self, table):
        result = execute_exact(parse_query("SELECT AVG(time) FROM t WHERE city = 'Boston'"), table)
        assert math.isnan(result.scalar().value)
