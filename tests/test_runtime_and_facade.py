"""Integration-level tests for the BlinkDB runtime and the public facade."""

import math

import pytest

from repro.common.config import BlinkDBConfig, ClusterConfig, SamplingConfig
from repro.common.errors import CatalogError, ConstraintUnsatisfiableError, PlanningError
from repro.core.blinkdb import BlinkDB
from repro.workloads.conviva import conviva_query_templates
from repro.workloads.tpch import tpch_query_templates


class TestRuntimeDecisions:
    def test_error_bound_query_uses_stratified_sample(self, blinkdb_conviva):
        result = blinkdb_conviva.query(
            "SELECT COUNT(*) FROM sessions WHERE city = 'city_0001' "
            "GROUP BY os ERROR WITHIN 20% AT CONFIDENCE 95%"
        )
        decision = result.metadata["decision"]
        assert decision.family_key == ("city", "os")
        assert decision.family_reason == "superset-match"
        assert result.sample_name.startswith("sessions/strat(city,os)")

    def test_error_bound_is_respected_when_satisfiable(self, blinkdb_conviva):
        result = blinkdb_conviva.query(
            "SELECT COUNT(*) FROM sessions WHERE city = 'city_0000' "
            "ERROR WITHIN 30% AT CONFIDENCE 95%"
        )
        decision = result.metadata["decision"]
        if decision.bound_satisfied:
            assert result.max_relative_error() <= 0.30 * 1.5  # some slack for extrapolation

    def test_time_bound_query_attaches_latency(self, blinkdb_conviva):
        result = blinkdb_conviva.query(
            "SELECT AVG(session_time) FROM sessions WHERE city = 'city_0001' "
            "GROUP BY os WITHIN 5 SECONDS"
        )
        assert result.simulated_latency_seconds is not None
        decision = result.metadata["decision"]
        if decision.bound_satisfied:
            assert result.simulated_latency_seconds <= 5.0 * 1.2

    def test_tighter_error_bound_reads_more_rows(self, blinkdb_conviva):
        loose = blinkdb_conviva.query(
            "SELECT COUNT(*) FROM sessions WHERE city = 'city_0001' "
            "ERROR WITHIN 40% AT CONFIDENCE 95%"
        )
        tight = blinkdb_conviva.query(
            "SELECT COUNT(*) FROM sessions WHERE city = 'city_0001' "
            "ERROR WITHIN 5% AT CONFIDENCE 95%"
        )
        assert tight.rows_read >= loose.rows_read

    def test_longer_time_bound_reads_no_fewer_rows(self, blinkdb_conviva):
        short = blinkdb_conviva.query(
            "SELECT COUNT(*) FROM sessions WHERE city = 'city_0001' WITHIN 1 SECONDS"
        )
        long = blinkdb_conviva.query(
            "SELECT COUNT(*) FROM sessions WHERE city = 'city_0001' WITHIN 60 SECONDS"
        )
        assert long.rows_read >= short.rows_read

    def test_unbounded_query_uses_largest_resolution(self, blinkdb_conviva):
        result = blinkdb_conviva.query(
            "SELECT COUNT(*) FROM sessions WHERE country = 'country_0002'"
        )
        decision = result.metadata["decision"]
        family = blinkdb_conviva.catalog.stratified_family("sessions", decision.family_key)
        if family is not None:
            assert decision.resolution_rows == family.largest.num_rows

    def test_approximate_answer_close_to_exact(self, blinkdb_conviva):
        sql = "SELECT AVG(session_time) FROM sessions WHERE city = 'city_0000' GROUP BY os"
        approx = blinkdb_conviva.query(sql + " ERROR WITHIN 10% AT CONFIDENCE 95%")
        exact = blinkdb_conviva.query_exact(sql)
        for group in approx:
            if not exact.has_group(group.key):
                continue
            exact_value = exact.group(group.key)["avg_session_time"].value
            estimate = group["avg_session_time"]
            # within 4 half-widths of the truth (generous but catches bias bugs)
            tolerance = max(4 * estimate.error_bar, 0.3 * exact_value)
            assert abs(estimate.value - exact_value) <= tolerance

    def test_rare_group_preserved_by_stratified_sample(self, blinkdb_conviva):
        sql = "SELECT COUNT(*) FROM sessions GROUP BY country"
        exact = blinkdb_conviva.query_exact(sql)
        approx = blinkdb_conviva.query(sql)
        missing = [g.key for g in exact if not approx.has_group(g.key)]
        assert not missing  # stratified sample on country keeps every group

    def test_sampled_latency_is_below_full_scan_latency(self, blinkdb_conviva):
        sql = (
            "SELECT AVG(session_time) FROM sessions WHERE city = 'city_0001' "
            "GROUP BY os WITHIN 5 SECONDS"
        )
        approx = blinkdb_conviva.query(sql)
        exact = blinkdb_conviva.query_exact(
            "SELECT AVG(session_time) FROM sessions WHERE city = 'city_0001' GROUP BY os"
        )
        assert approx.simulated_latency_seconds < exact.simulated_latency_seconds

    def test_disjunctive_count_combines_branches(self, blinkdb_conviva):
        sql = "SELECT COUNT(*) FROM sessions WHERE city = 'city_0001' OR country = 'country_0003'"
        approx = blinkdb_conviva.query(sql)
        exact = blinkdb_conviva.query_exact(sql)
        decision = approx.metadata["decision"]
        assert decision.family_reason == "disjunctive-union"
        assert decision.branches == 2
        estimate = approx.scalar()
        tolerance = max(4 * estimate.error_bar, 0.25 * exact.scalar().value)
        assert abs(estimate.value - exact.scalar().value) <= tolerance

    def test_strict_bounds_raise_when_unsatisfiable(self, sessions_table):
        config = BlinkDBConfig(
            sampling=SamplingConfig(largest_cap=50, min_cap=10, uniform_sample_fraction=0.05),
            cluster=ClusterConfig(num_nodes=4),
            strict_bounds=True,
        )
        db = BlinkDB(config)
        db.load_table(sessions_table)
        db.register_workload(templates=conviva_query_templates())
        db.build_samples(storage_budget_fraction=0.3)
        with pytest.raises(ConstraintUnsatisfiableError):
            db.query(
                "SELECT AVG(session_time) FROM sessions WHERE city = 'city_0004' "
                "GROUP BY os ERROR WITHIN 0.01% AT CONFIDENCE 99%"
            )

    def test_report_error_confidence_used(self, blinkdb_conviva):
        result = blinkdb_conviva.query(
            "SELECT COUNT(*), RELATIVE ERROR AT 95% CONFIDENCE FROM sessions "
            "WHERE city = 'city_0002' WITHIN 5 SECONDS"
        )
        assert result.scalar("count_star").error_bar >= 0


class TestFacade:
    def test_load_table_rejects_empty_and_bad_scale(self, sessions_table):
        db = BlinkDB()
        with pytest.raises(ValueError):
            db.load_table(sessions_table, simulated_rows=10)

    def test_register_workload_requires_exactly_one_source(self, sessions_table):
        db = BlinkDB()
        db.load_table(sessions_table)
        with pytest.raises(ValueError):
            db.register_workload()
        with pytest.raises(ValueError):
            db.register_workload(queries=["SELECT COUNT(*) FROM sessions"], templates=[])

    def test_register_workload_from_query_trace(self, sessions_table):
        db = BlinkDB()
        db.load_table(sessions_table)
        templates = db.register_workload(
            queries=[
                "SELECT COUNT(*) FROM sessions WHERE city = 'city_0001' GROUP BY os",
                "SELECT COUNT(*) FROM sessions WHERE city = 'city_0002' GROUP BY os",
                "SELECT AVG(session_time) FROM sessions WHERE country = 'country_0001'",
            ]
        )
        assert len(templates) == 2
        assert db.templates_for("sessions")

    def test_build_samples_requires_workload(self, sessions_table):
        db = BlinkDB()
        db.load_table(sessions_table)
        with pytest.raises((PlanningError, CatalogError)):
            db.build_samples("sessions")

    def test_build_report_and_describe(self, blinkdb_conviva):
        report = blinkdb_conviva.build_report("sessions")
        assert report.uniform_storage_bytes > 0
        assert report.stratified
        description = blinkdb_conviva.describe()
        assert "sessions" in description["catalog"]
        assert description["plans"]["sessions"]["families"]

    def test_explain_returns_decision(self, blinkdb_conviva):
        explanation = blinkdb_conviva.explain(
            "SELECT COUNT(*) FROM sessions WHERE city = 'city_0001' WITHIN 5 SECONDS"
        )
        assert explanation["decision"] is not None
        assert explanation["rows_read"] > 0

    def test_template_of_helper(self):
        template = BlinkDB.template_of(
            "SELECT COUNT(*) FROM sessions WHERE city = 'NY' GROUP BY os"
        )
        assert template.columns == ("city", "os")

    def test_replan_with_new_workload(self, sessions_table):
        config = BlinkDBConfig(
            sampling=SamplingConfig(largest_cap=100, min_cap=10, uniform_sample_fraction=0.05),
            cluster=ClusterConfig(num_nodes=4),
        )
        db = BlinkDB(config)
        db.load_table(sessions_table)
        db.register_workload(templates=conviva_query_templates())
        db.build_samples(storage_budget_fraction=0.4)
        new_templates = [BlinkDB.template_of("SELECT COUNT(*) FROM sessions GROUP BY asn")]
        plan, actions = db.replan_samples("sessions", templates=new_templates, churn_fraction=1.0)
        assert actions
        built = set(db.catalog.stratified_families("sessions"))
        assert {f.columns for f in plan.families} == built

    def test_query_with_join_against_dimension_table(self, lineitem_table, orders_table):
        config = BlinkDBConfig(
            sampling=SamplingConfig(largest_cap=100, min_cap=10, uniform_sample_fraction=0.1),
            cluster=ClusterConfig(num_nodes=4),
        )
        db = BlinkDB(config)
        db.load_table(lineitem_table)
        db.load_dimension_table(orders_table)
        db.register_workload(templates=tpch_query_templates())
        db.build_samples(storage_budget_fraction=0.5)
        sql = (
            "SELECT AVG(extendedprice) FROM lineitem JOIN orders ON orderkey = orderkey "
            "WHERE shipmode = 'AIR' GROUP BY orderpriority WITHIN 10 SECONDS"
        )
        approx = db.query(sql)
        assert len(approx) >= 1
        exact = db.query_exact(
            "SELECT AVG(extendedprice) FROM lineitem JOIN orders ON orderkey = orderkey "
            "WHERE shipmode = 'AIR' GROUP BY orderpriority"
        )
        for group in approx:
            if exact.has_group(group.key):
                exact_value = exact.group(group.key)["avg_extendedprice"].value
                assert abs(group["avg_extendedprice"].value - exact_value) / exact_value < 0.5

    def test_sole_workload_table_inference_fails_with_multiple(self, sessions_table, lineitem_table):
        db = BlinkDB()
        db.load_table(sessions_table)
        db.load_table(lineitem_table)
        db.register_workload(templates=conviva_query_templates())
        db.register_workload(templates=tpch_query_templates())
        with pytest.raises(CatalogError):
            db.build_samples()


class TestTPCHWorkload:
    def test_end_to_end_tpch(self, lineitem_table):
        config = BlinkDBConfig(
            sampling=SamplingConfig(largest_cap=150, min_cap=10, uniform_sample_fraction=0.1),
            cluster=ClusterConfig(num_nodes=10),
        )
        db = BlinkDB(config)
        db.load_table(lineitem_table, simulated_rows=20_000_000)
        db.register_workload(templates=tpch_query_templates())
        plan = db.build_samples(storage_budget_fraction=0.5)
        assert plan.families
        result = db.query(
            "SELECT SUM(extendedprice) FROM lineitem WHERE shipmode = 'AIR' "
            "GROUP BY returnflag ERROR WITHIN 10% AT CONFIDENCE 95%"
        )
        exact = db.query_exact(
            "SELECT SUM(extendedprice) FROM lineitem WHERE shipmode = 'AIR' GROUP BY returnflag"
        )
        for group in result:
            exact_value = exact.group(group.key)["sum_extendedprice"].value
            estimate = group["sum_extendedprice"]
            assert math.isfinite(estimate.value)
            assert abs(estimate.value - exact_value) / exact_value < 0.5
