"""Property tests for compressed execution (per-block encodings).

The contract being proven, for random tables, predicates, encodings, and
block granularities:

* every encoding round-trips **losslessly** — decode, gather, range
  decode, and slice views reproduce the raw array bitwise;
* the accelerated executor over an **encoded** table returns bitwise
  identical estimates and error bars to the naive mask path over the raw
  table when the run-fold is off (`encoded_fold=False`, the gather
  reference path), and identical-to-float-rounding (≤1e-9 relative)
  results with the run-weighted fold on, serial and partitioned;
* `AggregateState.update_runs` (the closed-form RLE folds) agrees with
  expanding the runs and calling `update`;
* the 22-predicate kernel sweep of `test_engine_kernels.py` produces the
  same selection vectors on encoded and raw storage;
* encoding metadata is **carried forward** by row-preserving column
  copies (slices stay encoded and share the parent encoding; reordering
  copies decode) — mirroring the PR 5 zone-map carry-forward tests;
* incremental appends reuse complete blocks **by identity** (no rewrite
  of prior generations).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.accumulators import make_state
from repro.engine.executor import ExecutionContext, QueryExecutor
from repro.engine.expressions import evaluate_predicate
from repro.engine.kernels import compile_predicate
from repro.planner.logical import LogicalPlan
from repro.runtime.partitioned import PartitionPipeline
from repro.storage.column import Column
from repro.storage.encodings import (
    EncodedColumn,
    encode_array,
    encode_column,
    encode_table,
    table_encoding_stats,
)
from repro.storage.table import Table

from test_engine_kernels import PREDICATES, ROWS
from test_engine_kernels import table as _kernel_table_fixture  # noqa: F401

# -- random inputs ------------------------------------------------------------------

_STRINGS = ["s0", "s1", "s2", "s3", "s4", "s5"]

_ATOMS = [
    "a = {v}".format,
    "a != {v}".format,
    "a < {v}".format,
    "a >= {v}".format,
    "a BETWEEN {v} AND {w}".format,
    "a IN ({v}, {w})".format,
    "x < {v}.5".format,
    "x >= {v}.25".format,
    "g = 's{u}'".format,
    "g != 's{u}'".format,
    "g < 's{u}'".format,
    "g >= 's{u}'".format,
    "NOT a < {v}".format,
]


def _render_atom(spec) -> str:
    index, v, w, u = spec
    return _ATOMS[index](v=min(v, w), w=max(v, w), u=u)


atom_strategy = st.tuples(
    st.sampled_from(range(len(_ATOMS))),
    st.integers(min_value=0, max_value=20),
    st.integers(min_value=0, max_value=20),
    st.integers(min_value=0, max_value=9),
)

case_strategy = st.fixed_dictionaries(
    {
        "rows": st.integers(min_value=1, max_value=240),
        "seed": st.integers(min_value=0, max_value=2**16),
        # Sorting by a low-cardinality column manufactures long runs (the
        # RLE-friendly layout samples have after the φ sort); `None` leaves
        # shuffled data that mostly stays FOR/raw.
        "sort_by": st.sampled_from([None, "a", "g"]),
        "run_length": st.sampled_from([1, 1, 7, 64]),
        "with_nans": st.booleans(),
        "atoms": st.lists(atom_strategy, min_size=0, max_size=3),
        "connector": st.sampled_from([" AND ", " OR "]),
        "aggregate": st.sampled_from(
            ["COUNT(*)", "SUM(x)", "AVG(a)", "COUNT(*), AVG(x), STDDEV(x)"]
        ),
        "group_by": st.booleans(),
        "weighted": st.booleans(),
        "block_rows": st.integers(min_value=1, max_value=64),
        "partitions": st.integers(min_value=1, max_value=8),
    }
)


def _build_case(case):
    """(raw table, encoded table, plan, weights) for one random case."""
    rng = np.random.default_rng(case["seed"])
    rows = case["rows"]
    run = case["run_length"]
    # Tiled values make runs once sorted; raw order still has short bursts.
    a = rng.integers(0, 21, rows)
    a = a[np.argsort(a // max(run, 1), kind="stable")] if run > 1 else a
    x = np.round(rng.normal(10.0, 4.0, rows), 3)
    if case["with_nans"]:
        x[rng.random(rows) < 0.15] = np.nan
    table = Table.from_dict(
        "t",
        {
            "a": a.tolist(),
            "x": x.tolist(),
            "g": [_STRINGS[i] for i in rng.integers(0, len(_STRINGS), rows)],
        },
    )
    if case["sort_by"]:
        table = table.sort_by([case["sort_by"]])
    atoms = [_render_atom(atom) for atom in case["atoms"]]
    predicate = case["connector"].join(atoms)
    sql = f"SELECT {case['aggregate']} FROM t"
    if predicate:
        sql += f" WHERE {predicate}"
    if case["group_by"]:
        sql += " GROUP BY g"
    plan = LogicalPlan.of(sql)
    weights = np.round(rng.uniform(1.0, 5.0, rows), 3) if case["weighted"] else None
    table.zone_map_index(case["block_rows"])
    encoded = encode_table(table, case["block_rows"])
    return table, encoded, plan, weights


def _values(result):
    return {
        group.key: {
            name: (aggregate.estimate.value, aggregate.error_bar)
            for name, aggregate in group.aggregates.items()
        }
        for group in result.groups
    }


def _same_float(a: float, b: float) -> bool:
    if math.isnan(a) or math.isnan(b):
        return math.isnan(a) and math.isnan(b)
    return a == b


def _assert_bitwise_equal(naive, encoded):
    assert naive.keys() == encoded.keys()
    for key, aggregates in naive.items():
        for name, (value, error_bar) in aggregates.items():
            other_value, other_error = encoded[key][name]
            assert _same_float(value, other_value), (key, name, value, other_value)
            assert _same_float(error_bar, other_error), (key, name, error_bar, other_error)


def _assert_close(naive, encoded, rel=1e-9):
    assert naive.keys() == encoded.keys()
    for key, aggregates in naive.items():
        for name, (value, error_bar) in aggregates.items():
            other_value, other_error = encoded[key][name]
            assert other_value == pytest.approx(value, rel=rel, abs=1e-12, nan_ok=True)
            assert other_error == pytest.approx(error_bar, rel=rel, abs=1e-9, nan_ok=True)


# -- executor equivalence -----------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(case=case_strategy)
def test_encoded_gather_path_is_bitwise_identical(case):
    """encoded storage + encoded_fold=False ≡ raw naive path, bitwise."""
    table, encoded, plan, weights = _build_case(case)
    context = ExecutionContext(weights=weights, exact=weights is None)
    naive = QueryExecutor(scan_acceleration=False, encoded_fold=False)
    accelerated = QueryExecutor(
        scan_acceleration=True, zone_block_rows=case["block_rows"], encoded_fold=False
    )
    result_naive = naive.execute(plan, table, context)
    result_encoded = accelerated.execute(plan, encoded, context)
    assert result_naive.rows_read == result_encoded.rows_read
    _assert_bitwise_equal(_values(result_naive), _values(result_encoded))


@settings(max_examples=60, deadline=None)
@given(case=case_strategy)
def test_encoded_run_fold_matches_naive(case):
    """The run-weighted fold (`encoded_fold=True`) stays within 1e-9."""
    table, encoded, plan, weights = _build_case(case)
    context = ExecutionContext(weights=weights, exact=weights is None)
    naive = QueryExecutor(scan_acceleration=False, encoded_fold=False)
    folded = QueryExecutor(
        scan_acceleration=True, zone_block_rows=case["block_rows"], encoded_fold=True
    )
    result_naive = naive.execute(plan, table, context)
    result_folded = folded.execute(plan, encoded, context)
    assert result_naive.rows_read == result_folded.rows_read
    _assert_close(_values(result_naive), _values(result_folded))


@settings(max_examples=40, deadline=None)
@given(case=case_strategy)
def test_partitioned_encoded_execution_matches_naive(case):
    """Partition views stay on the encoded path and agree with naive."""
    table, encoded, plan, weights = _build_case(case)
    context = ExecutionContext(weights=weights, exact=weights is None)
    naive = QueryExecutor(scan_acceleration=False, encoded_fold=False)
    accelerated = QueryExecutor(
        scan_acceleration=True, zone_block_rows=case["block_rows"], encoded_fold=True
    )
    kwargs = dict(num_partitions=case["partitions"], sim_workers=2)
    result_naive = PartitionPipeline(naive).run(plan, table, context, **kwargs)
    result_encoded = PartitionPipeline(accelerated).run(plan, encoded, context, **kwargs)
    stats = result_encoded.metadata["partitions"]
    assert stats.complete
    _assert_close(_values(result_naive), _values(result_encoded))


@settings(max_examples=30, deadline=None)
@given(case=case_strategy)
def test_encoded_selection_vector_equals_mask_everywhere(case):
    """Kernels over encoded blocks produce the exact raw selection vector."""
    table, encoded, plan, _ = _build_case(case)
    if plan.where is None:
        return
    kernel = compile_predicate(
        plan.where, encoded, encoded.zone_map_index(case["block_rows"])
    )
    selection = kernel.select_range(encoded, 0, encoded.num_rows)
    expected = np.flatnonzero(evaluate_predicate(plan.where, table))
    assert selection.tolist() == expected.tolist()


# -- the 22-predicate sweep of test_engine_kernels, on encoded storage --------------


@pytest.mark.parametrize("fragment", PREDICATES)
@pytest.mark.parametrize("block_rows", [7, 16, 1000])
def test_kernel_sweep_identical_on_encoded_table(_kernel_table_fixture, fragment, block_rows):
    raw = _kernel_table_fixture
    plan = LogicalPlan.of(f"SELECT COUNT(*) FROM t WHERE {fragment}")
    encoded = encode_table(raw, block_rows)
    kernel = compile_predicate(plan.where, encoded, encoded.zone_map_index(block_rows))
    selection = kernel.select_range(encoded, 0, ROWS)
    expected = np.flatnonzero(evaluate_predicate(plan.where, raw))
    assert selection.tolist() == expected.tolist()


# -- run folds ≡ expanded updates ---------------------------------------------------

runs_strategy = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=2**16),
        "runs": st.integers(min_value=1, max_value=40),
        "function": st.sampled_from(
            ["count", "sum", "avg", "variance", "stddev", "quantile"]
        ),
        "weighted": st.booleans(),
    }
)


@settings(max_examples=80, deadline=None)
@given(case=runs_strategy)
def test_update_runs_equals_expanded_update(case):
    rng = np.random.default_rng(case["seed"])
    runs = case["runs"]
    values = np.round(rng.normal(5.0, 3.0, runs), 3)
    lengths = rng.integers(1, 9, runs)
    weights = (
        np.round(rng.uniform(1.0, 4.0, runs), 3)
        if case["weighted"]
        else np.ones(runs)
    )
    folded = make_state(case["function"], 0.5)
    expanded = make_state(case["function"], 0.5)
    folded.update_runs(None if case["function"] == "count" else values, lengths, weights)
    expanded.update(
        None if case["function"] == "count" else np.repeat(values, lengths),
        np.repeat(weights, lengths),
    )
    rows = int(lengths.sum())
    got = folded.finalize(rows, float(rows))
    want = expanded.finalize(rows, float(rows))
    assert got.value == pytest.approx(want.value, rel=1e-9, abs=1e-12, nan_ok=True)
    assert got.variance == pytest.approx(want.variance, rel=1e-9, abs=1e-12, nan_ok=True)
    assert got.sample_rows == want.sample_rows


# -- encoding losslessness ----------------------------------------------------------

array_strategy = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=2**16),
        "rows": st.integers(min_value=1, max_value=300),
        "block_rows": st.integers(min_value=1, max_value=64),
        "layout": st.sampled_from(["runs", "narrow", "wide", "floats", "nans"]),
    }
)


def _random_array(case) -> np.ndarray:
    rng = np.random.default_rng(case["seed"])
    rows = case["rows"]
    if case["layout"] == "runs":
        return np.repeat(rng.integers(0, 5, (rows + 7) // 8), 8)[:rows].astype(np.int64)
    if case["layout"] == "narrow":
        return rng.integers(1_000_000, 1_000_200, rows)
    if case["layout"] == "wide":
        return rng.integers(-(2**60), 2**60, rows)
    if case["layout"] == "floats":
        return np.round(rng.normal(0.0, 100.0, rows), 6)
    data = np.round(rng.normal(0.0, 100.0, rows), 6)
    data[rng.random(rows) < 0.3] = np.nan
    return data


@settings(max_examples=80, deadline=None)
@given(case=array_strategy)
def test_encode_roundtrip_is_bitwise_lossless(case):
    data = _random_array(case)
    encoding = encode_array(data, case["block_rows"])
    decoded = encoding.decode()
    np.testing.assert_array_equal(decoded, data)
    assert decoded.dtype == data.dtype
    # Range decodes and unordered gathers agree with plain slicing/indexing.
    rng = np.random.default_rng(case["seed"] + 1)
    rows = data.shape[0]
    start, stop = sorted(rng.integers(0, rows + 1, 2).tolist())
    np.testing.assert_array_equal(encoding.decode_range(start, stop), data[start:stop])
    idx = rng.integers(0, rows, min(rows, 17))
    np.testing.assert_array_equal(encoding.gather(idx), data[idx])
    assert encoding.raw_bytes == data.nbytes


# -- metadata carry-forward (mirrors the PR 5 zone-map carry-forward tests) ---------


def _make_encoded_column(rows: int = 96, block_rows: int = 16) -> EncodedColumn:
    data = np.repeat(np.arange(rows // 8), 8).astype(np.int64)
    column = encode_column(Column.from_values("v", data.tolist()), block_rows)
    assert isinstance(column, EncodedColumn)
    return column


class TestEncodingCarryForward:
    """Row-preserving copies keep the encoding; reordering copies decode."""

    def test_slice_rows_shares_the_parent_encoding(self):
        column = _make_encoded_column()
        view = column.slice_rows(10, 60)
        assert isinstance(view, EncodedColumn)
        assert view.encoding is column.encoding  # shared, not re-encoded
        assert view.offset == 10
        np.testing.assert_array_equal(view.data, column.data[10:60])
        # Nested slices compose offsets against the same encoding.
        nested = view.slice_rows(5, 25)
        assert nested.encoding is column.encoding
        np.testing.assert_array_equal(nested.data, column.data[15:35])

    def test_table_partition_views_stay_encoded(self):
        table = Table.from_dict("t", {"v": np.repeat(np.arange(12), 8).tolist()})
        table.zone_map_index(16)
        encoded = encode_table(table, 16)
        view = encoded.slice_rows(20, 70)
        assert isinstance(view.column("v"), EncodedColumn)
        np.testing.assert_array_equal(view.column("v").data, table.column("v").data[20:70])

    def test_take_and_filter_decode_but_keep_dictionary(self):
        labels = ["AIR", "SHIP", "RAIL"]
        column = encode_column(
            Column.from_codes(
                "m", np.repeat(np.arange(3), 32), np.array(labels, dtype=object)
            ),
            16,
        )
        taken = column.take(np.array([95, 0, 40]))
        assert not isinstance(taken, EncodedColumn)  # reordering drops encoding
        assert taken.dictionary is column.dictionary
        assert taken.values().tolist() == ["RAIL", "AIR", "SHIP"]
        mask = np.zeros(96, dtype=bool)
        mask[[3, 64]] = True
        filtered = column.filter(mask)
        assert filtered.values().tolist() == ["AIR", "RAIL"]

    def test_encode_table_carries_zone_index_without_rebuild(self):
        table = Table.from_dict("t", {"v": list(range(100))})
        index = table.zone_map_index(16)
        encoded = encode_table(table, 16)
        assert encoded.has_zone_map_index(16)
        assert encoded.zone_map_index(16) is index  # carried, not rebuilt


class TestIncrementalAppend:
    def test_append_reuses_complete_blocks_by_identity(self):
        column = _make_encoded_column(rows=100, block_rows=16)  # 6 complete + ragged 4
        before = column.encoding.blocks
        appended = column.append_values(list(range(40)))
        assert isinstance(appended, EncodedColumn)
        after = appended.encoding.blocks
        # The 6 complete blocks survive untouched; only the ragged tail re-encodes.
        assert after[:6] == before[:6]
        assert all(a is b for a, b in zip(after[:6], before[:6]))
        np.testing.assert_array_equal(
            appended.data, np.concatenate([column.data, np.arange(40)])
        )

    def test_appended_table_keeps_compression_stats(self):
        table = Table.from_dict("t", {"v": np.repeat(np.arange(8), 32).tolist()})
        table.zone_map_index(32)
        encoded = encode_table(table, 32)
        grown = encoded.append_batch({"v": [7] * 64})
        stats = table_encoding_stats(grown)
        assert stats is not None
        assert stats["raw_bytes"] == grown.column("v").data.nbytes
        assert stats["encoded_bytes"] < stats["raw_bytes"]
