"""Tests for the sample builder and the maintenance module."""

import pytest

from repro.common.config import ClusterConfig, SamplingConfig
from repro.common.errors import CatalogError
from repro.cluster.simulator import ClusterSimulator
from repro.sampling.builder import SampleBuilder
from repro.sampling.maintenance import ActionKind, SampleMaintenance
from repro.sql.templates import QueryTemplate
from repro.storage.catalog import Catalog
from repro.storage.statistics import compute_statistics
from repro.workloads.conviva import generate_sessions_table


@pytest.fixture()
def table():
    return generate_sessions_table(num_rows=8_000, seed=3, num_cities=50, num_customers=60)


@pytest.fixture()
def config():
    return SamplingConfig(largest_cap=80, min_cap=10, uniform_sample_fraction=0.1)


@pytest.fixture()
def builder(table, config):
    catalog = Catalog()
    simulator = ClusterSimulator(ClusterConfig(num_nodes=5))
    return SampleBuilder(catalog, config, simulator=simulator, scale_factor=100.0)


class TestSampleBuilder:
    def test_register_base_table(self, builder, table):
        builder.register_base_table(table)
        assert builder.catalog.has_table(table.name)
        assert builder.simulator.has_dataset(table.name)
        assert builder.simulator.dataset(table.name).num_rows == table.num_rows * 100

    def test_build_uniform_family(self, builder, table):
        family = builder.build_uniform_family(table)
        assert builder.catalog.uniform_family(table.name) is family
        for resolution in family.resolutions:
            assert builder.simulator.has_dataset(resolution.name)

    def test_build_stratified_family(self, builder, table):
        family = builder.build_stratified_family(table, ["city", "os"])
        assert builder.catalog.stratified_family(table.name, ["os", "city"]) is family
        assert family.key == ("city", "os")

    def test_drop_stratified_family(self, builder, table):
        family = builder.build_stratified_family(table, ["city"])
        builder.drop_stratified_family(table.name, ["city"])
        assert builder.catalog.stratified_family(table.name, ["city"]) is None
        for resolution in family.resolutions:
            assert not builder.simulator.has_dataset(resolution.name)

    def test_drop_unknown_family(self, builder, table):
        builder.register_base_table(table)
        with pytest.raises(CatalogError):
            builder.drop_stratified_family(table.name, ["city"])

    def test_build_from_column_sets_report(self, builder, table):
        report = builder.build_from_column_sets(table, [("city",), ("country", "dt")])
        assert report.uniform_storage_bytes > 0
        assert set(report.stratified) == {("city",), ("country", "dt")}
        assert report.total_storage_bytes == (
            report.uniform_storage_bytes + report.stratified_storage_bytes
        )

    def test_layout_for_family(self, builder, table):
        family = builder.build_stratified_family(table, ["city"])
        layout = builder.layout_for(family)
        assert layout.storage_bytes > 0

    def test_builder_without_simulator(self, table, config):
        builder = SampleBuilder(Catalog(), config)
        family = builder.build_uniform_family(table)
        assert family.largest.num_rows > 0


class TestMaintenance:
    def _manager(self, builder, config):
        return SampleMaintenance(builder.catalog, builder, config)

    def test_data_drift_detection(self, builder, table, config):
        manager = self._manager(builder, config)
        stats = compute_statistics(table)
        assert manager.detect_data_drift(stats, stats) is False
        shifted = generate_sessions_table(num_rows=8_000, seed=99, num_cities=8, num_customers=60)
        assert manager.detect_data_drift(stats, compute_statistics(shifted)) is True

    def test_data_drift_accepts_incrementally_merged_snapshots(self, builder, table, config):
        """The merged-snapshot path (streaming ingest) must not mis-trigger.

        Incremental merges carry bound-style distinct counts / top
        frequencies (``estimated=True``); appending same-shaped data and
        comparing the merged snapshot against the anchor must stay quiet,
        while genuinely different-shaped appends must still trip the
        detector.
        """
        from repro.storage.statistics import extend_statistics

        manager = self._manager(builder, config)
        # Saturated tail cardinalities: the anchor table covers every label,
        # so same-distribution batches genuinely add no new distinct values.
        shape = dict(
            num_cities=30, num_customers=40, num_objects=50, num_dmas=15,
            num_countries=10, num_asns=25, num_urls=40,
        )
        anchor_table = generate_sessions_table(num_rows=8_000, seed=3, **shape)
        anchor = compute_statistics(anchor_table)

        # Same-shaped growth: merge several same-distribution batches in.
        grown = anchor_table
        merged = anchor
        for seed in (11, 12, 13):
            batch_table = generate_sessions_table(num_rows=1_000, seed=seed, **shape)
            batch = {n: list(batch_table.column(n).values()) for n in batch_table.column_names}
            start = grown.num_rows
            grown = grown.append_batch(batch)
            merged = extend_statistics(merged, grown, start)
        assert merged.estimated  # this really is the merged-snapshot path
        assert manager.detect_data_drift(anchor, merged) is False

        # Different-shaped growth: a burst of previously unseen cities (the
        # classic ingest drift — new keys flooding a stratification column).
        # String distinct counts stay exact through the merge (dictionary
        # length), so the detector must trip even on the estimated snapshot.
        skew_table = generate_sessions_table(num_rows=8_000, seed=77, **shape)
        skew = {n: list(skew_table.column(n).values()) for n in skew_table.column_names}
        skew["city"] = [f"burst_city_{i % 50:04d}" for i in range(8_000)]
        start = grown.num_rows
        drifted = grown.append_batch(skew)
        merged_drifted = extend_statistics(merged, drifted, start)
        assert manager.detect_data_drift(anchor, merged_drifted) is True

    def test_workload_drift_detection(self, builder, config):
        manager = self._manager(builder, config)
        before = [QueryTemplate("sessions", ("city",), 0.7), QueryTemplate("sessions", ("os",), 0.3)]
        same = [QueryTemplate("sessions", ("city",), 0.68), QueryTemplate("sessions", ("os",), 0.32)]
        different = [QueryTemplate("sessions", ("dt",), 0.9), QueryTemplate("sessions", ("os",), 0.1)]
        assert manager.detect_workload_drift(before, same) is False
        assert manager.detect_workload_drift(before, different) is True

    def test_replan_produces_create_keep_drop_actions(self, builder, table, config):
        builder.build_from_column_sets(table, [("asn",)])
        manager = self._manager(builder, config)
        templates = [
            QueryTemplate("sessions", ("city", "os"), 0.8),
            QueryTemplate("sessions", ("country",), 0.2),
        ]
        plan, actions = manager.replan(table, templates, churn_fraction=1.0)
        kinds = {action.kind for action in actions}
        assert ActionKind.CREATE in kinds or ActionKind.KEEP in kinds
        planned_columns = {f.columns for f in plan.families}
        created = {a.columns for a in actions if a.kind is ActionKind.CREATE}
        assert created <= planned_columns

    def test_zero_churn_keeps_existing_families(self, builder, table, config):
        builder.build_from_column_sets(table, [("asn",)])
        manager = self._manager(builder, config)
        templates = [QueryTemplate("sessions", ("city", "os"), 1.0)]
        plan, actions = manager.replan(table, templates, churn_fraction=0.0)
        dropped = [a for a in actions if a.kind is ActionKind.DROP]
        created = [a for a in actions if a.kind is ActionKind.CREATE]
        assert not dropped
        assert not created
        assert ("asn",) in {f.columns for f in plan.families}

    def test_apply_actions_updates_catalog(self, builder, table, config):
        builder.build_from_column_sets(table, [("asn",)])
        manager = self._manager(builder, config)
        templates = [QueryTemplate("sessions", ("city", "os"), 1.0)]
        _, actions = manager.replan(table, templates, churn_fraction=1.0)
        manager.apply_actions(table, actions)
        families = builder.catalog.stratified_families(table.name)
        created = {a.columns for a in actions if a.kind is ActionKind.CREATE}
        assert created <= set(families)

    def test_refresh_families_rebuilds(self, builder, table, config):
        builder.build_from_column_sets(table, [("city",)])
        manager = self._manager(builder, config)
        assert manager.refresh_families(table) == 1
        assert builder.catalog.stratified_family(table.name, ["city"]) is not None
