"""Shared fixtures for the test suite.

Data-generation and sample-building fixtures are session-scoped: they are
deterministic (seeded) and read-only for the tests that use them, so sharing
them keeps the suite fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.config import BlinkDBConfig, ClusterConfig, SamplingConfig
from repro.core.blinkdb import BlinkDB
from repro.storage.table import Table
from repro.workloads.conviva import conviva_query_templates, generate_sessions_table
from repro.workloads.tpch import generate_lineitem_table, generate_orders_table


@pytest.fixture(scope="session")
def sessions_table() -> Table:
    """A small, skewed Conviva-like sessions table.

    Dimension cardinalities are reduced relative to the generator defaults so
    that strata are large compared to the stratification cap — the regime the
    paper's 17 TB / K=100,000 configuration operates in.
    """
    return generate_sessions_table(
        num_rows=20_000,
        seed=7,
        num_cities=40,
        num_countries=15,
        num_customers=100,
        num_dmas=20,
        num_asns=50,
    )


@pytest.fixture(scope="session")
def lineitem_table() -> Table:
    """A small TPC-H-like lineitem table."""
    return generate_lineitem_table(num_rows=20_000, seed=13)


@pytest.fixture(scope="session")
def orders_table() -> Table:
    return generate_orders_table(num_orders=6_000, seed=17)


@pytest.fixture(scope="session")
def tiny_table() -> Table:
    """The paper's Sessions example table (Table 3)."""
    return Table.from_dict(
        "tiny_sessions",
        {
            "url": ["cnn.com", "yahoo.com", "google.com", "google.com", "bing.com"],
            "city": ["New York", "New York", "Berkeley", "New York", "Cambridge"],
            "browser": ["Firefox", "Firefox", "Firefox", "Safari", "IE"],
            "session_time": [15, 20, 85, 82, 22],
        },
    )


@pytest.fixture(scope="session")
def sampling_config() -> SamplingConfig:
    return SamplingConfig(largest_cap=100, min_cap=10, uniform_sample_fraction=0.1)


@pytest.fixture(scope="session")
def small_cluster() -> ClusterConfig:
    return ClusterConfig(num_nodes=10)


@pytest.fixture(scope="session")
def blinkdb_conviva(sessions_table) -> BlinkDB:
    """A BlinkDB instance with samples built over the sessions table."""
    config = BlinkDBConfig(
        sampling=SamplingConfig(largest_cap=80, min_cap=10, uniform_sample_fraction=0.1),
        cluster=ClusterConfig(num_nodes=20),
    )
    db = BlinkDB(config)
    db.load_table(sessions_table, simulated_rows=20_000_000)
    db.register_workload(templates=conviva_query_templates())
    db.build_samples(storage_budget_fraction=0.5)
    return db


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
