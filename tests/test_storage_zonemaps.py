"""Tests for block-level zone maps (storage layer)."""

import numpy as np
import pytest

from repro.storage.statistics import compute_statistics
from repro.storage.table import Table
from repro.storage.zonemaps import (
    ColumnZone,
    ZoneDecision,
    build_zone_map_index,
)


@pytest.fixture()
def table() -> Table:
    return Table.from_dict(
        "t",
        {
            "a": list(range(100)),  # sorted: tight disjoint block ranges
            "x": [float(i % 10) for i in range(100)],
            "g": [f"g{i // 25}" for i in range(100)],  # g0..g3, clustered
        },
    )


class TestZoneMapIndex:
    def test_block_layout(self, table):
        index = build_zone_map_index(table, block_rows=30)
        assert index.num_blocks == 4
        assert [(b.row_start, b.row_end) for b in index.blocks] == [
            (0, 30),
            (30, 60),
            (60, 90),
            (90, 100),
        ]

    def test_min_max_per_block(self, table):
        index = build_zone_map_index(table, block_rows=30)
        zone = index.blocks[1].zones["a"]
        assert (zone.minimum, zone.maximum) == (30, 59)
        # String zones are in dictionary-code space; the dictionary is
        # sorted, so clustered string blocks get tight code ranges.  Rows
        # [0, 30) hold "g0" and "g1" -> codes [0, 1].
        g_zone = index.blocks[0].zones["g"]
        assert (g_zone.minimum, g_zone.maximum) == (0, 1)

    def test_aggregated_column_zones(self, table):
        index = build_zone_map_index(table, block_rows=30)
        zone = index.column_zones["a"]
        assert (zone.minimum, zone.maximum) == (0, 99)

    def test_overlapping_is_index_arithmetic(self, table):
        index = build_zone_map_index(table, block_rows=30)
        hits = index.overlapping(35, 65)
        assert [b.index for b in hits] == [1, 2]
        assert index.overlapping(0, 0) == ()
        assert [b.index for b in index.overlapping(99, 100)] == [3]

    def test_distinct_estimate_is_range_bound_for_integers(self, table):
        index = build_zone_map_index(table, block_rows=30)
        assert index.blocks[0].zones["a"].distinct_estimate == 30

    def test_nan_blocks_report_nan_bounds_and_null_counts(self):
        t = Table.from_dict("t", {"x": [1.0, float("nan"), 3.0, 4.0]})
        index = build_zone_map_index(t, block_rows=2)
        assert np.isnan(index.blocks[0].zones["x"].minimum)
        assert index.blocks[0].zones["x"].null_count == 1
        assert index.blocks[1].zones["x"].null_count == 0
        assert index.blocks[1].zones["x"].minimum == 3.0

    def test_empty_table_has_no_blocks(self):
        t = Table.from_dict("t", {"x": []})
        index = build_zone_map_index(t, block_rows=8)
        assert index.num_blocks == 0

    def test_table_cache_returns_same_object(self, table):
        first = table.zone_map_index(30)
        second = table.zone_map_index(30)
        assert first is second
        assert table.has_zone_map_index(30)
        assert not table.has_zone_map_index(7)


class TestBlockSetZones:
    def test_with_zones_annotates_blocks(self, table):
        blocks = table.block_set(num_partitions=4, zone_maps=True)
        assert all(b.zones is not None for b in blocks)
        first = blocks[0]
        assert first.zones["a"].minimum == 0
        assert first.zones["a"].maximum == first.row_end - 1

    def test_partition_exposes_zones(self, table):
        blocks = table.block_set(num_partitions=4, zone_maps=True)
        partitions = table.partitions(block_set=blocks)
        assert partitions[0].zones is not None
        assert partitions[0].zones["a"].minimum == 0

    def test_zones_excluded_from_block_equality(self, table):
        bare = table.block_set(num_partitions=4)
        annotated = table.block_set(num_partitions=4, zone_maps=True)
        assert list(bare) == list(annotated)


class TestStatisticsIntegration:
    def test_compute_statistics_attaches_zone_index(self, table):
        stats = compute_statistics(table, with_zone_maps=True, zone_block_rows=30)
        assert stats.zone_index is not None
        assert stats.zone_index.num_blocks == 4
        # Shares the table-level cache.
        assert stats.zone_index is table.zone_map_index(30)

    def test_compute_statistics_without_zone_maps(self, table):
        assert compute_statistics(table).zone_index is None

    def test_null_count_counts_nans(self):
        t = Table.from_dict("t", {"x": [1.0, float("nan"), float("nan")]})
        stats = compute_statistics(t)
        assert stats.column("x").null_count == 2


class TestZoneDecision:
    def test_invert(self):
        assert ZoneDecision.SKIP.invert() is ZoneDecision.TAKE_ALL
        assert ZoneDecision.TAKE_ALL.invert() is ZoneDecision.SKIP
        assert ZoneDecision.EVALUATE.invert() is ZoneDecision.EVALUATE

    def test_zone_merge(self):
        merged = ColumnZone(0, 5, 1, 6).merge(ColumnZone(3, 9, 2, 7))
        assert (merged.minimum, merged.maximum) == (0, 9)
        assert merged.null_count == 3
