"""Tests for skip-aware planning: the statistics estimator, scan estimates,
and the guarantee that planning never evaluates predicates over base data."""

import pytest

from repro.common.config import BlinkDBConfig, ClusterConfig, SamplingConfig
from repro.core.blinkdb import BlinkDB
from repro.engine.expressions import measure_selectivity
from repro.planner import estimate_selectivity
from repro.planner.physical import ScanEstimate
from repro.sql.parser import parse_query
from repro.storage.statistics import compute_statistics
from repro.storage.table import Table
from repro.workloads.conviva import conviva_query_templates, generate_sessions_table


@pytest.fixture(scope="module")
def scan_db():
    table = generate_sessions_table(num_rows=20_000, seed=11, num_cities=20)
    config = BlinkDBConfig(
        sampling=SamplingConfig(largest_cap=300, min_cap=25, uniform_sample_fraction=0.08),
        cluster=ClusterConfig(num_nodes=10),
        zone_block_rows=256,
    )
    db = BlinkDB(config)
    db.load_table(table, simulated_rows=1_000_000_000)
    db.register_workload(templates=conviva_query_templates())
    db.build_samples(storage_budget_fraction=0.5)
    return db


@pytest.fixture()
def stats_table() -> Table:
    return Table.from_dict(
        "t",
        {
            "a": list(range(1000)),
            "g": [f"g{i % 10}" for i in range(1000)],
        },
    )


def where(fragment: str):
    return parse_query(f"SELECT COUNT(*) FROM t WHERE {fragment}").where


class TestEstimateSelectivity:
    def test_equality_uses_distinct_count(self, stats_table):
        stats = compute_statistics(stats_table)
        assert estimate_selectivity(where("g = 'g3'"), stats) == pytest.approx(0.1)

    def test_range_uses_interval_fraction(self, stats_table):
        stats = compute_statistics(stats_table)
        assert estimate_selectivity(where("a < 250"), stats) == pytest.approx(0.25, abs=0.01)
        assert estimate_selectivity(where("a BETWEEN 100 AND 300"), stats) == pytest.approx(
            0.2, abs=0.01
        )

    def test_out_of_range_equality_is_zero(self, stats_table):
        stats = compute_statistics(stats_table)
        assert estimate_selectivity(where("a = 5000"), stats) == 0.0

    def test_compound_independence(self, stats_table):
        stats = compute_statistics(stats_table)
        single = estimate_selectivity(where("a < 500"), stats)
        conj = estimate_selectivity(where("a < 500 AND g = 'g3'"), stats)
        assert conj == pytest.approx(single * 0.1)
        disj = estimate_selectivity(where("a < 500 OR g = 'g3'"), stats)
        assert disj == pytest.approx(1 - (1 - single) * 0.9)

    def test_not_complements(self, stats_table):
        stats = compute_statistics(stats_table)
        sel = estimate_selectivity(where("a < 250"), stats)
        assert estimate_selectivity(where("NOT a < 250"), stats) == pytest.approx(1 - sel)

    def test_none_statistics_fall_back_to_priors(self, stats_table):
        assert 0.0 <= estimate_selectivity(where("a < 250"), None) <= 1.0

    def test_accepts_zone_index(self, stats_table):
        index = stats_table.zone_map_index(128)
        assert 0.0 < estimate_selectivity(where("a < 250"), index) < 0.5

    def test_tracks_measured_selectivity_on_uniform_data(self, stats_table):
        stats = compute_statistics(stats_table)
        for fragment in ["a < 250", "a BETWEEN 100 AND 300", "g = 'g3'"]:
            estimated = estimate_selectivity(where(fragment), stats)
            measured = measure_selectivity(where(fragment), stats_table)
            assert estimated == pytest.approx(measured, abs=0.05)

    def test_no_bound_predicate_is_one(self, stats_table):
        stats = compute_statistics(stats_table)
        assert estimate_selectivity(None, stats) == 1.0


class TestScanEstimateOnPlans:
    def test_plan_carries_scan_estimate(self, scan_db):
        plan = scan_db.runtime.explain(
            "SELECT COUNT(*) FROM sessions WHERE city = 'city_03'"
        )
        estimate = plan.scan_estimate
        assert isinstance(estimate, ScanEstimate)
        assert estimate.blocks_total > 0
        assert 0.0 <= estimate.skip_fraction <= 1.0
        assert estimate.estimated_selectivity is not None

    def test_stratified_sample_blocks_are_skippable(self, scan_db):
        # Stratified samples are stored sorted by city, so an equality on a
        # single city must make most blocks provably non-matching.
        plan = scan_db.runtime.explain(
            "SELECT COUNT(*) FROM sessions WHERE city = 'city_03'"
        )
        if plan.scan_estimate.blocks_total >= 4:
            assert plan.scan_estimate.blocks_skipped > 0

    def test_explain_text_shows_scan_estimate(self, scan_db):
        text = scan_db.runtime.explain(
            "SELECT COUNT(*) FROM sessions WHERE city = 'city_03'"
        ).render()
        assert "scan-estimate:" in text
        assert "zone-blocks=" in text

    def test_no_where_no_estimate(self, scan_db):
        plan = scan_db.runtime.explain("SELECT COUNT(*) FROM sessions")
        assert plan.scan_estimate is None

    def test_disabled_acceleration_suppresses_estimate(self):
        table = generate_sessions_table(num_rows=5_000, seed=3, num_cities=10)
        config = BlinkDBConfig(
            sampling=SamplingConfig(
                largest_cap=200, min_cap=25, uniform_sample_fraction=0.08
            ),
            cluster=ClusterConfig(num_nodes=4),
            scan_acceleration=False,
        )
        db = BlinkDB(config)
        db.load_table(table)
        db.register_workload(templates=conviva_query_templates())
        db.build_samples(storage_budget_fraction=0.5)
        plan = db.runtime.explain("SELECT COUNT(*) FROM sessions WHERE city = 'city_03'")
        assert plan.scan_estimate is None


class TestPlanningNeverScansBaseTable:
    def test_planning_does_not_access_base_table_columns(self, scan_db):
        """Acceptance: costing a plan must not evaluate predicates over the
        base table — its column data must not be touched at all."""
        base = scan_db.catalog.table("sessions")
        accessed: list[str] = []
        original = base.column

        def instrumented(name):
            accessed.append(name)
            return original(name)

        base.column = instrumented  # instance attribute shadows the method
        try:
            runtime = scan_db.runtime
            for sql in [
                "SELECT COUNT(*) FROM sessions WHERE city = 'city_03'",
                "SELECT AVG(session_time) FROM sessions WHERE city = 'city_03' "
                "AND country = 'country_04' ERROR WITHIN 10% AT CONFIDENCE 95%",
                "SELECT SUM(session_time) FROM sessions WHERE city = 'city_01' "
                "OR dma = 3",
                "SELECT COUNT(*) FROM sessions WHERE session_time > 1000 WITHIN 0.5 SECONDS",
            ]:
                runtime.explain(sql)
        finally:
            del base.column
        assert accessed == []

    def test_measure_selectivity_remains_exact(self, scan_db):
        base = scan_db.catalog.table("sessions")
        predicate = where("session_time >= 0")
        assert measure_selectivity(predicate, base) == 1.0


class TestRuntimeScanCounters:
    def test_stats_expose_scan_counters(self, scan_db):
        runtime = scan_db.runtime
        before = runtime.stats
        assert {"blocks_total", "blocks_skipped", "bytes_scanned"} <= before.keys()
        scan_db.query("SELECT COUNT(*) FROM sessions WHERE city = 'city_03'")
        after = runtime.stats
        assert after["blocks_total"] > before["blocks_total"]
        assert after["bytes_scanned"] >= before["bytes_scanned"]

    def test_service_mirrors_scan_gauges(self, scan_db):
        service = scan_db.serve(num_workers=1)
        try:
            client = service.connect()
            client.execute("SELECT COUNT(*) FROM sessions WHERE city = 'city_05'")
            description = service.describe()
            scan = description["metrics"]["scan"]
            assert scan["blocks_total"] > 0
            assert scan["bytes_scanned"] >= 0
        finally:
            service.close()
