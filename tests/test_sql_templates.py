"""Tests for query-template extraction (paper §3.2.1 workload model)."""

import pytest

from repro.sql.parser import parse_query
from repro.sql.templates import (
    QueryTemplate,
    extract_template,
    normalize_weights,
    templates_from_trace,
)


class TestExtractTemplate:
    def test_columns_are_where_union_group_by(self):
        template = extract_template(
            "SELECT COUNT(*) FROM sessions WHERE city = 'NY' AND genre = 'western' GROUP BY os"
        )
        assert template.table == "sessions"
        assert template.columns == ("city", "genre", "os")

    def test_constants_are_stripped(self):
        a = extract_template("SELECT COUNT(*) FROM t WHERE city = 'NY'")
        b = extract_template("SELECT COUNT(*) FROM t WHERE city = 'SF'")
        assert a.columns == b.columns

    def test_accepts_parsed_query(self):
        query = parse_query("SELECT AVG(x) FROM t WHERE a = 1")
        assert extract_template(query).columns == ("a",)

    def test_covers(self):
        template = QueryTemplate("t", ("a", "b", "c"))
        assert template.covers(["a", "b"])
        assert not template.covers(["a", "z"])

    def test_label(self):
        assert QueryTemplate("t", ("a", "b")).label() == "t[a,b]"

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            QueryTemplate("t", ("a",), weight=-1.0)


class TestTemplatesFromTrace:
    def test_weights_are_relative_frequencies(self):
        trace = [
            "SELECT COUNT(*) FROM t WHERE a = 1",
            "SELECT COUNT(*) FROM t WHERE a = 2",
            "SELECT COUNT(*) FROM t WHERE b = 1",
            "SELECT SUM(x) FROM t WHERE a = 9",
        ]
        templates = templates_from_trace(trace)
        by_columns = {t.columns: t.weight for t in templates}
        assert by_columns[("a",)] == pytest.approx(0.75)
        assert by_columns[("b",)] == pytest.approx(0.25)

    def test_table_filter(self):
        trace = [
            "SELECT COUNT(*) FROM t WHERE a = 1",
            "SELECT COUNT(*) FROM other WHERE b = 1",
        ]
        templates = templates_from_trace(trace, table="t")
        assert len(templates) == 1
        assert templates[0].table == "t"

    def test_empty_trace(self):
        assert templates_from_trace([]) == []

    def test_sorted_by_frequency(self):
        trace = ["SELECT COUNT(*) FROM t WHERE b = 1"] + [
            "SELECT COUNT(*) FROM t WHERE a = 1"
        ] * 3
        templates = templates_from_trace(trace)
        assert templates[0].columns == ("a",)


class TestNormalizeWeights:
    def test_weights_sum_to_one(self):
        templates = [QueryTemplate("t", ("a",), 3.0), QueryTemplate("t", ("b",), 1.0)]
        normalized = normalize_weights(templates)
        assert sum(t.weight for t in normalized) == pytest.approx(1.0)
        assert normalized[0].weight == pytest.approx(0.75)

    def test_zero_total_is_noop(self):
        templates = [QueryTemplate("t", ("a",), 0.0)]
        assert normalize_weights(templates)[0].weight == 0.0

    def test_empty_list(self):
        assert normalize_weights([]) == []
