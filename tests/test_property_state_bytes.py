"""Property-based tests for the partial-state wire format.

The process backend ships only serialized partial-aggregation states across
the IPC boundary, so the wire format must be *bit-exact*: a state that
crosses the boundary and merges on the other side has to behave identically
to one that never left the process — same estimates, same error bars, down
to the last bit.  Three invariant families, hypothesis-driven:

* **Round-trip identity** — ``from_bytes(to_bytes(state))`` finalizes to
  bit-identical estimates for every aggregate kind, over unweighted,
  weighted, exact, and anytime (``weight_scale != 1``) finalize paths.
* **Merge transparency** — merging round-tripped states is bit-identical
  to merging the originals, in any order.
* **Canonical encoding** — re-serializing a decoded state (or a whole
  :class:`PartialAggregation` produced by the executor) reproduces the
  original byte string exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.common.rng import make_rng
from repro.engine.accumulators import (
    QUANTILE_SKETCH_SIZE,
    PartialAggregation,
    make_state,
    state_from_bytes,
    state_to_bytes,
)
from repro.engine.executor import QueryExecutor
from repro.sql.parser import parse_query
from repro.storage.table import Table

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
positive_weights = st.floats(
    min_value=1.0, max_value=1e3, allow_nan=False, allow_infinity=False
)

AGGREGATES = ["count", "sum", "avg", "variance", "stddev", "quantile"]


def chunked_data(min_chunks=1, max_chunks=4):
    """(chunk list) strategy: a few (values, weights) vectors to feed a state."""

    def one_chunk(n):
        return st.tuples(
            arrays(np.float64, n, elements=finite_floats),
            arrays(np.float64, n, elements=positive_weights),
        )

    return st.lists(
        st.integers(min_value=0, max_value=30).flatmap(one_chunk),
        min_size=min_chunks,
        max_size=max_chunks,
    )


def _build(name, chunks):
    state = make_state(name, 0.5)
    for values, weights in chunks:
        state.update(values, weights)
    return state


def _bits(x: float) -> bytes:
    """The exact bit pattern of a float (NaN-safe equality)."""
    return np.float64(x).tobytes()


def _assert_estimates_bitwise(a, b, context=()):
    assert _bits(a.value) == _bits(b.value), (*context, "value", a.value, b.value)
    assert _bits(a.variance) == _bits(b.variance), (
        *context,
        "variance",
        a.variance,
        b.variance,
    )
    assert a.exact == b.exact, context


FINALIZE_PATHS = [
    # (label, population_read, exact, weight_scale) — the unweighted,
    # weighted-population, exact, and anytime (coverage-scaled) paths.
    ("plain", None, False, 1.0),
    ("population", 5_000.0, False, 1.0),
    ("exact", None, True, 1.0),
    ("anytime", None, False, 2.5),
]


class TestStateRoundTrip:
    @pytest.mark.parametrize("name", AGGREGATES)
    @given(chunks=chunked_data())
    @settings(max_examples=40, deadline=None)
    def test_round_trip_finalizes_bitwise_identical(self, name, chunks):
        state = _build(name, chunks)
        clone = state_from_bytes(state_to_bytes(state))
        assert type(clone) is type(state)
        rows_read = sum(len(v) for v, _ in chunks) * 2 + 1
        for label, population, exact, scale in FINALIZE_PATHS:
            # Finalize consumes no state, so one clone covers every path.
            _assert_estimates_bitwise(
                state.finalize(rows_read, population, exact=exact, weight_scale=scale),
                clone.finalize(rows_read, population, exact=exact, weight_scale=scale),
                context=(name, label),
            )

    @pytest.mark.parametrize("name", AGGREGATES)
    @given(chunks=chunked_data(min_chunks=2, max_chunks=4))
    @settings(max_examples=40, deadline=None)
    def test_round_tripped_states_merge_bitwise_identical(self, name, chunks):
        direct = _build(name, [chunks[0]])
        shipped = state_from_bytes(state_to_bytes(_build(name, [chunks[0]])))
        for chunk in chunks[1:]:
            direct.merge(_build(name, [chunk]))
            shipped.merge(state_from_bytes(state_to_bytes(_build(name, [chunk]))))
        rows_read = sum(len(v) for v, _ in chunks) * 2 + 1
        for label, population, exact, scale in FINALIZE_PATHS:
            _assert_estimates_bitwise(
                direct.finalize(rows_read, population, exact=exact, weight_scale=scale),
                shipped.finalize(rows_read, population, exact=exact, weight_scale=scale),
                context=(name, label),
            )

    @pytest.mark.parametrize("name", AGGREGATES)
    @given(chunks=chunked_data())
    @settings(max_examples=40, deadline=None)
    def test_encoding_is_canonical(self, name, chunks):
        blob = state_to_bytes(_build(name, chunks))
        assert state_to_bytes(state_from_bytes(blob)) == blob


WIRE_SQL = (
    "SELECT COUNT(*), SUM(x), AVG(x), VARIANCE(x), STDDEV(x), QUANTILE(x, 0.8) "
    "FROM t WHERE f < 6 GROUP BY g"
)


def _random_table(seed, rows=2_000):
    rng = make_rng(seed)
    table = Table.from_dict(
        "t",
        {
            "g": [f"g{i}" for i in rng.integers(0, 5, rows)],
            "x": rng.lognormal(2.0, 0.8, rows).tolist(),
            "f": rng.integers(0, 10, rows).tolist(),
        },
    )
    weights = np.where(rng.random(rows) < 0.3, 1.0, rng.uniform(2.0, 40.0, rows))
    return table, weights


class TestPartialAggregationWire:
    """The exact objects the process backend ships: executor-produced partials."""

    @pytest.mark.parametrize("seed", [3, 17, 59])
    def test_shipped_partials_finalize_bitwise_identical(self, seed):
        table, weights = _random_table(seed)
        executor = QueryExecutor()
        query = parse_query(WIRE_SQL)
        partitions = table.partitions(weights=weights, num_partitions=5)

        def finalize(merged):
            return executor.finalize(
                query,
                merged,
                None,
                rows_read=table.num_rows,
                population_read=float(np.sum(weights)),
            )

        partials = [
            executor.partial_aggregate_partition(query, p) for p in partitions
        ]
        shipped = [PartialAggregation.from_bytes(p.to_bytes()) for p in partials]
        direct = partials[0]
        via_wire = shipped[0]
        for p, s in zip(partials[1:], shipped[1:]):
            direct = direct.merge(p)
            via_wire = via_wire.merge(s)
        for g_direct, g_wire in zip(finalize(direct), finalize(via_wire)):
            assert g_direct.key == g_wire.key
            for fn in g_direct.aggregates:
                a, b = g_direct[fn], g_wire[fn]
                assert _bits(a.value) == _bits(b.value), (seed, fn)
                assert _bits(a.interval.half_width) == _bits(
                    b.interval.half_width
                ), (seed, fn)

    @pytest.mark.parametrize("seed", [13, 41])
    def test_partial_encoding_is_canonical_and_compact(self, seed):
        executor = QueryExecutor()
        query = parse_query(WIRE_SQL)

        def blob_for(rows):
            table, weights = _random_table(seed, rows=rows)
            (partition,) = table.partitions(weights=weights, num_partitions=1)
            partial = executor.partial_aggregate_partition(query, partition)
            blob = partial.to_bytes()
            assert PartialAggregation.from_bytes(blob).to_bytes() == blob
            assert len(partial.groups) > 0
            return len(blob), len(partial.groups)

        # O(groups × aggregates), never O(rows): once every group's quantile
        # sketch has hit its cap, doubling the rows must not meaningfully
        # grow the wire size, and the total stays within the per-group
        # budget (sketch cap dominates; the five scalar states are tiny).
        small, groups_small = blob_for(80_000)
        large, groups_large = blob_for(160_000)
        assert groups_small == groups_large
        assert large < small * 1.5
        per_group_budget = QUANTILE_SKETCH_SIZE * 16 + 6 * 1024
        assert large < groups_large * per_group_budget
