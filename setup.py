"""Setup shim for environments without the ``wheel`` package.

The project is fully described by ``pyproject.toml``; this file only enables
``pip install -e . --no-use-pep517`` (legacy editable installs) on offline
machines where PEP 660 editable wheels cannot be built.
"""

from setuptools import setup

setup()
